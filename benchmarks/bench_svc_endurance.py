"""Endurance soak: worker lifecycle management over a long job stream.

The lifecycle layer's pitch (:mod:`repro.svc.lifecycle`) is that a
serving process can run *indefinitely*: workers are proactively
recycled on jobs-served / RSS / age thresholds, a prewarmed replacement
standing in before the old generation retires, so memory stays bounded
and capacity never dips.  This soak makes that claim measurable by
pushing ~1,000 jobs through small pools in four legs:

* **jobs leg** — ``max_jobs`` recycling under kill + hang chaos:
  exactly one response per job, no verdict flips, ≥3 ``jobs`` recycles;
* **rss leg** — a chaos *leak* fault pins megabytes per job; the RSS
  threshold must keep residency sawtoothing under the ceiling (≥3
  ``rss`` recycles) with a **flat RSS slope** (least-squares fit over
  per-job worker self-reports);
* **unbounded comparison** — the same leak chaos with recycling
  disabled must show a steep slope: the control that proves the rss
  leg's flatness is the lifecycle layer's doing;
* **age leg** — ``max_age`` recycling across idle gaps (≥3 ``age``
  recycles).

Reported per run: recycles by reason, recycle pause p50/p95 (the
spawn+swap cost a recycle adds to the supervisor loop), steady-state
RSS, and both slopes.  ``svc.gate.unanswered`` counts lost or
duplicated responses across all legs and is diff-gated at **zero**.

Environment knobs: ``ENDURANCE_JOBS`` (total across legs, default
1000), ``ENDURANCE_POOL`` (jobs-leg pool size, default 2),
``ENDURANCE_LEAK_MB`` (leaked MiB per chaos leak, default 8).

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_svc_endurance.py
"""

from __future__ import annotations

import os
import sys
import time

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.guard.chaos import WorkerChaosPolicy  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.svc import (  # noqa: E402
    JobSpec,
    LifecyclePolicy,
    RetryPolicy,
    WorkerPool,
)

N_JOBS = int(os.environ.get("ENDURANCE_JOBS", 1000))
POOL = int(os.environ.get("ENDURANCE_POOL", 2))
LEAK_MB = int(os.environ.get("ENDURANCE_LEAK_MB", 8))

#: Lost or duplicated responses across every leg — the one number that
#: must be 0.  Registered here so ``--obs-json`` snapshots carry it and
#: CI diff-gates it against the baseline with zero tolerance/slack.
_OBS_UNANSWERED = obs_metrics.counter("svc.gate.unanswered")

PASSING = """\
type BT[v : Int]{L(0), N(2)}
lang pos : BT { N(l, r) where (v > 0) given (pos l) (pos r) | L() }
assert-false (is-empty pos)
"""

FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.05)


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[int(q * (len(sorted_values) - 1))]


def _slope_bytes_per_job(samples: list[tuple[int, int]]) -> float:
    """Least-squares slope of (job index, rss bytes) samples."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean_x = sum(x for x, _ in samples) / n
    mean_y = sum(y for _, y in samples) / n
    var = sum((x - mean_x) ** 2 for x, _ in samples)
    if var == 0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in samples)
    return cov / var


def _run_leg(
    name: str,
    n_jobs: int,
    pool: WorkerPool,
    *,
    kill_timeout: float = 5.0,
    batches: int = 1,
    batch_gap: float = 0.0,
) -> dict:
    """Push ``n_jobs`` through ``pool``, auditing every response.

    Returns the leg's ledger: outcome counts, per-job RSS samples (job
    index, worker self-reported bytes), and the lost/duplicate count
    (every spec must come back exactly once, in order).
    """
    specs = [JobSpec(f"{name}-{i}", "run", PASSING) for i in range(n_jobs)]
    results = []
    per_batch = max(1, n_jobs // batches)
    for start in range(0, n_jobs, per_batch):
        if start and batch_gap:
            time.sleep(batch_gap)
        results.extend(
            pool.run_jobs(
                specs[start:start + per_batch],
                retry=FAST_RETRY,
                kill_timeout=kill_timeout,
            )
        )
    want = [s.job_id for s in specs]
    got = [r.job_id for r in results]
    lost = len(set(want) - set(got))
    duplicated = len(got) - len(set(got))
    outcomes: dict[str, int] = {}
    rss_samples: list[tuple[int, int]] = []
    for i, result in enumerate(results):
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        report = result.hygiene
        if report and isinstance(report.get("rss_bytes"), int):
            rss_samples.append((i, report["rss_bytes"]))
    return {
        "leg": name,
        "jobs": n_jobs,
        "lost": lost,
        "duplicated": duplicated,
        "in_order": got == want,
        "outcomes": outcomes,
        "rss_samples": rss_samples,
        "recycles": dict(pool.recycles),
        "pauses_s": list(pool.recycle_pause_s),
    }


def measure() -> dict:
    n_a = max(8, int(N_JOBS * 0.45))
    n_b = max(8, int(N_JOBS * 0.30))
    n_c = max(8, int(N_JOBS * 0.15))
    n_cmp = max(8, int(N_JOBS * 0.10))
    leak = WorkerChaosPolicy(
        seed=7, leak_rate=0.25, leak_bytes=LEAK_MB << 20
    )

    # Leg A: jobs-threshold recycling under kill + hang chaos.
    chaos = WorkerChaosPolicy(
        seed=7, kill_rate=0.02, hang_rate=0.002, hang_seconds=3600.0
    )
    with WorkerPool(
        POOL,
        chaos=chaos,
        lifecycle=LifecyclePolicy(max_jobs=max(5, n_a // 16)),
    ) as pool:
        leg_jobs = _run_leg("jobs", n_a, pool, kill_timeout=1.0)

    # RSS baseline probe for the leak legs' threshold.
    with WorkerPool(1) as pool:
        [probe] = pool.run_jobs([JobSpec("rss-probe", "run", PASSING)])
    baseline_rss = (probe.hygiene or {}).get("rss_bytes") or 0

    # Leg B: leak chaos vs the RSS ceiling (baseline + 3 leaks' worth).
    ceiling = baseline_rss + 3 * (LEAK_MB << 20)
    with WorkerPool(
        1, chaos=leak, lifecycle=LifecyclePolicy(max_rss_bytes=ceiling)
    ) as pool:
        leg_rss = _run_leg("rss", n_b, pool)

    # Comparison: the same leak with recycling disabled (the control).
    with WorkerPool(1, chaos=leak) as pool:
        leg_unbounded = _run_leg("unbounded", n_cmp, pool)

    # Leg C: age-threshold recycling across idle gaps.
    with WorkerPool(
        1, lifecycle=LifecyclePolicy(max_age=0.25)
    ) as pool:
        # Gaps longer than max_age: every batch boundary finds the
        # serving generation over the hill.
        leg_age = _run_leg(
            "age", n_c, pool, batches=6, batch_gap=0.3
        )

    legs = [leg_jobs, leg_rss, leg_unbounded, leg_age]
    lost = sum(leg["lost"] + leg["duplicated"] for leg in legs)
    _OBS_UNANSWERED.inc(lost)

    pauses = sorted(
        p for leg in legs for p in leg["pauses_s"]
    )
    rss_slope = _slope_bytes_per_job(leg_rss["rss_samples"])
    unbounded_slope = _slope_bytes_per_job(leg_unbounded["rss_samples"])
    steady_rss = (
        max(y for _, y in leg_rss["rss_samples"])
        if leg_rss["rss_samples"]
        else 0
    )
    return {
        "legs": legs,
        "jobs_total": sum(leg["jobs"] for leg in legs),
        "lost_or_duplicated": lost,
        "recycles_jobs": leg_jobs["recycles"]["jobs"],
        "recycles_rss": leg_rss["recycles"]["rss"],
        "recycles_age": leg_age["recycles"]["age"],
        "recycle_pause_p50_ms": _quantile(pauses, 0.50) * 1e3,
        "recycle_pause_p95_ms": _quantile(pauses, 0.95) * 1e3,
        "baseline_rss_mb": baseline_rss / (1 << 20),
        "steady_rss_mb": steady_rss / (1 << 20),
        "rss_ceiling_mb": ceiling / (1 << 20),
        "rss_slope_kb_per_job": rss_slope / (1 << 10),
        "unbounded_slope_kb_per_job": unbounded_slope / (1 << 10),
    }


def render(row: dict) -> str:
    lines = [
        f"{row['jobs_total']} jobs over 4 legs "
        f"(pool {POOL}, leak {LEAK_MB} MiB, {os.cpu_count()} cpu(s)); "
        f"lost or duplicated: {row['lost_or_duplicated']}",
        f"recycles: jobs {row['recycles_jobs']}  "
        f"rss {row['recycles_rss']}  age {row['recycles_age']}",
        f"recycle pause: p50 {row['recycle_pause_p50_ms']:.0f} ms  "
        f"p95 {row['recycle_pause_p95_ms']:.0f} ms",
        f"rss: baseline {row['baseline_rss_mb']:.1f} MiB -> steady "
        f"{row['steady_rss_mb']:.1f} MiB (ceiling "
        f"{row['rss_ceiling_mb']:.1f} MiB)",
        f"rss slope: recycled {row['rss_slope_kb_per_job']:.1f} KiB/job  "
        f"vs unbounded {row['unbounded_slope_kb_per_job']:.1f} KiB/job",
    ]
    for leg in row["legs"]:
        lines.append(
            f"  leg {leg['leg']:<9} {leg['jobs']:>4} jobs  "
            f"outcomes {leg['outcomes']}  recycles {leg['recycles']}"
        )
    return "\n".join(lines)


@pytest.mark.soak
def test_endurance_soak(report):
    row = measure()
    report("svc endurance soak (lifecycle + hygiene)", render(row))
    obs_metrics.REGISTRY.gauge("bench.host_cpus").set(
        float(os.cpu_count() or 1)
    )
    obs_metrics.REGISTRY.gauge("bench.pool_workers").set(float(POOL))

    # Exactly one response per job, in order, across every leg.
    assert row["lost_or_duplicated"] == 0, row
    for leg in row["legs"]:
        assert leg["in_order"], f"leg {leg['leg']} replied out of order"
        # Verdict stability: the program is PROVED; chaos may only
        # degrade to UNKNOWN (hangs, exhausted retries), never flip a
        # decided verdict.
        assert leg["outcomes"].get("REFUTED", 0) == 0, leg
        assert leg["outcomes"].get("ERROR", 0) == 0, leg
        assert leg["outcomes"].get("PROVED", 0) > 0, leg

    # Every recycle reason actually fired, repeatedly.
    assert row["recycles_jobs"] >= 3, row
    assert row["recycles_rss"] >= 3, row
    assert row["recycles_age"] >= 3, row

    # Bounded memory: the recycled leg's slope is flat — an order of
    # magnitude under the unbounded control's, which must clearly show
    # the injected leak (0.25 * LEAK_MB per job, measured loosely).
    assert row["unbounded_slope_kb_per_job"] > (LEAK_MB << 10) * 0.05, (
        "the control leg never leaked; the comparison is vacuous"
    )
    assert (
        row["rss_slope_kb_per_job"]
        < row["unbounded_slope_kb_per_job"] / 10
    ), row
    # And the sawtooth stays under the configured ceiling (+ one leak
    # of slop: the threshold is checked between jobs).
    assert row["steady_rss_mb"] < row["rss_ceiling_mb"] + LEAK_MB + 1, row

    # A recycle is a pause, not an outage: the swap happens while the
    # replacement is already handshaken, so even p95 stays well under
    # a worker respawn-from-cold on a loaded box.
    assert row["recycle_pause_p95_ms"] < 5000.0, row


if __name__ == "__main__":  # pragma: no cover
    print(render(measure()))
