"""Section 2: the sanitizer security analysis and its counterexample.

The paper's front-page demo: composing remScript and esc, restricting to
well-formed HTML, and asking for the pre-image of outputs containing a
script node.  The buggy variant (no recursion into the script's sibling)
must produce the paper's counterexample

    node["script"] nil nil (node["script"] nil nil nil)

and the fixed variant must verify.  Timed end-to-end through the Fast
front-end (parse + compile + compose + restrict + pre-image + witness).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.apps.html import FastHtmlSanitizer
from repro.fast import run_program

PROGRAMS = pathlib.Path(__file__).resolve().parents[1] / "examples" / "fast_programs"


def test_sec2_buggy_analysis(benchmark, report):
    src = (PROGRAMS / "sanitizer_buggy.fast").read_text()
    result = benchmark(lambda: run_program(src))
    assert not result.ok
    cex = result.assertions[0].counterexample
    assert cex is not None
    scripts = [n for n in cex.iter_nodes() if n.ctor == "node" and n.attrs[0] == "script"]
    assert len(scripts) >= 2, "the bug needs a script surviving as a sibling"
    report(
        "Section 2: buggy sanitizer counterexample",
        f"counterexample: {cex}\n"
        f"(paper: node[\"script\"] nil nil (node[\"script\"] nil nil nil))",
    )


def test_sec2_fixed_analysis(benchmark):
    src = (PROGRAMS / "sanitizer_fixed.fast").read_text()
    result = benchmark(lambda: run_program(src))
    assert result.ok


def test_sec2_library_analysis(benchmark):
    """The same check through the library API (no parsing)."""
    sanitizer = FastHtmlSanitizer()
    result = benchmark(lambda: sanitizer.analyze())
    assert result.safe
