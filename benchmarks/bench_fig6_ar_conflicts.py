"""Figure 6 (Section 5.2): AR tagger conflict-checking time histogram.

The paper generates 100 random taggers (1-95 states), checks all 4,950
pairs, and plots, for each pipeline step (composition, input
restriction, output restriction), how many checks complete within each
time bucket [0,1), [1,2), [2,4), ... milliseconds.  It reports: all
compositions < 250 ms (average 15 ms), input restrictions < 150 ms
(average 3.5 ms), output restrictions with a long tail (average 175 ms,
worst case driven by non-linear real constraints), and 222 conflicts.

Default here: 40 taggers / 780 pairs (set FIG6_TAGGERS=100 for the full
paper-scale run).
"""

from __future__ import annotations

import itertools

import pytest

from repro.apps.ar import check_conflict, double_tag_language, make_tagger, no_tags_language
from repro.smt import Solver

from conftest import env_int

BUCKET_EDGES = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]


def _bucket_label(i: int) -> str:
    lo = BUCKET_EDGES[i]
    hi = BUCKET_EDGES[i + 1] if i + 1 < len(BUCKET_EDGES) else None
    return f"[{lo}-{hi})" if hi is not None else f"[{lo}+)"


def _histogram(times_ms: list[float]) -> list[int]:
    counts = [0] * len(BUCKET_EDGES)
    for t in times_ms:
        idx = 0
        for i, lo in enumerate(BUCKET_EDGES):
            if t >= lo:
                idx = i
        counts[idx] += 1
    return counts


@pytest.fixture(scope="module")
def conflict_data():
    n = env_int("FIG6_TAGGERS", 40)
    solver = Solver()
    taggers = [make_tagger(seed, solver)[0] for seed in range(n)]
    specs = [make_tagger(seed, solver)[1] for seed in range(n)]
    no_tags = no_tags_language(solver)
    double = double_tag_language(solver)
    results = []
    for a, b in itertools.combinations(range(n), 2):
        results.append(check_conflict(taggers[a], taggers[b], no_tags, double))
    return n, specs, results


def test_fig6_histogram(benchmark, conflict_data, report):
    n, specs, results = conflict_data

    def summarize():
        return results

    benchmark.pedantic(summarize, rounds=1, iterations=1)

    steps = {
        "Composition": [r.compose_time * 1e3 for r in results],
        "Input restriction": [r.restrict_in_time * 1e3 for r in results],
        "Output restriction": [r.restrict_out_time * 1e3 for r in results],
    }
    lines = [
        f"taggers: {n} (states {min(s.states for s in specs)}-"
        f"{max(s.states for s in specs)}), pairs: {len(results)}, "
        f"conflicts: {sum(r.conflict for r in results)}",
        "",
        f"{'bucket (ms)':>14} | {'Compose':>8} | {'Restr-in':>8} | {'Restr-out':>9}",
    ]
    histos = {k: _histogram(v) for k, v in steps.items()}
    for i in range(len(BUCKET_EDGES)):
        if not any(h[i] for h in histos.values()):
            continue
        lines.append(
            f"{_bucket_label(i):>14} | {histos['Composition'][i]:>8} "
            f"| {histos['Input restriction'][i]:>8} "
            f"| {histos['Output restriction'][i]:>9}"
        )
    lines.append("")
    for name, ts in steps.items():
        lines.append(
            f"{name:>18}: avg={sum(ts)/len(ts):7.1f} ms   max={max(ts):7.1f} ms"
        )
    total = [r.total_time * 1e3 for r in results]
    lines.append(
        f"{'Whole check':>18}: avg={sum(total)/len(total):7.1f} ms "
        f"(paper: 193 ms/pair average)"
    )
    report("Figure 6: AR conflict-check time distribution", "\n".join(lines))

    # Shape assertions mirroring the paper's observations.
    assert sum(r.conflict for r in results) > 0
    compose_avg = sum(steps["Composition"]) / len(results)
    rin_avg = sum(steps["Input restriction"]) / len(results)
    rout_avg = sum(steps["Output restriction"]) / len(results)
    assert rin_avg < compose_avg * 3  # input restriction is cheap
    assert rout_avg >= rin_avg  # output restriction dominates (long tail)


def test_fig6_single_pair_compose(benchmark):
    """Micro-benchmark: one representative composition (paper avg 15 ms)."""
    solver = Solver()
    t1, _ = make_tagger(11, solver)
    t2, _ = make_tagger(22, solver)
    benchmark(lambda: t1.compose(t2))


def test_fig6_single_pair_full_pipeline(benchmark):
    solver = Solver()
    t1, _ = make_tagger(5, solver)
    t2, _ = make_tagger(17, solver)
    no_tags = no_tags_language(solver)
    double = double_tag_language(solver)
    benchmark(lambda: check_conflict(t1, t2, no_tags, double))
