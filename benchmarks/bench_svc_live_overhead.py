"""Live-observability overhead: trace propagation + rolling windows.

PR18 puts two new pieces of work on the served path of every request:
request-scoped trace propagation (``trace_context`` + the
``svc.admission``/``svc.dispatch`` spans and gate instants, journaled
when observability is on) and rolling-window aggregation
(:class:`repro.obs.live.LiveStats` fed by the
:class:`~repro.svc.telemetry.ServeStats` tracker).  Both run once per
request, so their cost must be measured against an honest request, not
assumed away.

This benchmark drives the same warm pool through two per-request loops
— a *bare* arm (parse, gate, execute, serialize: the pre-PR18 served
path) and a *live* arm (the same plus trace context, spans under an
active journal, and window recording) — with rounds **interleaved**
(bare, live, bare, live, ...) so slow patches on a shared CI container
hit both arms instead of skewing whichever ran second.  The reported
figure is the relative p50 per-request latency overhead.

The budgeted figure is **≤5%**; the measured one records into the obs
snapshot as the ``svc.live.overhead_pct`` gauge, which CI gates through
``repro.obs.diff`` against ``BENCH_baseline.json``
(``svc_live_overhead``).  The in-test assertion is a looser backstop
(40%) so a noisy 1-core container cannot flake the suite while the diff
gate still catches real regressions.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_svc_live_overhead.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

# The artifact cache would shrink every job to a sub-ms hash lookup and
# make the *relative* overhead figure meaningless; the pytest harness
# (conftest) already runs benchmarks cache-off, direct runs match it.
os.environ.setdefault("REPRO_CACHE", "off")

from repro.obs import journal as obs_journal  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs import tracer as obs_tracer  # noqa: E402
from repro.svc import (  # noqa: E402
    AnalysisService,
    GateConfig,
    JobSpec,
    RetryPolicy,
    ServiceConfig,
    Shed,
)
from repro.svc.gate import AdmissionGate  # noqa: E402
from repro.svc.serve import parse_line  # noqa: E402
from repro.svc.telemetry import ServeStats  # noqa: E402

POOL_SIZE = int(os.environ.get("SVC_LIVE_POOL", 2))
CORPUS_SIZE = int(os.environ.get("SVC_LIVE_CORPUS", 10))
ROUNDS = int(os.environ.get("SVC_LIVE_ROUNDS", 3))

#: The budget the baseline records; the in-test backstop is looser.
OVERHEAD_BUDGET_PCT = 5.0
OVERHEAD_BACKSTOP_PCT = 40.0

PASSING = """\
type BT[v : Int]{L(0), N(2)}
lang pos : BT { N(l, r) where (v > 0) given (pos l) (pos r) | L() }
assert-false (is-empty pos)
"""

_EXAMPLES = os.path.join(
    os.path.dirname(__file__), "..", "examples", "fast_programs"
)


def _example(name: str) -> str:
    with open(os.path.join(_EXAMPLES, name)) as f:
        return f.read()


def request_lines(n: int, tag: str) -> list[str]:
    """``n`` realistically sized request lines (the paper's §5.1/§5.2
    programs, ~5–35 ms each).  Sub-millisecond toy jobs would make the
    *relative* overhead figure meaningless — per-request trace + window
    cost is a fixed few microseconds, so the denominator must be an
    honest request."""
    sanitizer = _example("sanitizer_fixed.fast")
    tagger = _example("world_tagger.fast")
    return [
        json.dumps(
            {
                "id": f"{tag}-{i}",
                "kind": "run",
                "source": tagger if i % 3 == 0 else sanitizer,
            }
        )
        for i in range(n)
    ]


def _gate() -> AdmissionGate:
    # Big queue, no quotas: nothing sheds, so both arms measure the
    # *served* path only.
    return AdmissionGate(
        GateConfig(max_queue=1024, max_deadline=60.0, workers=POOL_SIZE)
    )


def _serve_bare(svc: AnalysisService, gate: AdmissionGate, line: str) -> float:
    """One request through the pre-PR18 served path."""
    t0 = time.perf_counter()
    request = parse_line(line, "bare")
    decision = gate.admit(request.spec, request.tenant)
    assert not isinstance(decision, Shed)
    released = gate.release(decision)
    assert not isinstance(released, Shed)
    result = svc.run_job(released)
    gate.note_served(result.duration)
    doc = result.to_dict()
    doc["id"] = request.client_id
    json.dumps(doc)
    return time.perf_counter() - t0


def _serve_live(
    svc: AnalysisService,
    gate: AdmissionGate,
    tracker: ServeStats,
    line: str,
) -> float:
    """One request through the full live path: trace context + spans
    (against an active journal) + window recording — the exact
    per-request work :func:`repro.svc.serve.serve_lines` does."""
    t0 = time.perf_counter()
    request = parse_line(line, "live")
    with obs_tracer.trace_context(request.trace_id):
        with obs_tracer.span(
            "svc.admission",
            id=request.client_id,
            kind=request.spec.kind,
            tenant=request.tenant,
        ):
            decision = gate.admit(request.spec, request.tenant)
        assert not isinstance(decision, Shed)
        with obs_tracer.span("svc.dispatch", id=request.client_id):
            released = gate.release(decision)
        assert not isinstance(released, Shed)
        result = svc.run_job(released)
    gate.note_served(result.duration)
    doc = result.to_dict()
    doc["id"] = request.client_id
    doc.setdefault("trace_id", request.trace_id)
    json.dumps(doc)
    tracker.record(result, request.tenant)
    return time.perf_counter() - t0


def measure_overhead() -> dict[str, float]:
    """Per-request p50 per arm, rounds interleaved (bare, live, ...)."""
    config = ServiceConfig(
        jobs=POOL_SIZE, retry=RetryPolicy(base_delay=0.01)
    )
    bare_lat: list[float] = []
    live_lat: list[float] = []
    with AnalysisService(config) as svc:
        svc.run_job(JobSpec("warmup", "run", PASSING))  # pay spawn once
        gate_bare, gate_live = _gate(), _gate()
        tracker = ServeStats()
        for round_no in range(ROUNDS):
            lines = request_lines(CORPUS_SIZE, f"r{round_no}")
            for line in lines:
                bare_lat.append(_serve_bare(svc, gate_bare, line))
            with obs_journal.journaled():
                for line in lines:
                    live_lat.append(
                        _serve_live(svc, gate_live, tracker, line)
                    )
    p50_bare = statistics.median(bare_lat)
    p50_live = statistics.median(live_lat)
    overhead_pct = (p50_live - p50_bare) / p50_bare * 100.0
    return {
        "p50_bare_ms": p50_bare * 1e3,
        "p50_live_ms": p50_live * 1e3,
        "overhead_pct": overhead_pct,
        "requests_per_arm": float(len(bare_lat)),
    }


def render(row: dict[str, float]) -> str:
    return (
        f"corpus: {CORPUS_SIZE} requests x {ROUNDS} interleaved rounds, "
        f"--jobs {POOL_SIZE}, {os.cpu_count()} cpu(s)\n"
        f"bare served path p50: {row['p50_bare_ms']:7.2f} ms\n"
        f"live served path p50: {row['p50_live_ms']:7.2f} ms "
        f"(trace context + spans + windows)\n"
        f"overhead: {row['overhead_pct']:+.1f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%, "
        f"backstop {OVERHEAD_BACKSTOP_PCT:.0f}%)"
    )


def test_live_overhead_is_bounded(report):
    row = measure_overhead()
    report("svc live-observability overhead (per-request p50)", render(row))
    # Record the measured figure for the repro.obs.diff CI gate; clamp
    # at 0 so a lucky faster-with-tracing run doesn't hide drift by
    # going negative.
    obs_metrics.REGISTRY.gauge("svc.live.overhead_pct").set(
        round(max(0.0, row["overhead_pct"]), 2)
    )
    obs_metrics.REGISTRY.gauge("bench.host_cpus").set(
        float(os.cpu_count() or 1)
    )
    obs_metrics.REGISTRY.gauge("bench.pool_workers").set(float(POOL_SIZE))
    assert row["overhead_pct"] <= OVERHEAD_BACKSTOP_PCT, (
        f"live-observability overhead {row['overhead_pct']:.1f}% exceeds "
        f"the {OVERHEAD_BACKSTOP_PCT:.0f}% backstop "
        f"(budget is {OVERHEAD_BUDGET_PCT:.0f}%)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(measure_overhead()))
