"""Overhead of resource governance on the hot paths.

The budget hooks (:func:`repro.guard.budget.tick` /
``charge_query``) sit inside every fixpoint loop and on the solver query
path, so their no-budget cost must be negligible and their
active-budget cost modest.  This benchmark runs the same equivalence
workload ungoverned and governed and asserts the ratio stays small —
the contract that lets the hooks live in the hot loops at all.

Run: ``python -m pytest benchmarks/bench_guard_overhead.py -q``
(benchmarks are not part of the default test paths).
"""

from __future__ import annotations

import time

from repro.automata import Language, rule
from repro.guard import scope
from repro.smt import INT, Solver, mk_eq, mk_gt, mk_int, mk_mod, mk_var
from repro.trees import make_tree_type

BT = make_tree_type("BT", [("x", INT)], {"L": 0, "N": 2})
x = mk_var("x", INT)

ROUNDS = 20


def _leaves(name, guard_term, solver):
    return Language.build(
        BT,
        name,
        [rule(name, "L", guard_term), rule(name, "N", None, [[name], [name]])],
        solver,
    )


def _workload(solver):
    pos = _leaves("pos", mk_gt(x, mk_int(0)), solver)
    odd = _leaves("odd", mk_eq(mk_mod(x, 2), mk_int(1)), solver)
    left, right = pos.union(odd), odd.union(pos)
    assert left.equals(right)


def _time(fn) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_governed_overhead_is_bounded():
    def ungoverned():
        for _ in range(ROUNDS):
            _workload(Solver())

    def governed_run():
        for _ in range(ROUNDS):
            with scope(deadline=3600.0, max_steps=10**9, max_solver_queries=10**9):
                _workload(Solver())

    base = _time(ungoverned)
    gov = _time(governed_run)
    ratio = gov / base
    print(f"\nungoverned={base*1000:.1f}ms governed={gov*1000:.1f}ms ratio={ratio:.2f}")
    # Generous bound: the hooks must not dominate; CI machines are noisy.
    assert ratio < 2.0, f"governance overhead too high: {ratio:.2f}x"


def test_inactive_hook_cost_is_trivial():
    from repro.guard.budget import tick

    n = 1_000_000
    start = time.perf_counter()
    for _ in range(n):
        tick()
    per_call = (time.perf_counter() - start) / n
    print(f"\ninactive tick: {per_call*1e9:.0f}ns/call")
    assert per_call < 2e-6  # comfortably sub-microsecond on any hardware
