"""Figure 1 / Table 1: the application-analysis capability matrix.

Figure 1 lists which analyses each application of Section 5 needs
(composition, equivalence/emptiness, pre-image); Table 1 contrasts Fast
with other tree-manipulation DSLs (infinite alphabets + the analysis
suite).  This benchmark *runs* one representative instance of every
checked cell and prints the matrix with measured times — the matrix is
reproduced by execution, not assertion.
"""

from __future__ import annotations

import time

import pytest

from repro.apps.ar import check_conflict, make_tagger
from repro.apps.css import check_unreadable_text, parse_css
from repro.apps.deforestation import composed_n, filter_ev, map_caesar
from repro.apps.html import FastHtmlSanitizer
from repro.apps.program_analysis import analyze_map_filter, non_empty_list_language
from repro.smt import Solver


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


@pytest.fixture(scope="module")
def matrix():
    solver = Solver()
    cells: dict[tuple[str, str], float | None] = {}

    # Augmented reality: composition + equivalence(emptiness).
    t1, _ = make_tagger(4, solver)
    t2, _ = make_tagger(9, solver)
    cells[("Augmented reality", "composition")] = _timed(lambda: t1.compose(t2))
    cells[("Augmented reality", "equivalence")] = _timed(
        lambda: check_conflict(t1, t2)
    )
    cells[("Augmented reality", "pre-image")] = None

    # HTML sanitization: composition + pre-image.
    sanitizer = FastHtmlSanitizer()
    cells[("HTML sanitization", "composition")] = _timed(
        lambda: sanitizer.rem_script.compose(sanitizer.esc)
    )
    cells[("HTML sanitization", "pre-image")] = _timed(sanitizer.analyze)
    cells[("HTML sanitization", "equivalence")] = None

    # Deforestation: composition only.
    cells[("Deforestation", "composition")] = _timed(lambda: composed_n(16, solver))
    cells[("Deforestation", "equivalence")] = None
    cells[("Deforestation", "pre-image")] = None

    # Program analysis: all three.
    m, f = map_caesar(solver), filter_ev(solver)
    comp = m.compose(f)
    ne = non_empty_list_language(solver)
    cells[("Program analysis", "composition")] = _timed(lambda: comp.compose(comp))
    cells[("Program analysis", "equivalence")] = _timed(
        lambda: comp.domain().equals(m.domain())
    )
    cells[("Program analysis", "pre-image")] = _timed(lambda: comp.pre_image(ne))

    # CSS analysis: all three (composition happens inside the check).
    css = parse_css("div p { color: black; } p { background-color: black; }")
    cells[("CSS analysis", "pre-image")] = _timed(
        lambda: check_unreadable_text(css, solver)
    )
    from repro.apps.css import compile_css

    ct = compile_css(css, solver)
    cells[("CSS analysis", "composition")] = _timed(lambda: ct.compose(ct))
    cells[("CSS analysis", "equivalence")] = _timed(
        lambda: ct.domain().equals(ct.domain())
    )
    return cells


def test_capability_matrix(benchmark, matrix, report):
    benchmark.pedantic(lambda: matrix, rounds=1, iterations=1)
    analyses = ["composition", "equivalence", "pre-image"]
    apps = [
        "Augmented reality",
        "HTML sanitization",
        "Deforestation",
        "Program analysis",
        "CSS analysis",
    ]
    lines = [f"{'application':>20} | " + " | ".join(f"{a:>14}" for a in analyses)]
    for app in apps:
        row = []
        for a in analyses:
            v = matrix.get((app, a))
            row.append(f"{v:>11.1f} ms" if v is not None else f"{'-':>14}")
        lines.append(f"{app:>20} | " + " | ".join(row))
    lines.append("")
    lines.append(
        "every checked cell of the paper's Figure 1 executed successfully "
        "over infinite alphabets (Table 1's distinguishing column)"
    )
    report("Figure 1 / Table 1: capability matrix (executed)", "\n".join(lines))
    # Every application exercised composition (the paper's common column).
    for app in apps:
        assert matrix[(app, "composition")] is not None
