"""Section 5.5: CSS analysis (sketched in the paper, made concrete here).

Checks that a CSS program can never render black text on a black
background, via pre-image emptiness over the compiled transducer, and
the stronger symbolic check — text color never *equals* background
color — which the paper calls out as infeasible for explicit-alphabet
tree logic.
"""

from __future__ import annotations

import pytest

from repro.apps.css import (
    check_unreadable_text,
    compile_css,
    element,
    parse_css,
    same_color_language,
    unstyled_language,
)
from repro.smt import Solver

SAFE = """
body { background-color: white; }
div p { color: black; background-color: yellow; }
p { color: blue; }
"""

UNSAFE = """
div p { color: black; }
p { background-color: black; }
"""


def test_sec55_safe_check(benchmark, report):
    program = parse_css(SAFE)
    result = benchmark(lambda: check_unreadable_text(program, Solver()))
    assert result.safe
    report(
        "Section 5.5: CSS black-on-black analysis",
        "safe stylesheet verified; unsafe stylesheet rejected with a "
        "witness document (see bench_sec55_css tests)",
    )


def test_sec55_unsafe_check(benchmark):
    program = parse_css(UNSAFE)
    result = benchmark(lambda: check_unreadable_text(program, Solver()))
    assert not result.safe and result.bad_input is not None


def test_sec55_symbolic_equality_check(benchmark):
    """color == background-color over the *infinite* value space."""
    solver = Solver()
    program = parse_css("p { color: teal; } div p { background-color: teal; }")
    trans = compile_css(program, solver)

    def check():
        bad = trans.pre_image(same_color_language(solver)).intersect(
            unstyled_language(solver)
        )
        return bad.witness()

    witness = benchmark(check)
    assert witness is not None


def test_sec55_styling_throughput(benchmark):
    """Applying a stylesheet to a document (the C(H) computation)."""
    solver = Solver()
    trans = compile_css(parse_css(SAFE), solver)
    doc = element("body", [element("div", [element("p") for _ in range(50)])])
    out = benchmark(lambda: trans.apply_one(doc))
    assert out is not None


def test_sec55_inheritance_analysis(benchmark, report):
    """Extension: background inheritance makes the analysis complete for
    ancestor-painted backgrounds (the flat check misses these)."""
    from repro.apps.css.inheritance import check_unreadable_text_inherited
    from repro.apps.css.analysis import check_unreadable_text

    css = parse_css("div { background-color: black; } div p { color: black; }")
    flat = check_unreadable_text(css, Solver())
    result = benchmark(lambda: check_unreadable_text_inherited(css, Solver()))
    assert flat.safe and not result.safe
    report(
        "Section 5.5 extension: inheritance-aware CSS analysis",
        "ancestor-painted black background + black descendant text: flat "
        "check misses it, the inheritance-tracking compiler catches it "
        f"(witness: {result.bad_input})",
    )
