"""Cross-process telemetry overhead: enabled-vs-disabled batch throughput.

Telemetry (:mod:`repro.svc.telemetry`) makes every worker journal its
job, snapshot its metric deltas, package a blob, and pickle it back —
and makes the supervisor align, merge, and fold all of it.  That is
real work on the job hot path, and it must stay cheap enough that
leaving ``REPRO_OBS=1`` on in a soak or CI run does not distort what it
observes.  This benchmark runs the same warm-pool batch twice — workers
with telemetry explicitly disabled, then explicitly enabled (with an
active host journal, so the merge path runs in full) — and reports the
relative wall-clock overhead.

The budgeted figure is **≤5%**; the measured one records into the obs
snapshot as the ``svc.telemetry.overhead_pct`` gauge, which CI gates
through ``repro.obs.diff`` against ``BENCH_baseline.json``
(``svc_telemetry_overhead``).  The in-test assertion is a looser
backstop (25%) so a noisy 1-core container cannot flake the suite while
the diff gate still catches real regressions.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_svc_telemetry_overhead.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.obs import journal as obs_journal  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.svc import (  # noqa: E402
    AnalysisService,
    JobSpec,
    RetryPolicy,
    ServiceConfig,
    TelemetryConfig,
)

POOL_SIZE = int(os.environ.get("SVC_TELEMETRY_POOL", 2))
CORPUS_SIZE = int(os.environ.get("SVC_TELEMETRY_CORPUS", 12))
ROUNDS = int(os.environ.get("SVC_TELEMETRY_ROUNDS", 4))

#: The budget the baseline records; the in-test backstop is looser.
OVERHEAD_BUDGET_PCT = 5.0
OVERHEAD_BACKSTOP_PCT = 40.0

PASSING = """\
type BT[v : Int]{L(0), N(2)}
lang pos : BT { N(l, r) where (v > 0) given (pos l) (pos r) | L() }
assert-false (is-empty pos)
"""

_EXAMPLES = os.path.join(
    os.path.dirname(__file__), "..", "examples", "fast_programs"
)


def _example(name: str) -> str:
    with open(os.path.join(_EXAMPLES, name)) as f:
        return f.read()


def corpus(n: int, tag: str) -> list[JobSpec]:
    """``n`` realistically sized jobs (the paper's §5.1/§5.2 programs,
    ~5–35 ms each).  Sub-millisecond toy jobs would make the *relative*
    overhead figure meaningless — per-job telemetry cost is a fixed few
    hundred microseconds, so the denominator must be an honest job."""
    sanitizer = _example("sanitizer_fixed.fast")
    tagger = _example("world_tagger.fast")
    specs: list[JobSpec] = []
    for i in range(n):
        source = tagger if i % 3 == 0 else sanitizer
        specs.append(JobSpec(f"{tag}-run-{i}", "run", source))
    return specs


def _one_round(svc: AnalysisService, specs: list[JobSpec], journal: bool) -> float:
    if journal:
        with obs_journal.journaled():
            t0 = time.perf_counter()
            results = svc.run_jobs(specs)
            elapsed = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        results = svc.run_jobs(specs)
        elapsed = time.perf_counter() - t0
    assert all(
        r.outcome in ("PROVED", "REFUTED") for r in results
    ), "telemetry overhead run must be fault-free to be comparable"
    return elapsed


def measure_overhead() -> dict[str, float]:
    """Best-of-``ROUNDS`` wall-clock per mode, rounds *interleaved*
    (off, on, off, on …) so slow patches on a shared 1-core container
    hit both modes instead of skewing whichever ran second."""

    def config(telemetry: TelemetryConfig) -> ServiceConfig:
        return ServiceConfig(
            jobs=POOL_SIZE,
            retry=RetryPolicy(base_delay=0.01),
            telemetry=telemetry,
        )

    disabled = enabled = float("inf")
    with AnalysisService(config(TelemetryConfig(enabled=False))) as off:
        with AnalysisService(config(TelemetryConfig())) as on:
            off.run_job(JobSpec("warmup-off", "run", PASSING))  # pay spawn once
            on.run_job(JobSpec("warmup-on", "run", PASSING))
            blobs_before = obs_metrics.REGISTRY.counter(
                "svc.telemetry.blobs"
            ).value
            for round_no in range(ROUNDS):
                specs = corpus(CORPUS_SIZE, f"r{round_no}")
                disabled = min(disabled, _one_round(off, specs, journal=False))
                enabled = min(enabled, _one_round(on, specs, journal=True))
    blobs = (
        obs_metrics.REGISTRY.counter("svc.telemetry.blobs").value
        - blobs_before
    )
    overhead_pct = (enabled - disabled) / disabled * 100.0
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "overhead_pct": overhead_pct,
        "blobs": float(blobs),
    }


def render(row: dict[str, float]) -> str:
    return (
        f"corpus: {CORPUS_SIZE} jobs x best-of-{ROUNDS}, --jobs {POOL_SIZE}, "
        f"{os.cpu_count()} cpu(s)\n"
        f"telemetry off: {row['disabled_s'] * 1e3:7.1f} ms\n"
        f"telemetry on:  {row['enabled_s'] * 1e3:7.1f} ms "
        f"({int(row['blobs'])} blobs merged)\n"
        f"overhead: {row['overhead_pct']:+.1f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%, "
        f"backstop {OVERHEAD_BACKSTOP_PCT:.0f}%)"
    )


def test_telemetry_overhead_is_bounded(report):
    row = measure_overhead()
    report("svc telemetry overhead (enabled vs disabled batch)", render(row))
    # Record the measured figure for the repro.obs.diff CI gate; clamp
    # at 0 so a lucky faster-with-telemetry run doesn't hide drift by
    # going negative.
    obs_metrics.REGISTRY.gauge("svc.telemetry.overhead_pct").set(
        round(max(0.0, row["overhead_pct"]), 2)
    )
    assert row["blobs"] == float(CORPUS_SIZE * ROUNDS), (
        "enabled mode must actually ship blobs — measuring a no-op "
        "telemetry path would make the overhead figure meaningless"
    )
    assert row["overhead_pct"] <= OVERHEAD_BACKSTOP_PCT, (
        f"telemetry overhead {row['overhead_pct']:.1f}% exceeds the "
        f"{OVERHEAD_BACKSTOP_PCT:.0f}% backstop "
        f"(budget is {OVERHEAD_BUDGET_PCT:.0f}%)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(measure_overhead()))
