"""Journal overhead budget: enabled ring mode stays within 5% of disabled.

The structured event journal (:mod:`repro.obs.journal`) sits on the
tracer/metric/guard hot paths, so its cost must be provable, not
assumed.  This benchmark times the Figure 7 deforestation workload
(``composed_n`` + ``run_deforested`` on a random integer list) three
ways:

* **disabled** — obs off, no journal: the PR-1 baseline configuration;
* **ring**     — journal enabled in ring-buffer mode (the default);
* **spill**    — journal in JSONL spill mode (informational only; disk
  I/O makes it workload-dependent, so it is reported but not gated).

Min-of-N timing; the gate asserts
``ring <= disabled * 1.05 + 10ms`` (the ISSUE's 5% budget plus timer
noise slack).  A per-event micro-benchmark of ``Journal.emit`` is also
reported; measured numbers live in ``BENCH_baseline.json`` under
``obs_journal_overhead``.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_obs_journal_overhead.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.apps.deforestation import (  # noqa: E402
    ILIST,
    composed_n,
    encode_list,
    random_list,
    run_deforested,
)
from repro.obs import journal  # noqa: E402
from repro.smt import Solver  # noqa: E402

LIST_LENGTH = int(os.environ.get("OBS_OVERHEAD_LIST_LENGTH", 2048))
COMPOSITIONS = int(os.environ.get("OBS_OVERHEAD_N", 8))
ROUNDS = int(os.environ.get("OBS_OVERHEAD_ROUNDS", 5))
RELATIVE_BUDGET = 0.05  # the ISSUE's 5% ring-mode ceiling
SLACK_SECONDS = 0.010  # timer noise floor for sub-second workloads


def _workload():
    """One fig7-shaped unit of work: compose n times, run once."""
    solver = Solver()
    data = encode_list(random_list(LIST_LENGTH, seed=7), ILIST)
    composed = composed_n(COMPOSITIONS, solver)
    return run_deforested(composed, data)


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_modes(tmp_spill_path: str) -> dict[str, float]:
    """Best-of-N workload seconds per journal mode."""
    results: dict[str, float] = {}

    obs.enabled(False)
    journal.disable()
    results["disabled"] = _best_of(ROUNDS, _workload)

    with journal.journaled():
        results["ring"] = _best_of(ROUNDS, _workload)
        results["ring_events"] = float(journal.active().emitted)

    with journal.journaled(spill_path=tmp_spill_path):
        results["spill"] = _best_of(ROUNDS, _workload)

    obs.enabled(False)
    return results


def emit_cost_ns(events: int = 100_000) -> float:
    """Average nanoseconds per ``Journal.emit`` call (ring mode)."""
    j = journal.Journal()
    t0 = time.perf_counter()
    for i in range(events):
        j.emit("C", "bench.counter", i)
    return (time.perf_counter() - t0) / events * 1e9


def render(results: dict[str, float], per_emit_ns: float) -> str:
    disabled, ring, spill = results["disabled"], results["ring"], results["spill"]
    limit = disabled * (1 + RELATIVE_BUDGET) + SLACK_SECONDS
    lines = [
        f"workload: fig7 deforestation, list={LIST_LENGTH}, "
        f"n={COMPOSITIONS}, best of {ROUNDS}",
        f"journal disabled : {disabled * 1e3:8.1f} ms   (baseline)",
        f"journal ring     : {ring * 1e3:8.1f} ms   "
        f"({(ring / disabled - 1) * 100:+.1f}%, limit {limit * 1e3:.1f} ms)",
        f"journal spill    : {spill * 1e3:8.1f} ms   "
        f"({(spill / disabled - 1) * 100:+.1f}%, informational)",
        f"events journaled per ring run: {int(results['ring_events'])}",
        f"Journal.emit cost: {per_emit_ns:.0f} ns/event",
    ]
    return "\n".join(lines)


def test_ring_mode_overhead_within_budget(tmp_path, report):
    results = measure_modes(str(tmp_path / "spill.jsonl"))
    per_emit = emit_cost_ns()
    report("journal overhead (ring mode <= 5%)", render(results, per_emit))
    limit = results["disabled"] * (1 + RELATIVE_BUDGET) + SLACK_SECONDS
    assert results["ring"] <= limit, (
        f"ring-mode journal overhead blew the 5% budget: "
        f"{results['ring']:.3f}s > {limit:.3f}s "
        f"(disabled baseline {results['disabled']:.3f}s)"
    )


def test_disabled_mode_emits_nothing(tmp_path):
    obs.enabled(False)
    journal.disable()
    _workload()
    assert journal.active() is None


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        res = measure_modes(os.path.join(d, "spill.jsonl"))
    print(render(res, emit_cost_ns()))
