"""Section 5.4: static analysis of map/filter compositions (Figure 8).

The paper: composing map_caesar, filter_ev, map_caesar, filter_ev is
equivalent to deleting every element, provable by output-restricting the
composed transduction to non-empty lists and checking emptiness — "in
this example the whole analysis can be done in less than 10 ms".
"""

from __future__ import annotations

import pathlib

from repro.apps.program_analysis import analyze_map_filter
from repro.fast import run_program
from repro.smt import Solver

PROGRAMS = pathlib.Path(__file__).resolve().parents[1] / "examples" / "fast_programs"


def test_sec54_analysis(benchmark, report):
    result = benchmark(lambda: analyze_map_filter(Solver()))
    assert result.comp2_always_empties
    assert result.comp1_can_produce_nonempty
    report(
        "Section 5.4: map/filter analysis",
        f"comp2 restricted to non-empty outputs is empty: "
        f"{result.comp2_always_empties}\n"
        f"measured: {result.seconds * 1e3:.1f} ms "
        f"(paper: 'less than 10 ms')",
    )


def test_sec54_through_fast_frontend(benchmark):
    """Figure 8 verbatim through parse + compile + evaluate."""
    src = (PROGRAMS / "list_analysis.fast").read_text()
    result = benchmark(lambda: run_program(src))
    assert result.ok
