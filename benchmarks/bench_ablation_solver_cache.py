"""Ablation: the solver's per-formula cache.

The automaton algorithms fire the same guards at the solver thousands of
times (normalization products, minterms, composition pruning).  The
paper leans on Z3's incremental machinery; our substitute is a
memoization cache keyed by (hash-cached) formulas.  This ablation runs a
representative end-to-end analysis — one AR conflict check — with the
cache on and off.
"""

from __future__ import annotations

import time

from repro.apps.ar import check_conflict, make_tagger
from repro.smt import Solver


def _one_check(cache: bool) -> tuple[float, int, int]:
    solver = Solver(cache=cache)
    t1, _ = make_tagger(7, solver)
    t2, _ = make_tagger(13, solver)
    t0 = time.perf_counter()
    check_conflict(t1, t2)
    elapsed = time.perf_counter() - t0
    return elapsed, solver.stats.sat_queries, solver.stats.cache_hits


def test_ablation_solver_cache(benchmark, report):
    warm = _one_check(cache=True)
    cold = _one_check(cache=False)
    benchmark.pedantic(lambda: (warm, cold), rounds=1, iterations=1)
    t_warm, q_warm, hits = warm
    t_cold, q_cold, _ = cold
    report(
        "Ablation: solver result cache",
        f"conflict check with cache:    {t_warm * 1e3:7.1f} ms "
        f"({q_warm} queries, {hits} cache hits)\n"
        f"conflict check without cache: {t_cold * 1e3:7.1f} ms "
        f"({q_cold} queries)\n"
        f"speedup from caching: {t_cold / t_warm:.1f}x — the role Z3's "
        f"incrementality plays in the paper's implementation",
    )
    assert t_cold >= t_warm * 0.8  # caching never hurts materially


def test_ablation_cached_check(benchmark):
    benchmark(lambda: _one_check(cache=True))


def test_ablation_uncached_check(benchmark):
    benchmark.pedantic(lambda: _one_check(cache=False), rounds=3, iterations=1)
