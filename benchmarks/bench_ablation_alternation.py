"""Ablation (Section 3.2, Propositions 1-2): why *alternating* STAs.

The paper: "We decided to use alternating STAs because they are succinct
and arise naturally when composing tree transducers."  Proposition 2
makes the trade explicit — alternation buys exponential succinctness
(an un-normalized STA can encode intersection non-emptiness directly)
and the analysis pays for it (ExpTime-complete emptiness, performed by
lazy normalization).

The ablation quantifies both sides on a structural family: ``D_p`` =
trees whose leaves all sit at depth ≡ 0 (mod p).  The intersection of
``D_2 .. D_pk`` needs an lcm-sized product classically; alternation
represents it with the *sum* of the sizes and defers the blowup to the
lazy emptiness fixpoint, which only materializes reachable merged
states.
"""

from __future__ import annotations

import time

import pytest

from repro.automata import Language, STA, is_empty, rule, witness
from repro.smt import Solver
from repro.trees import make_tree_type

BT = make_tree_type("BT", [], {"L": 0, "N": 2})

PRIMES = [2, 3, 5]


def depth_mod_rules(p: int):
    """D_p: a non-leaf root and every leaf at depth divisible by p.

    p+1 states: a start state forcing the root to be internal, then a
    depth-counting cycle; the minimal member has depth lcm of the p's.
    """
    name = f"m{p}"
    rules = [rule(f"{name}_start", "N", None, [[f"{name}_1"], [f"{name}_1"]])]
    for i in range(p):
        nxt = f"{name}_{(i + 1) % p}"
        rules.append(rule(f"{name}_{i}", "N", None, [[nxt], [nxt]]))
    rules.append(rule(f"{name}_0", "L"))
    return f"{name}_start", rules


@pytest.fixture(scope="module")
def family():
    all_rules = []
    starts = []
    for p in PRIMES:
        start, rules = depth_mod_rules(p)
        starts.append(start)
        all_rules.extend(rules)
    return STA(BT, tuple(all_rules)), starts


def test_ablation_alternation(benchmark, family, report):
    sta, starts = family
    rows = []
    for k in (2, 3):
        subset = starts[:k]
        # alternating: the intersection is one set-state, size = sum.
        solver_a = Solver()
        alt_size = sum(
            len([r for r in sta.rules if str(r.state).startswith(f"m{p}_")])
            for p in PRIMES[:k]
        )
        t0 = time.perf_counter()
        empty_alt = is_empty(sta, subset, solver_a)
        w = witness(sta, subset, solver_a)
        t_alt = (time.perf_counter() - t0) * 1e3

        # classical: build the explicit product first.
        solver_b = Solver()
        t0 = time.perf_counter()
        langs = [Language(sta, s, solver_b) for s in subset]
        acc = langs[0]
        for l in langs[1:]:
            acc = acc.intersect(l)
        prod_size = acc.size()[1]
        empty_prod = acc.is_empty()
        t_prod = (time.perf_counter() - t0) * 1e3

        assert empty_alt == empty_prod == False  # noqa: E712
        assert w is not None
        rows.append((k, alt_size, t_alt, prod_size, t_prod, w.depth() - 1))
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    lines = [
        f"{'k':>3} | {'alt rules':>9} | {'alt time':>10} | {'prod rules':>10} "
        f"| {'prod time':>10} | {'witness depth':>13}"
    ]
    for k, asize, t_alt, psize, t_prod, d in rows:
        lines.append(
            f"{k:>3} | {asize:>9} | {t_alt:>7.1f} ms | {psize:>10} "
            f"| {t_prod:>7.1f} ms | {d:>13}"
        )
    lines.append("")
    lines.append(
        "alternation: representation grows with the SUM of the operands "
        "(succinct, Prop. 2); the explicit product materializes the lcm "
        "automaton up front.  witness depth = lcm(primes) as expected."
    )
    report("Ablation: alternating STA succinctness (Prop. 2)", "\n".join(lines))

    # The succinctness claim: alternating representation strictly smaller.
    for k, asize, _, psize, _, d in rows:
        if k >= 2:
            assert asize <= psize
    # The lcm witness: depth 6 for {2,3}, depth 30 for {2,3,5}.
    assert rows[0][5] == 6 and rows[1][5] == 30


def test_ablation_alternating_emptiness(benchmark, family):
    sta, starts = family
    benchmark(lambda: is_empty(sta, starts, Solver()))


def test_ablation_product_emptiness(benchmark, family):
    sta, starts = family

    def product():
        solver = Solver()
        langs = [Language(sta, s, solver) for s in starts]
        acc = langs[0]
        for l in langs[1:]:
            acc = acc.intersect(l)
        return acc.is_empty()

    benchmark(product)
