"""Shared infrastructure for the benchmark harness.

Each benchmark reproduces one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  Benchmarks register their
paper-style tables via the ``report`` fixture; everything registered is
dumped in the terminal summary, so ``pytest benchmarks/ --benchmark-only
| tee bench_output.txt`` captures both pytest-benchmark's timing stats
and the reproduced tables/series.

Observability: pass ``--obs-json PATH`` to enable :mod:`repro.obs` for
the whole run and dump the end-of-run metric snapshot (solver query
counts, cache hit-rates, composition state counts, ...) to ``PATH`` as
schema-versioned JSON — future perf PRs can diff counters, not just
wall-clock.  Setting ``REPRO_OBS=1`` (without a path) also enables
recording; either way the metric table is appended to the terminal
summary.  Pass ``--trace-json PATH`` to additionally enable the
structured event journal and write the whole run as a Chrome/Perfetto
trace-event file (open it at ``ui.perfetto.dev``).

Environment knobs (all optional):

* ``FIG6_TAGGERS``  — taggers for the Figure 6 histogram (default 40;
  the paper uses 100, which takes a few minutes: 4,950 pairs).
* ``FIG7_MAX_N``    — largest composition count for Figure 7 (default 512).
* ``SEC51_PAGES``   — how many of the 10 page sizes to sweep (default 10).
"""

from __future__ import annotations

import os

import pytest

from repro import obs

_REPORTS: list[tuple[str, str]] = []


def add_report(title: str, body: str) -> None:
    _REPORTS.append((title, body))


@pytest.fixture()
def report():
    """Register a paper-style result table for the terminal summary."""
    return add_report


def pytest_addoption(parser):
    parser.addoption(
        "--obs-json",
        action="store",
        default=None,
        metavar="PATH",
        help="enable repro.obs and write the end-of-run metric snapshot "
        "to PATH as JSON (diffable across PRs)",
    )
    parser.addoption(
        "--trace-json",
        action="store",
        default=None,
        metavar="PATH",
        help="enable the repro.obs event journal and write the run as a "
        "Chrome/Perfetto trace-event file (open at ui.perfetto.dev)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: long-running endurance benchmark (hundreds to thousands "
        "of jobs through real worker pools); deselect with -m 'not soak' "
        "for a quick benchmark pass",
    )
    if config.getoption("--obs-json"):
        obs.enabled(True)
    if config.getoption("--trace-json"):
        obs.journal.enable()  # implies obs.enabled(True)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _REPORTS:
        terminalreporter.section("reproduced paper tables & figures")
        for title, body in _REPORTS:
            terminalreporter.write_line("")
            terminalreporter.write_line(f"--- {title} ---")
            for line in body.rstrip().splitlines():
                terminalreporter.write_line(line)
    if obs.is_enabled():
        terminalreporter.section("repro.obs metrics")
        for line in obs.render_metrics().splitlines():
            terminalreporter.write_line(line)
        path = config.getoption("--obs-json")
        if path:
            with open(path, "w") as f:
                f.write(obs.render_json())
                f.write("\n")
            terminalreporter.write_line(f"(snapshot written to {path})")
        trace_path = config.getoption("--trace-json")
        journal = obs.journal.active()
        if trace_path and journal is not None:
            obs.write_chrome_trace(trace_path, journal)
            stats = journal.stats()
            terminalreporter.write_line(
                f"(trace written to {trace_path}: {stats['emitted']} events, "
                f"{stats['dropped']} dropped by the ring)"
            )


def env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def pytest_sessionstart(session):
    # The artifact cache would skip the parse/compile work several gated
    # baselines measure (svc_batch_examples exact counts, telemetry
    # overhead ratios), so benchmarks run cache-off unless a benchmark —
    # bench_exec_compile_cache — opts back in explicitly.
    os.environ.setdefault("REPRO_CACHE", "off")
