"""The compiled execution tier's artifact cache: cold vs. warm cost.

Two measurements:

* **Interleaved cold/warm single runs** — the same program through
  ``run_program`` with the cache fully cleared before every cold run
  (memory *and* disk) and left warm for the paired warm run.  Cold pays
  parse + compile + a fresh solver; warm is a content-hash lookup plus
  evaluation against the cached environment.  Gate: warm p50 strictly
  below cold p50.

* **Warm-pool batch over a duplicated corpus** — ``fast batch``'s
  engine over 12 files carrying 3 distinct programs (4 copies each),
  run twice against the same cache directory.  The supervisor pre-warms
  every shared source once (3 compiles, not 12), workers inherit or
  disk-load the artifacts, and the second batch never parses at all.

The benchmark manages its own cache environment (``REPRO_CACHE=on`` +
a private ``REPRO_CACHE_DIR``) because ``benchmarks/conftest.py`` runs
everything else cache-off to keep the older gated baselines honest.

Counters under ``--obs-json`` are deterministic on the supervisor side
(``fast.parse``, ``exec.cache.miss``) and are gated in
``BENCH_baseline.json`` under ``exec_compile_cache``.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_exec_compile_cache.py
"""

from __future__ import annotations

import contextlib
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec.cache import DEFAULT_CACHE  # noqa: E402
from repro.fast.evaluator import run_program  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.svc import ServiceConfig  # noqa: E402
from repro.svc.batch import run_batch  # noqa: E402

#: Interleaved cold/warm rounds; fixed so gated counters are exact.
ROUNDS = int(os.environ.get("EXEC_CACHE_ROUNDS", 6))

_EXAMPLES = os.path.join(
    os.path.dirname(__file__), "..", "examples", "fast_programs"
)

with open(os.path.join(_EXAMPLES, "list_analysis.fast")) as _f:
    PROGRAM = _f.read()

#: Three distinct cheap programs for the duplicated batch corpus.
VARIANTS = [
    """\
type BT[v : Int]{{L(0), N(2)}}
lang pos : BT {{ N(l, r) where (v > {k}) given (pos l) (pos r) | L() }}
assert-false (is-empty pos)
""".format(k=k)
    for k in (0, 1, 2)
]
COPIES = 4


@contextlib.contextmanager
def cache_env(directory: str):
    """Scoped REPRO_CACHE=on + a private cache dir, state restored."""
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE", "REPRO_CACHE_DIR")}
    os.environ["REPRO_CACHE"] = "on"
    os.environ["REPRO_CACHE_DIR"] = directory
    DEFAULT_CACHE.clear()
    try:
        yield
    finally:
        DEFAULT_CACHE.clear()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _pctl(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def measure_cold_warm() -> dict[str, float]:
    """Interleaved cold/warm runs of the Figure 8 list-analysis program."""
    cold: list[float] = []
    warm: list[float] = []
    with tempfile.TemporaryDirectory() as directory:
        with cache_env(directory):
            for _ in range(ROUNDS):
                DEFAULT_CACHE.clear(disk=True)
                t0 = time.perf_counter()
                run_program(PROGRAM)
                cold.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                run_program(PROGRAM)
                warm.append(time.perf_counter() - t0)
    return {
        "rounds": float(ROUNDS),
        "cold_p50_ms": statistics.median(cold) * 1e3,
        "cold_p95_ms": _pctl(cold, 0.95) * 1e3,
        "warm_p50_ms": statistics.median(warm) * 1e3,
        "warm_p95_ms": _pctl(warm, 0.95) * 1e3,
    }


def measure_batch() -> dict[str, float]:
    """Two batches over a duplicated corpus against one cache dir."""
    counter = obs_metrics.REGISTRY.counter
    with tempfile.TemporaryDirectory() as corpus_dir, \
            tempfile.TemporaryDirectory() as cache_dir:
        for v, source in enumerate(VARIANTS):
            for c in range(COPIES):
                path = os.path.join(corpus_dir, f"v{v}_copy{c}.fast")
                with open(path, "w") as f:
                    f.write(source)
        with cache_env(cache_dir):
            stores_before = counter("exec.cache.store").snapshot()
            hits_before = counter("exec.cache.hit").snapshot()
            config = ServiceConfig(jobs=2)
            t0 = time.perf_counter()
            first = run_batch([corpus_dir], config=config)
            first_wall = time.perf_counter() - t0
            first_stores = counter("exec.cache.store").snapshot() - stores_before
            t0 = time.perf_counter()
            second = run_batch([corpus_dir], config=config)
            second_wall = time.perf_counter() - t0
            prewarm_hits = counter("exec.cache.hit").snapshot() - hits_before
    for report in (first, second):
        undecided = [
            r.job_id
            for r in report.results
            if r.outcome not in ("PROVED", "REFUTED")
        ]
        assert not undecided, f"undecided jobs in a fault-free batch: {undecided}"
    return {
        "files": float(len(VARIANTS) * COPIES),
        "distinct": float(len(VARIANTS)),
        "first_wall_ms": first_wall * 1e3,
        "second_wall_ms": second_wall * 1e3,
        "first_p50_ms": first.latency()["run"]["p50_ms"],
        "second_p50_ms": second.latency()["run"]["p50_ms"],
        "supervisor_stores": float(first_stores),
        "supervisor_prewarm_hits": float(prewarm_hits),
    }


def render(single: dict[str, float], batch: dict[str, float]) -> str:
    return "\n".join(
        [
            f"single program (list_analysis.fast), {ROUNDS} interleaved rounds:",
            f"  cold  p50 {single['cold_p50_ms']:7.1f} ms   "
            f"p95 {single['cold_p95_ms']:7.1f} ms   (parse+compile+fresh solver)",
            f"  warm  p50 {single['warm_p50_ms']:7.1f} ms   "
            f"p95 {single['warm_p95_ms']:7.1f} ms   (artifact-cache hit)",
            f"batch: {int(batch['files'])} files, "
            f"{int(batch['distinct'])} distinct programs, warm pool x2:",
            f"  first  wall {batch['first_wall_ms']:7.0f} ms   "
            f"job p50 {batch['first_p50_ms']:6.1f} ms   "
            f"(supervisor compiled {int(batch['supervisor_stores'])} shared sources)",
            f"  second wall {batch['second_wall_ms']:7.0f} ms   "
            f"job p50 {batch['second_p50_ms']:6.1f} ms   "
            f"(prewarm hits: {int(batch['supervisor_prewarm_hits'])})",
        ]
    )


def test_exec_compile_cache(report):
    single = measure_cold_warm()
    batch = measure_batch()
    report("compiled-tier artifact cache (cold vs warm)", render(single, batch))
    # The whole point of the tier: a warm run never re-does front-end work.
    assert single["warm_p50_ms"] < single["cold_p50_ms"], (
        f"warm p50 {single['warm_p50_ms']:.1f} ms is not below cold p50 "
        f"{single['cold_p50_ms']:.1f} ms — the cache is not paying for itself"
    )
    # Dedup: 12 files, 3 distinct sources, exactly 3 supervisor compiles.
    assert batch["supervisor_stores"] == batch["distinct"]
    # The second batch's prewarm finds every shared source already cached.
    assert batch["supervisor_prewarm_hits"] >= batch["distinct"]


if __name__ == "__main__":  # pragma: no cover
    single = measure_cold_warm()
    batch = measure_batch()
    print(render(single, batch))
