"""Ablation (open problems, Section 7): antichain vs complement inclusion.

The paper asks whether antichain-based universality/inclusion checking
(Bouajjani et al.) translates to the symbolic setting; our
:mod:`repro.automata.antichain` shows it does, with minterms standing in
for alphabet iteration.  The ablation compares the two inclusion
deciders on a family where the right-hand side is a union of k leaf
languages: complement-based inclusion must determinize (subset lattice,
minterms of *all* guards), while the antichain only materializes
reachable minimal sets.
"""

from __future__ import annotations

import time

import pytest

from repro.automata import Language, included_in_antichain, rule
from repro.automata.equivalence import included_in
from repro.smt import INT, Solver, mk_and, mk_eq, mk_int, mk_le, mk_mod, mk_var
from repro.trees import make_tree_type

BT = make_tree_type("BT", [("x", INT)], {"L": 0, "N": 2})
x = mk_var("x", INT)


def residue_lang(k: int, p: int = 7) -> Language:
    name = f"r{k}"
    guard = mk_eq(mk_mod(x, p), mk_int(k))
    return Language.build(
        BT, name, [rule(name, "L", guard), rule(name, "N", None, [[name], [name]])]
    )


@pytest.fixture(scope="module")
def instances():
    """(left, right_k) pairs: left = residue 0; right = union of residues 0..k-1."""
    out = []
    for k in (2, 3):
        left = residue_lang(0)
        right = residue_lang(0)
        for i in range(1, k):
            right = right.union(residue_lang(i))
        out.append((k, left, right))
    return out


def test_ablation_antichain(benchmark, instances, report):
    rows = []
    for k, left, right in instances:
        solver_a, solver_c = Solver(), Solver()
        t0 = time.perf_counter()
        gap_anti = included_in_antichain(
            left.sta, left.state, right.sta, right.state, solver_a
        )
        t_anti = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        gap_comp = included_in(
            left.sta, left.state, right.sta, right.state, solver_c
        )
        t_comp = (time.perf_counter() - t0) * 1e3
        assert gap_anti is None and gap_comp is None  # inclusion holds
        rows.append((k, t_anti, t_comp, solver_a.stats.sat_queries, solver_c.stats.sat_queries))

        # and a failing direction with witnesses from both deciders
        gap = included_in_antichain(
            right.sta, right.state, left.sta, left.state, solver_a
        )
        assert gap is not None and right.accepts(gap) and not left.accepts(gap)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    lines = [
        f"{'k':>3} | {'antichain':>11} | {'complement':>11} "
        f"| {'anti sat-queries':>16} | {'comp sat-queries':>16}"
    ]
    for k, t_anti, t_comp, qa, qc in rows:
        lines.append(
            f"{k:>3} | {t_anti:>8.1f} ms | {t_comp:>8.1f} ms | {qa:>16} | {qc:>16}"
        )
    lines.append("")
    lines.append(
        "antichain inclusion avoids determinizing the union on the right; "
        "the gap in solver queries grows with the union width"
    )
    report(
        "Ablation: antichain vs complement-based inclusion (symbolic lift "
        "of Bouajjani et al.)",
        "\n".join(lines),
    )


def test_ablation_antichain_k3(benchmark, instances):
    _, left, right = instances[1]
    benchmark(
        lambda: included_in_antichain(
            left.sta, left.state, right.sta, right.state, Solver()
        )
    )


def test_ablation_complement_k3(benchmark, instances):
    _, left, right = instances[1]
    benchmark(
        lambda: included_in(left.sta, left.state, right.sta, right.state, Solver())
    )
