"""Admission-gate load benchmark: overload behaviour, by the numbers.

The gate's pitch (:mod:`repro.svc.gate`) is that overload turns into
*fast, explicit* shedding instead of unbounded queueing.  This
benchmark makes that claim measurable: ~200 requests are blasted at a
socket front-end with a deliberately tiny pool (2 workers) and queue
(8 slots) — far past 2x the service capacity — and every request's
client-side latency is recorded.  Reported per run:

* **offered / served / shed** — the partition (must be exact: every
  request gets exactly one response; ``svc.gate.unanswered`` counts
  the holes and is diff-gated at **zero** in CI);
* **served jobs/sec** — goodput under overload;
* **shed p50/p95** — how fast a refusal arrives.  The whole point of
  admission control on the reader thread is that a shed answer does
  not wait behind the backlog: the gate requires p95 **< 10 ms**;
* **served p50/p99** — latency of accepted work; p99 must stay under
  the deadline ceiling plus execution slop, because admitted jobs
  carry their *remaining* deadline into the pool.

Environment knobs: ``GATE_REQUESTS`` (default 200), ``GATE_CLIENTS``
(default 4), ``GATE_MAX_QUEUE`` (default 8), ``GATE_SHED_P95_MS``
(default 10).

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_svc_gate.py
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.svc import (  # noqa: E402
    GateConfig,
    RetryPolicy,
    ServiceConfig,
)
from repro.svc.serve import SocketFrontEnd  # noqa: E402

N_REQUESTS = int(os.environ.get("GATE_REQUESTS", 200))
N_CLIENTS = int(os.environ.get("GATE_CLIENTS", 4))
MAX_QUEUE = int(os.environ.get("GATE_MAX_QUEUE", 8))
SHED_P95_MS = float(os.environ.get("GATE_SHED_P95_MS", 10.0))
MAX_DEADLINE = 30.0

#: Requests that never got a response — the one number that must be 0.
#: Registered here so ``--obs-json`` snapshots carry it and CI can
#: diff-gate it against the baseline with zero tolerance and zero slack.
_OBS_UNANSWERED = obs_metrics.counter("svc.gate.unanswered")

PASSING = """\
type BT[v : Int]{L(0), N(2)}
lang pos : BT { N(l, r) where (v > 0) given (pos l) (pos r) | L() }
assert-false (is-empty pos)
"""


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[int(q * (len(sorted_values) - 1))]


class _LoadClient:
    """One connection blasting pipelined requests, timing every reply."""

    def __init__(self, host: str, port: int, ids: list[str]) -> None:
        self.addr = (host, port)
        self.ids = ids
        self.sent_at: dict[str, float] = {}
        self.replies: dict[str, tuple[dict, float]] = {}
        self.errors: list[BaseException] = []

    def run(self) -> None:
        try:
            with socket.create_connection(self.addr, timeout=120) as conn:
                wire = conn.makefile(
                    "rw", encoding="utf-8", newline="\n"
                )
                for request_id in self.ids:
                    self.sent_at[request_id] = time.perf_counter()
                    wire.write(
                        json.dumps(
                            {
                                "id": request_id,
                                "kind": "run",
                                "source": PASSING,
                            }
                        )
                        + "\n"
                    )
                    wire.flush()
                for _ in self.ids:
                    line = wire.readline()
                    if not line:
                        break  # holes become unanswered, counted below
                    doc = json.loads(line)
                    self.replies[doc["id"]] = (doc, time.perf_counter())
        except BaseException as exc:
            self.errors.append(exc)


def measure() -> dict[str, float]:
    front = SocketFrontEnd(
        config=ServiceConfig(
            jobs=2, retry=RetryPolicy(base_delay=0.01)
        ),
        gate_config=GateConfig(
            max_queue=MAX_QUEUE,
            max_deadline=MAX_DEADLINE,
            drain_timeout=60.0,
            workers=2,
        ),
    )
    per_client = N_REQUESTS // N_CLIENTS
    clients = [
        _LoadClient(
            "127.0.0.1",
            0,
            [f"c{c}-r{i}" for i in range(per_client)],
        )
        for c in range(N_CLIENTS)
    ]
    with front:
        for client in clients:
            client.addr = (front.host, front.port)
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=client.run) for client in clients
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        wall = time.perf_counter() - t0
        front.initiate_drain()
        front.wait(90.0)
    for client in clients:
        if client.errors:
            raise client.errors[0]

    shed_lat: list[float] = []
    served_lat: list[float] = []
    unanswered = 0
    for client in clients:
        for request_id in client.ids:
            hit = client.replies.get(request_id)
            if hit is None:
                unanswered += 1
                continue
            doc, at = hit
            latency = at - client.sent_at[request_id]
            if doc.get("shed"):
                shed_lat.append(latency)
            else:
                served_lat.append(latency)
    _OBS_UNANSWERED.inc(unanswered)
    shed_lat.sort()
    served_lat.sort()
    offered = per_client * N_CLIENTS
    return {
        "offered": float(offered),
        "served": float(len(served_lat)),
        "shed": float(len(shed_lat)),
        "unanswered": float(unanswered),
        "wall_s": wall,
        "served_jobs_per_sec": len(served_lat) / wall if wall else 0.0,
        "shed_p50_ms": _quantile(shed_lat, 0.50) * 1e3,
        "shed_p95_ms": _quantile(shed_lat, 0.95) * 1e3,
        "served_p50_ms": _quantile(served_lat, 0.50) * 1e3,
        "served_p99_ms": _quantile(served_lat, 0.99) * 1e3,
    }


def render(row: dict[str, float]) -> str:
    return "\n".join(
        [
            f"offered {int(row['offered'])} requests from {N_CLIENTS} "
            f"clients into 2 workers / queue {MAX_QUEUE} "
            f"({os.cpu_count()} cpu(s))",
            f"partition: served {int(row['served'])}  "
            f"shed {int(row['shed'])}  "
            f"unanswered {int(row['unanswered'])}",
            f"goodput: {row['served_jobs_per_sec']:.1f} served/sec "
            f"over {row['wall_s'] * 1e3:.0f} ms",
            f"shed latency:   p50 {row['shed_p50_ms']:.2f} ms  "
            f"p95 {row['shed_p95_ms']:.2f} ms",
            f"served latency: p50 {row['served_p50_ms']:.1f} ms  "
            f"p99 {row['served_p99_ms']:.1f} ms",
        ]
    )


def test_gate_under_overload(report):
    row = measure()
    report("svc gate under ~2x+ overload", render(row))
    # Machine shape for the diff gate: latency guards only compare
    # between like hosts, so a differing core count annotates instead
    # of failing (see repro.obs.diff).
    obs_metrics.REGISTRY.gauge("bench.host_cpus").set(
        float(os.cpu_count() or 1)
    )
    obs_metrics.REGISTRY.gauge("bench.pool_workers").set(2.0)
    # The partition is exact: every request is served or shed, none
    # vanish.  This is the invariant CI diff-gates at zero.
    assert row["unanswered"] == 0, (
        f"{int(row['unanswered'])} request(s) never got a response"
    )
    assert row["served"] + row["shed"] == row["offered"]
    # Under this much overload the tiny queue must actually shed.
    assert row["shed"] > 0, "no shedding under 2x+ overload?"
    # And something must still be served: shedding is load *management*,
    # not an outage.
    assert row["served"] >= MAX_QUEUE, (
        f"only {int(row['served'])} served; the gate starved the pool"
    )
    # A refusal is fast however deep the backlog is.
    assert row["shed_p95_ms"] < SHED_P95_MS, (
        f"shed p95 {row['shed_p95_ms']:.2f} ms exceeds the "
        f"{SHED_P95_MS} ms bound — admission is waiting on the backlog"
    )
    # Served latency is bounded by the deadline ceiling (+ generous
    # slop for the final in-flight execution on a loaded box).
    assert row["served_p99_ms"] < (MAX_DEADLINE + 30.0) * 1e3, (
        f"served p99 {row['served_p99_ms']:.0f} ms blew past the "
        f"deadline ceiling — remaining-time propagation is broken"
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(measure()))
