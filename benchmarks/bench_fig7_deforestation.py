"""Figure 7 (Section 5.3): deforestation on a 4,096-integer list.

The paper runs ``map_caesar`` composed with itself n times, n up to 512:
with Fast the composed transducer's runtime is "almost unchanged" while
the naive pipeline "degrades linearly in the number of composed
functions" (reported point: 1,313 ms vs 4,686 ms at n = 512 on their
setup).  We reproduce the series and assert the shape: flat vs linear.

Set FIG7_MAX_N to cap the sweep (default 512, the paper's maximum).
"""

from __future__ import annotations

import pytest

from repro.apps.deforestation import (
    ILIST,
    composed_n,
    encode_list,
    map_caesar,
    measure,
    random_list,
    run_deforested,
    run_naive,
)
from repro.smt import Solver

from conftest import env_int

LIST_LENGTH = 4096


@pytest.fixture(scope="module")
def sweep():
    max_n = env_int("FIG7_MAX_N", 512)
    ns = [n for n in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512) if n <= max_n]
    values = random_list(LIST_LENGTH, seed=7)
    return ns, [measure(n, values) for n in ns]


def test_fig7_series(benchmark, sweep, report):
    ns, samples = sweep
    benchmark.pedantic(lambda: samples, rounds=1, iterations=1)

    lines = [
        f"list length: {LIST_LENGTH} (the paper's 4,096)",
        "",
        f"{'n':>4} | {'Fast (composed)':>16} | {'No Fast (naive)':>16} | {'compose time':>12}",
    ]
    for n, s in zip(ns, samples):
        lines.append(
            f"{n:>4} | {s.deforested_seconds * 1e3:>13.1f} ms "
            f"| {s.naive_seconds * 1e3:>13.1f} ms | {s.compose_seconds * 1e3:>9.1f} ms"
        )
    first, last = samples[0], samples[-1]
    lines.append("")
    lines.append(
        f"naive grows {last.naive_seconds / first.naive_seconds:.0f}x from "
        f"n={ns[0]} to n={ns[-1]}; composed grows "
        f"{last.deforested_seconds / first.deforested_seconds:.1f}x "
        f"(paper at n=512: 4,686 ms naive vs 1,313 ms Fast)"
    )
    report("Figure 7: deforestation, Fast vs no Fast", "\n".join(lines))

    # Shape: naive is linear in n, composed stays (nearly) flat.
    assert last.naive_seconds > first.naive_seconds * (ns[-1] / ns[0]) * 0.2
    assert last.deforested_seconds < first.deforested_seconds * 8
    assert last.naive_seconds > last.deforested_seconds * 4


def test_fig7_composed_run(benchmark):
    """Micro: one pass of the 64-fold composed transducer over the list."""
    solver = Solver()
    comp = composed_n(64, solver)
    data = encode_list(random_list(LIST_LENGTH, seed=7), ILIST)
    benchmark(lambda: run_deforested(comp, data))


def test_fig7_naive_16_passes(benchmark):
    solver = Solver()
    base = map_caesar(solver)
    data = encode_list(random_list(LIST_LENGTH, seed=7), ILIST)
    benchmark(lambda: run_naive(base, data, 16))


def test_fig7_composition_cost(benchmark):
    """Composing 32 copies (the offline cost deforestation pays once)."""
    benchmark(lambda: composed_n(32, Solver()))
