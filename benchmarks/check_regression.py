"""Fail CI when a benchmark's counters regress past the baseline.

Thin compatibility wrapper over :mod:`repro.obs.diff` (the regression
gate now lives in the library so it can be tested and reused)::

    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json \
        --snapshot /tmp/obs.json \
        --bench fig7_max_n_32 [--tolerance 0.2]

Equivalent to::

    python -m repro.obs.diff --baseline BENCH_baseline.json \
        --bench fig7_max_n_32 --snapshot /tmp/obs.json

The baseline file stores, per benchmark, a ``guard`` mapping of obs
counter names to expected values, and optionally a ``tolerances``
mapping overriding the relative tolerance per counter.  A counter
regresses when the fresh snapshot exceeds
``baseline * (1 + tolerance) + slack``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import diff as obs_diff  # noqa: E402


def check(
    baseline_path: str,
    snapshot_path: str,
    bench: str,
    tolerance: float,
    slack: float,
) -> int:
    return obs_diff.gate(
        obs_diff.load(baseline_path),
        bench,
        obs_diff.load(snapshot_path),
        tolerance=tolerance,
        slack=slack,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--snapshot", required=True, help="--obs-json output of a fresh run")
    parser.add_argument("--bench", required=True, help="key under 'benchmarks' in the baseline")
    parser.add_argument("--tolerance", type=float, default=obs_diff.DEFAULT_TOLERANCE,
                        help="allowed relative regression (default 0.2 = 20%%)")
    parser.add_argument("--slack", type=float, default=obs_diff.DEFAULT_SLACK,
                        help="allowed absolute regression on top (default 10)")
    args = parser.parse_args()
    return check(args.baseline, args.snapshot, args.bench, args.tolerance, args.slack)


if __name__ == "__main__":
    raise SystemExit(main())
