"""Fail CI when a benchmark's solver counters regress past the baseline.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json \
        --snapshot /tmp/obs.json \
        --bench fig7_max_n_32 [--tolerance 0.2]

The baseline file (repo root ``BENCH_baseline.json``) stores, per
benchmark, a ``guard`` mapping of obs counter names to their expected
values.  A counter regresses when the fresh snapshot exceeds
``baseline * (1 + tolerance) + slack`` — the small absolute ``slack``
keeps zero-valued baselines (e.g. fig7's ``solver.sat_queries``, which
hash-consing drives to exactly 0) from tripping on incidental noise
while still catching any real reintroduction of solver work.

Counters only ever improve silently: a snapshot *below* baseline passes
and prints the delta so the baseline can be ratcheted down by hand.
"""

from __future__ import annotations

import argparse
import json
import sys


def check(baseline_path: str, snapshot_path: str, bench: str, tolerance: float, slack: int) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(snapshot_path) as f:
        snapshot = json.load(f)

    benchmarks = baseline.get("benchmarks", {})
    if bench not in benchmarks:
        print(f"error: benchmark {bench!r} not in {baseline_path} "
              f"(have: {', '.join(sorted(benchmarks))})", file=sys.stderr)
        return 2
    guard = benchmarks[bench].get("guard", {})
    if not guard:
        print(f"warning: benchmark {bench!r} has no guarded counters; nothing to check")
        return 0

    metrics = snapshot.get("metrics", snapshot)
    failures = []
    for name, expected in guard.items():
        actual = metrics.get(name)
        if actual is None:
            failures.append(f"{name}: missing from snapshot (baseline {expected})")
            continue
        limit = expected * (1.0 + tolerance) + slack
        verdict = "FAIL" if actual > limit else "ok"
        print(f"{verdict:4} {name}: baseline={expected} actual={actual} limit={limit:g}")
        if actual > limit:
            failures.append(f"{name}: {actual} > limit {limit:g} (baseline {expected})")

    if failures:
        print(f"\n{bench}: {len(failures)} counter(s) regressed past "
              f"{tolerance:.0%} tolerance:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print(f"\n{bench}: all guarded counters within {tolerance:.0%} of baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--snapshot", required=True, help="--obs-json output of a fresh run")
    parser.add_argument("--bench", required=True, help="key under 'benchmarks' in the baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative regression (default 0.2 = 20%%)")
    parser.add_argument("--slack", type=int, default=10,
                        help="allowed absolute regression on top (default 10)")
    args = parser.parse_args()
    return check(args.baseline, args.snapshot, args.bench, args.tolerance, args.slack)


if __name__ == "__main__":
    raise SystemExit(main())
