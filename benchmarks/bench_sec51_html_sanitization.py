"""Section 5.1 evaluation: HTML sanitization across page sizes.

The paper picks 10 pages from 20 KB (Bing) to 409 KB (Facebook) and
finds the Fast-based sanitizer "comparable" in speed to HTML Purifier,
while being ~200 lines of Fast instead of ~10,000 lines of PHP, and —
unlike PHP — precisely analyzable.  We sweep synthetic pages over the
same size range (DESIGN.md documents the substitution), comparing:

* the composed transducer (one traversal — the paper's design point),
* the uncomposed two-pass pipeline (what composition saves),
* the monolithic hand-fused DOM rewriter (the HTML Purifier shape).

All three must agree on every output.  We also report the LoC of our
Fast program vs. the Python substrate, the paper's maintainability
argument.

SEC51_PAGES limits how many of the 10 sizes run (default all 10).
"""

from __future__ import annotations

import time

import pytest

from repro.apps.html import (
    FastHtmlSanitizer,
    MonolithicSanitizer,
    fast_sanitizer_source,
    paper_page_suite,
)

from conftest import env_int


@pytest.fixture(scope="module")
def sanitizers():
    return FastHtmlSanitizer(), MonolithicSanitizer()


@pytest.fixture(scope="module")
def page_sweep(sanitizers):
    fast, mono = sanitizers
    n_pages = env_int("SEC51_PAGES", 10)
    rows = []
    for name, html in paper_page_suite()[:n_pages]:
        t0 = time.perf_counter()
        out_fast = fast.sanitize(html)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_two = fast.sanitize_two_pass(html)
        t_two = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_mono = mono.sanitize(html)
        t_mono = time.perf_counter() - t0
        assert out_fast == out_two == out_mono, f"outputs disagree on {name}"
        assert "<script" not in out_fast
        rows.append((name, len(html), t_fast, t_two, t_mono))
    return rows


def test_sec51_page_sweep(benchmark, page_sweep, report):
    benchmark.pedantic(lambda: page_sweep, rounds=1, iterations=1)
    lines = [
        f"{'page':>12} | {'size':>7} | {'composed':>10} | {'two-pass':>10} | {'monolithic':>10}",
    ]
    for name, size, t_fast, t_two, t_mono in page_sweep:
        lines.append(
            f"{name:>12} | {size // 1000:>4} KB | {t_fast * 1e3:>7.0f} ms "
            f"| {t_two * 1e3:>7.0f} ms | {t_mono * 1e3:>7.1f} ms"
        )
    speedups = [t_two / t_fast for _, _, t_fast, t_two, _ in page_sweep]
    lines.append("")
    lines.append(
        f"composition saves one traversal: two-pass/composed = "
        f"{sum(speedups) / len(speedups):.2f}x on average"
    )
    fast_loc = len(
        [l for l in fast_sanitizer_source().splitlines() if l.strip()]
    )
    lines.append(
        f"sanitizer size: {fast_loc} lines of Fast "
        f"(paper: ~200 lines of Fast vs ~10,000 lines of PHP); the "
        f"interpreter is pure Python, so absolute times trail a native "
        f"rewriter — the paper's C# backend closed that gap"
    )
    report("Section 5.1: HTML sanitization across page sizes", "\n".join(lines))

    # Shape assertions: all three agree (checked in fixture); composed
    # beats two-pass; time grows roughly linearly with page size.
    assert all(t_fast < t_two for _, _, t_fast, t_two, _ in page_sweep)
    first, last = page_sweep[0], page_sweep[-1]
    size_ratio = last[1] / first[1]
    time_ratio = last[2] / first[2]
    assert time_ratio < size_ratio * 4, "sanitization should scale ~linearly"


def test_sec51_sanitize_20kb(benchmark, sanitizers):
    fast, _ = sanitizers
    _, html = paper_page_suite()[0]
    benchmark(lambda: fast.sanitize(html))


def test_sec51_monolithic_20kb(benchmark, sanitizers):
    _, mono = sanitizers
    _, html = paper_page_suite()[0]
    benchmark(lambda: mono.sanitize(html))
