"""Analysis-service throughput: jobs/sec and latency through the pool.

The supervised pool (:mod:`repro.svc`) buys fault isolation with
subprocess dispatch — pickling specs, piping results, event-loop
bookkeeping — so its cost must be measured, not assumed.  This
benchmark pushes a fixed corpus of small ``run``/``emptiness`` jobs
through :class:`~repro.svc.AnalysisService` at ``--jobs 1 / 4 / 8``
and reports, per pool size:

* **jobs/sec** — corpus size over supervisor wall-clock (includes
  dispatch overhead, the honest serving number);
* **p50/p95 exec** — per-job worker-side execution time
  (``JobResult.duration``), which is pool-size independent and
  separates analysis cost from supervision cost.

Scaling with pool size tracks the machine's core count, so the gates
here are *sanity* gates (every job completes and decides; throughput
is finite and positive), not speedup gates — CI containers routinely
pin to 1–2 cores where ``--jobs 8`` cannot beat ``--jobs 1``.
Measured numbers live in ``BENCH_baseline.json`` under
``svc_throughput`` with loose, informational tolerances.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_svc_throughput.py
"""

from __future__ import annotations

import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.svc import (  # noqa: E402
    AnalysisService,
    JobSpec,
    RetryPolicy,
    ServiceConfig,
)

POOL_SIZES = tuple(
    int(s) for s in os.environ.get("SVC_POOL_SIZES", "1,4,8").split(",")
)
CORPUS_SIZE = int(os.environ.get("SVC_CORPUS_SIZE", 24))

PASSING = """\
type BT[v : Int]{L(0), N(2)}
lang pos : BT { N(l, r) where (v > 0) given (pos l) (pos r) | L() }
assert-false (is-empty pos)
"""

EMPTY_LANG = """\
type BT[v : Int]{L(0), N(2)}
lang none : BT { L() where (v > 0 && v < 0) }
"""


def corpus(n: int) -> list[JobSpec]:
    """``n`` small jobs, alternating whole-program runs and emptiness
    queries so the mix exercises both executor paths."""
    specs: list[JobSpec] = []
    for i in range(n):
        if i % 2:
            specs.append(
                JobSpec(f"empty-{i}", "emptiness", EMPTY_LANG,
                        args=(("lang", "none"),))
            )
        else:
            specs.append(JobSpec(f"run-{i}", "run", PASSING))
    return specs


def measure(pool_size: int) -> dict[str, float]:
    """One corpus through one warm pool; wall-clock excludes spawn."""
    config = ServiceConfig(
        jobs=pool_size, retry=RetryPolicy(base_delay=0.01)
    )
    with AnalysisService(config) as svc:
        svc.run_job(JobSpec("warmup", "run", PASSING))  # pay spawn once
        t0 = time.perf_counter()
        results = svc.run_jobs(corpus(CORPUS_SIZE))
        wall = time.perf_counter() - t0
    durations = sorted(r.duration for r in results)
    undecided = [r.job_id for r in results if r.outcome not in ("PROVED", "REFUTED")]
    return {
        "jobs": float(pool_size),
        "wall_s": wall,
        "jobs_per_sec": CORPUS_SIZE / wall,
        "p50_exec_s": statistics.median(durations),
        "p95_exec_s": durations[int(0.95 * (len(durations) - 1))],
        "undecided": float(len(undecided)),
    }


def render(rows: list[dict[str, float]]) -> str:
    lines = [
        f"corpus: {CORPUS_SIZE} jobs (run/emptiness mix), warm pool, "
        f"{os.cpu_count()} cpu(s)",
        f"{'--jobs':>6}  {'wall':>8}  {'jobs/sec':>8}  "
        f"{'p50 exec':>9}  {'p95 exec':>9}",
    ]
    for row in rows:
        lines.append(
            f"{int(row['jobs']):>6}  {row['wall_s'] * 1e3:>6.0f} ms  "
            f"{row['jobs_per_sec']:>8.1f}  "
            f"{row['p50_exec_s'] * 1e3:>6.1f} ms  "
            f"{row['p95_exec_s'] * 1e3:>6.1f} ms"
        )
    return "\n".join(lines)


def test_throughput_across_pool_sizes(report):
    rows = [measure(size) for size in POOL_SIZES]
    report("svc throughput (supervised pool)", render(rows))
    # Throughput only compares between like hosts: record the machine
    # shape into the snapshot so repro.obs.diff can annotate (instead
    # of fail) when baseline and candidate core counts differ.
    obs_metrics.REGISTRY.gauge("bench.host_cpus").set(
        float(os.cpu_count() or 1)
    )
    obs_metrics.REGISTRY.gauge("bench.pool_workers").set(
        float(max(POOL_SIZES))
    )
    for row in rows:
        # Sanity gates only (see module docstring): everything decides,
        # nothing degrades, throughput is real.
        assert row["undecided"] == 0, (
            f"--jobs {int(row['jobs'])}: {int(row['undecided'])} job(s) "
            f"came back UNKNOWN/ERROR on a fault-free corpus"
        )
        assert row["jobs_per_sec"] > 0.5, (
            f"--jobs {int(row['jobs'])}: {row['jobs_per_sec']:.2f} jobs/sec "
            f"— supervision overhead has regressed catastrophically"
        )


def test_pool_overhead_is_bounded(report):
    """Dispatch overhead: supervisor wall-clock vs. summed exec time.

    With one worker the pool runs jobs strictly sequentially, so wall ≈
    Σ exec + per-job dispatch cost.  The gate allows a generous 75 ms
    per job (pickling + pipe + event loop on a busy CI box) — the
    measured figure is single-digit milliseconds.
    """
    config = ServiceConfig(jobs=1)
    with AnalysisService(config) as svc:
        svc.run_job(JobSpec("warmup", "run", PASSING))
        specs = corpus(10)
        t0 = time.perf_counter()
        results = svc.run_jobs(specs)
        wall = time.perf_counter() - t0
    exec_sum = sum(r.duration for r in results)
    overhead_per_job = (wall - exec_sum) / len(specs)
    report(
        "svc dispatch overhead",
        f"wall {wall * 1e3:.0f} ms, exec sum {exec_sum * 1e3:.0f} ms, "
        f"overhead {overhead_per_job * 1e3:.1f} ms/job",
    )
    assert overhead_per_job < 0.075, (
        f"per-job dispatch overhead {overhead_per_job * 1e3:.1f} ms "
        f"exceeds the 75 ms bound"
    )


if __name__ == "__main__":  # pragma: no cover
    rows = [measure(size) for size in POOL_SIZES]
    print(render(rows))
