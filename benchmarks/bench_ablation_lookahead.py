"""Ablation (Section 3.4, Example 4): why regular lookahead.

Plain STTs are not closed under composition: when the second transducer
deletes subtrees, their constraints are forgotten.  The paper's Example
4 — ``s1`` is the identity iff every label is true, ``s2`` maps
everything to a leaf — composes to a function an STT cannot express.

The ablation measures what the lookahead machinery costs and what it
buys: we compose with the full algorithm, then *strip* the lookahead
from the composed rules (what a lookahead-free composition would keep)
and count how many inputs the stripped transducer wrongly accepts.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.automata.sta import STA
from repro.smt import BOOL, Solver, mk_bool, mk_var
from repro.transducers import OutApply, OutNode, STTR, Transducer, compose, run, trule
from repro.trees import make_tree_type, node

BBT = make_tree_type("BBT", [("b", BOOL)], {"L": 0, "N": 2})
b = mk_var("b", BOOL)


def make_example4(solver):
    s1 = STTR(
        "s1",
        BBT,
        BBT,
        "q",
        (
            trule("q", "L", OutNode("L", (b,), ()), guard=b, rank=0),
            trule("q", "N", OutNode("N", (b,), (OutApply("q", 0), OutApply("q", 1))), guard=b, rank=2),
        ),
    )
    s2 = STTR(
        "s2",
        BBT,
        BBT,
        "p",
        (
            trule("p", "L", OutNode("L", (mk_bool(True),), ()), rank=0),
            trule("p", "N", OutNode("L", (mk_bool(True),), ()), rank=2),
        ),
    )
    return s1, s2


def strip_lookahead(sttr: STTR) -> STTR:
    """What a lookahead-free (plain STT) composition would remember."""
    from repro.transducers.sttr import STTRRule

    return STTR(
        sttr.name + "-stripped",
        sttr.input_type,
        sttr.output_type,
        sttr.initial,
        tuple(
            STTRRule(
                r.state,
                r.ctor,
                r.guard,
                tuple(frozenset() for _ in r.lookahead),
                r.output,
            )
            for r in sttr.rules
        ),
        STA(sttr.input_type, ()),
    )


def all_trees(depth: int):
    """All BBT trees up to the given depth."""
    if depth == 0:
        return [node("L", True), node("L", False)]
    smaller = all_trees(depth - 1)
    out = list(smaller)
    for lbl in (True, False):
        for l, r in itertools.product(smaller, repeat=2):
            out.append(node("N", lbl, l, r))
    return out


def test_ablation_lookahead(benchmark, report):
    solver = Solver()
    s1, s2 = make_example4(solver)

    t0 = time.perf_counter()
    composed = compose(s1, s2, solver)
    t_compose = (time.perf_counter() - t0) * 1e3
    stripped = strip_lookahead(composed)
    benchmark.pedantic(lambda: compose(s1, s2, Solver()), rounds=3, iterations=1)

    trees = all_trees(2)
    wrong = 0
    correct = 0
    for t in trees:
        reference = bool(run(s1, t)) and True  # s2 is total
        with_la = bool(run(composed, t))
        without_la = bool(run(stripped, t))
        assert with_la == reference, "lookahead composition must be exact"
        if without_la != reference:
            wrong += 1
        else:
            correct += 1
    report(
        "Ablation: regular lookahead in composition (Example 4)",
        f"composition time: {t_compose:.1f} ms, composed lookahead "
        f"states: {len(composed.lookahead_sta.states)}\n"
        f"exhaustive check on {len(trees)} trees (depth <= 2): "
        f"with lookahead 0 wrong; without lookahead {wrong} wrongly "
        f"accepted (deleted subtrees' constraints forgotten)",
    )
    assert wrong > 0, "stripping lookahead must lose the deleted constraints"


def test_ablation_lookahead_execution_overhead(benchmark):
    """Running a lookahead-guarded transducer vs. the stripped one."""
    solver = Solver()
    s1, s2 = make_example4(solver)
    composed = compose(s1, s2, solver)
    deep = node("L", True)
    for i in range(200):
        deep = node("N", True, deep, node("L", True))
    benchmark(lambda: run(composed, deep))
