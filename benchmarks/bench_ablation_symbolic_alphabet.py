"""Ablation (Section 6): symbolic vs. classical (explicit) alphabets.

The paper argues that classical tree automata do not scale for the HTML
domain: the constraint ``tag != "script"`` is one symbolic rule, while a
classical automaton needs one rule per alphabet symbol — ``6 * (2^16 -
1)`` rules for UTF-16.  We reproduce the blowup quantitatively: encode
"label is not c0" over an alphabet of N symbols both ways and measure
rule counts, construction, emptiness, and complementation as N grows.
"""

from __future__ import annotations

import time

import pytest

from repro.automata import Language, rule
from repro.smt import STRING, Solver, mk_eq, mk_ne, mk_str, mk_var
from repro.trees import make_tree_type

HT = make_tree_type("HT", [("tag", STRING)], {"nil": 0, "n": 1})
tag = mk_var("tag", STRING)


def symbolic_not_script(solver: Solver) -> Language:
    """One rule: tag != c0, recursively."""
    return Language.build(
        HT,
        "s",
        [
            rule("s", "n", mk_ne(tag, mk_str("c0")), [["s"]]),
            rule("s", "nil"),
        ],
        solver,
    )


def classical_not_script(alphabet_size: int, solver: Solver) -> Language:
    """One rule per non-c0 symbol: the explicit-alphabet encoding."""
    rules = [rule("s", "nil")]
    for i in range(1, alphabet_size):
        rules.append(rule("s", "n", mk_eq(tag, mk_str(f"c{i}")), [["s"]]))
    return Language.build(HT, "s", rules, solver)


def test_ablation_symbolic_alphabet(benchmark, report):
    rows = []
    for n in (16, 64, 256, 1024):
        solver = Solver()
        t0 = time.perf_counter()
        classical = classical_not_script(n, solver)
        assert not classical.is_empty()
        t_classical = (time.perf_counter() - t0) * 1e3

        solver2 = Solver()
        t0 = time.perf_counter()
        symbolic = symbolic_not_script(solver2)
        assert not symbolic.is_empty()
        t_symbolic = (time.perf_counter() - t0) * 1e3

        rows.append(
            (n, symbolic.size()[1], classical.size()[1], t_symbolic, t_classical)
        )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    lines = [
        f"{'|alphabet|':>10} | {'sym rules':>9} | {'cls rules':>9} "
        f"| {'sym build+empty':>15} | {'cls build+empty':>15}"
    ]
    for n, sr, cr, ts, tc in rows:
        lines.append(
            f"{n:>10} | {sr:>9} | {cr:>9} | {ts:>12.2f} ms | {tc:>12.2f} ms"
        )
    lines.append("")
    lines.append(
        "the symbolic encoding is constant-size in the alphabet; the "
        "classical one grows linearly here and would need 6*(2^16 - 1) "
        "rules for the paper's UTF-16 'script' constraint"
    )
    report("Ablation (Section 6): symbolic vs classical alphabets", "\n".join(lines))
    # rule count: symbolic constant, classical linear in the alphabet
    assert rows[0][1] == rows[-1][1] == 2
    assert rows[-1][2] >= 1024


def test_ablation_symbolic_complement(benchmark):
    """Complementing the symbolic 'no script' language (minterms do the
    finite-alphabet work lazily)."""
    solver = Solver()
    lang = symbolic_not_script(solver)
    benchmark(lambda: lang.complement().is_empty())


def test_ablation_classical_complement_small(benchmark):
    """Complementing the 64-symbol classical encoding: the minterm
    computation now sees 64 predicates."""
    solver = Solver()
    lang = classical_not_script(64, solver)
    benchmark.pedantic(lambda: lang.complement().is_empty(), rounds=1, iterations=1)
