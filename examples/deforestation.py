#!/usr/bin/env python
"""Deforestation via transducer composition (paper Section 5.3, Figure 7).

``map_caesar`` composed with itself n times: the naive pipeline
materializes n intermediate lists; the composed transducer makes one
pass, and its label expression simplifies to a single shift — so its
runtime stays flat while the naive pipeline grows linearly.

Run:  python examples/deforestation.py
"""

from repro.apps.deforestation import composed_n, measure, random_list
from repro.smt import Solver

values = random_list(4096, seed=42)
print(f"input: list of {len(values)} random integers\n")

print(f"{'n':>4} | {'deforested':>12} | {'naive':>12} | {'speedup':>8}")
print("-" * 48)
for n in (1, 2, 4, 8, 16, 32, 64, 128):
    sample = measure(n, values)
    speedup = sample.naive_seconds / sample.deforested_seconds
    print(
        f"{n:>4} | {sample.deforested_seconds * 1e3:>9.1f} ms "
        f"| {sample.naive_seconds * 1e3:>9.1f} ms | {speedup:>7.1f}x"
    )

print()
comp = composed_n(64, Solver())
rule = comp.sttr.rules_from(comp.sttr.initial, "cons")[0]
print("the composed transducer's cons rule after 64 compositions:")
print(f"  output label expression: {rule.output.attr_exprs[0]!r}")
print(f"  transducer size (states, rules): {comp.size()}")
print("\ncomposition collapsed 64 passes into one traversal with a single")
print("shift — the Figure 7 flat line.")
