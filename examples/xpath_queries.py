#!/usr/bin/env python
"""XPath queries as symbolic tree automata (the paper's planned extension).

The paper's related-work section: "We plan to extend Fast to better
handle XML processing and to identify a fragment of XPath expressible in
Fast."  This example realizes the navigational fragment — child /
descendant axes, wildcards, (negated) existential predicates — and runs
the classical static analyses on it: satisfiability, containment, and
disjointness, all via the automaton algebra.

Run:  python examples/xpath_queries.py
"""

from repro.apps.xpath import (
    compile_xpath,
    contained_in,
    disjoint,
    satisfiable,
    selects,
)
from repro.trees.unranked import Unranked


def U(label, *children):
    return Unranked(label, tuple(children))


document = U(
    "html",
    U("body",
      U("div", U("p"), U("span", U("p"))),
      U("p"),
      U("ul", U("li"), U("li"))),
)

print("document: html > body > {div > {p, span > p}, p, ul > 2x li}\n")

queries = [
    "/html/body",
    "//p",
    "//span/p",
    "//div[p]",
    "//div[not(table)]",
    "//ul[p]",
    "/html/li",
]
print("query evaluation (does the query select a node?):")
for q in queries:
    print(f"  {q:<22} -> {selects(q, document)}")

print("\nstatic analysis over ALL documents:")
checks = [
    ("satisfiable('//div[p][not(table)]')", satisfiable("//div[p][not(table)]")),
    ("satisfiable('//div[p][not(p)]')", satisfiable("//div[p][not(p)]")),
    ("'/a/b' contained in '//b'", contained_in("/a/b", "//b") is None),
    ("'//b' contained in '/a/b'", contained_in("//b", "/a/b") is None),
    ("'//div[p]' contained in '//div'", contained_in("//div[p]", "//div") is None),
    ("disjoint('//div', '//p')", disjoint("//div", "//p")),
]
for label, value in checks:
    print(f"  {label:<40} -> {value}")

gap = contained_in("//b", "/a/b")
print(f"\ncontainment counterexample for '//b' vs '/a/b': {gap}")
lang = compile_xpath("//div[p]")
print(f"compiled '//div[p]' automaton size (states, rules): {lang.size()}")
