#!/usr/bin/env python
"""Augmented-reality tagger conflict detection (paper Section 5.2).

Generates random taggers like the paper's evaluation, runs the
four-step conflict pipeline (compose, restrict input to untagged
worlds, restrict output to double-tagged worlds, emptiness), and shows
a concrete conflicting world when one exists.

Run:  python examples/augmented_reality.py [n_taggers]
"""

import itertools
import sys
import time

from repro.apps.ar import check_conflict, decode_world, make_tagger
from repro.smt import Solver

n_taggers = int(sys.argv[1]) if len(sys.argv) > 1 else 12
solver = Solver()

print(f"generating {n_taggers} random taggers (1-95 states each)...")
taggers = []
for seed in range(n_taggers):
    tagger, spec = make_tagger(seed, solver)
    taggers.append((tagger, spec))
    print(f"  {spec.name}: {spec.states} states, tag #{spec.tag_id}")

print()
pairs = list(itertools.combinations(range(n_taggers), 2))
print(f"checking {len(pairs)} pairs for conflicts "
      f"(an app store would run this on submission)...")
conflicts = []
t0 = time.perf_counter()
for a, b in pairs:
    result = check_conflict(taggers[a][0], taggers[b][0], want_witness=True)
    if result.conflict:
        conflicts.append((a, b, result))
elapsed = time.perf_counter() - t0

print(f"\n{len(conflicts)}/{len(pairs)} conflicting pairs "
      f"({elapsed:.1f}s total, {elapsed / len(pairs) * 1e3:.0f} ms/pair average)")

for a, b, result in conflicts[:3]:
    print(f"\nconflict between tagger{a} and tagger{b}:")
    print(f"  steps: compose={result.compose_time * 1e3:.0f}ms "
          f"restrict-in={result.restrict_in_time * 1e3:.0f}ms "
          f"restrict-out={result.restrict_out_time * 1e3:.0f}ms "
          f"check={result.check_time * 1e3:.0f}ms")
    world = result.witness
    print(f"  conflicting world: {decode_world(world)}")
    mid = taggers[a][0].apply_one(world)
    out = taggers[b][0].apply_one(mid)
    tagged = decode_world(out)
    doubled = [ident for ident, c in tagged if c >= 2]
    print(f"  after both taggers: {tagged}  (element(s) {doubled} double-tagged)")
