#!/usr/bin/env python
"""The HTML sanitization case study (paper Sections 2 and 5.1).

Shows the full story: write the sanitization passes as independent Fast
transformations, compose them into a single-traversal sanitizer, run it
on real markup, and — the part no hand-written sanitizer offers —
*verify* it: prove no input can smuggle a script node through, and
reproduce the paper's counterexample for the buggy variant.

Run:  python examples/html_sanitizer.py
"""

import pathlib
import time

from repro.apps.html import FastHtmlSanitizer, MonolithicSanitizer, generate_page
from repro.fast import run_program

EXAMPLES = pathlib.Path(__file__).parent / "fast_programs"

print("=" * 70)
print("1. Sanitizing markup with the composed transducer")
print("=" * 70)
sanitizer = FastHtmlSanitizer()
html = """<div id='e"'>
  <script>steal(document.cookie)</script>
  <p onload=x>it's <b>fine</b></p>
</div><br/>"""
print("input: ", html.replace("\n", ""))
print("output:", sanitizer.sanitize(html))

print()
print("=" * 70)
print("2. The Section 2 security analysis (pre-image of bad outputs)")
print("=" * 70)
t0 = time.perf_counter()
analysis = sanitizer.analyze()
print(f"composed sanitizer provably script-free: {analysis.safe} "
      f"({(time.perf_counter() - t0) * 1e3:.0f} ms)")

print()
print("The buggy Figure 2 variant (no recursion into the script's sibling):")
report = run_program((EXAMPLES / "sanitizer_buggy.fast").read_text())
print(report.render())

print()
print("=" * 70)
print("3. Composed vs. monolithic on a synthetic page sweep")
print("=" * 70)
mono = MonolithicSanitizer()
for size in (20_000, 60_000):
    page = generate_page(size, seed=size)
    t0 = time.perf_counter()
    fast_out = sanitizer.sanitize(page)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    mono_out = mono.sanitize(page)
    t_mono = time.perf_counter() - t0
    t0 = time.perf_counter()
    two_pass = sanitizer.sanitize_two_pass(page)
    t_two = time.perf_counter() - t0
    agree = fast_out == mono_out == two_pass
    print(
        f"{size // 1000:3d} KB page: composed={t_fast * 1e3:7.0f} ms  "
        f"two-pass={t_two * 1e3:7.0f} ms  monolithic={t_mono * 1e3:6.1f} ms  "
        f"outputs agree={agree}"
    )
print()
print("The composed transducer traverses once (vs. once per pass) and is")
print("analyzable; the monolithic rewriter is fast but unverifiable —")
print("the paper's maintainability argument (200 LoC Fast vs 10k LoC PHP).")
