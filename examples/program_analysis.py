#!/usr/bin/env python
"""Static analysis of functional programs (paper Section 5.4, Figure 8).

Proves — not tests — that composing ``map_caesar`` and ``filter_ev``
twice deletes every list element, by restricting the composed
transduction to non-empty outputs and showing emptiness.  Also runs the
same program through the Fast front-end, like the paper's web demo.

Run:  python examples/program_analysis.py
"""

import pathlib

from repro.apps.program_analysis import analyze_map_filter
from repro.fast import run_program

print("library API:")
result = analyze_map_filter()
print(f"  map;filter;map;filter always yields the empty list: "
      f"{result.comp2_always_empties}")
print(f"  one map;filter pass can yield a non-empty list:     "
      f"{result.comp1_can_produce_nonempty}  (witness: {result.witness_comp1})")
print(f"  whole analysis: {result.seconds * 1e3:.1f} ms "
      f"(paper: 'less than 10 ms')")

print()
print("the same analysis as a Fast program (Figure 8):")
src = (pathlib.Path(__file__).parent / "fast_programs" / "list_analysis.fast").read_text()
report = run_program(src)
print(report.render())
