#!/usr/bin/env python
"""CSS analysis with symbolic tree transducers (paper Section 5.5).

Compiles CSS programs (tag + descendant selectors) into transducers over
styled-document trees and checks, via pre-image emptiness, that no
document can end up with unreadable black-on-black text.  The symbolic
alphabet is what makes this practical: tree-logic encodings must
enumerate the color/value space (the paper's Section 6 argument).

Run:  python examples/css_analysis.py
"""

from repro.apps.css import check_unreadable_text, compile_css, element, parse_css
from repro.smt import Solver

solver = Solver()

SAFE = """
/* a typical, safe stylesheet */
body   { background-color: white; }
div p  { color: black; background-color: yellow; }
p      { color: blue; }
"""

UNSAFE = """
/* two rules that are individually harmless... */
div p  { color: black; }
p      { background-color: black; }
"""

for name, src in (("SAFE", SAFE), ("UNSAFE", UNSAFE)):
    program = parse_css(src)
    print("=" * 70)
    print(f"{name} stylesheet:")
    print(str(program))
    trans = compile_css(program, solver)
    print(f"compiled transducer size (states, rules): {trans.size()}")

    doc = element("body", [element("div", [element("p")]), element("p")])
    styled = trans.apply_one(doc)
    print(f"styling <body><div><p/></div><p/></body>:\n  {styled}")

    result = check_unreadable_text(program, solver)
    if result.safe:
        print("analysis: no document can show black-on-black text\n")
    else:
        print(f"analysis: UNSAFE — witness document: {result.bad_input}")
        print(f"  (a p inside a div gets color=black from rule 1 and")
        print(f"   background-color=black from rule 2)\n")

# Inheritance-aware analysis: backgrounds visually paint whole subtrees.
from repro.apps.css.inheritance import check_unreadable_text_inherited

INHERITED = """
div    { background-color: black; }
div p  { color: black; }
"""
program = parse_css(INHERITED)
print("=" * 70)
print("INHERITED-BACKGROUND stylesheet:")
print(str(program))
flat = check_unreadable_text(program, solver)
deep = check_unreadable_text_inherited(program, solver)
print(f"flat analysis (per-node properties only): safe={flat.safe}  <- misses it")
print(f"inheritance-aware analysis:               safe={deep.safe}")
print(f"  witness: {deep.bad_input}")
print("  (the div paints its subtree black; the p's text is also black)")
