#!/usr/bin/env python
"""Quickstart: symbolic tree automata and transducers in five minutes.

Builds the paper's running structures by hand — a tree type over an
infinite (integer) alphabet, languages with symbolic guards, a
transducer, and the analyses: composition, pre-image, emptiness with
witnesses, and language equivalence.

Run:  python examples/quickstart.py
"""

from repro.automata import Language, rule
from repro.smt import (
    INT,
    Solver,
    mk_add,
    mk_eq,
    mk_gt,
    mk_int,
    mk_mod,
    mk_var,
)
from repro.transducers import OutApply, OutNode, STTR, Transducer, trule
from repro.trees import make_tree_type, node

# 1. A tree type: binary trees with an integer label on every node.
#    (Fast syntax:  type BT[x : Int]{L(0), N(2)} )
BT = make_tree_type("BT", [("x", INT)], {"L": 0, "N": 2})
x = mk_var("x", INT)

# 2. Languages = symbolic tree automata.  Guards are formulas over the
#    node label, so the alphabet is genuinely infinite.
rules = [
    rule("pos", "L", mk_gt(x, mk_int(0))),
    rule("pos", "N", None, [["pos"], ["pos"]]),
    rule("odd", "L", mk_eq(mk_mod(x, 2), mk_int(1))),
    rule("odd", "N", None, [["odd"], ["odd"]]),
]
pos = Language.build(BT, "pos", rules)  # every leaf positive
odd = Language.build(BT, "odd", rules)  # every leaf odd

t = node("N", 7, node("L", 1), node("L", 3))
print("membership:", pos.accepts(t), odd.accepts(t))

# 3. Boolean algebra with witnesses.
both = pos.intersect(odd)
print("a positive+odd tree:", both.witness())
gap = pos.difference(odd).witness()
print("positive but not odd:", gap)
print("de morgan holds:",
      pos.intersect(odd).complement().equals(pos.complement().union(odd.complement())))

# 4. A transducer: increment every leaf (Fast: trans inc : BT -> BT ...).
inc = Transducer(
    STTR(
        "inc",
        BT,
        BT,
        "q",
        (
            trule("q", "L", OutNode("L", (mk_add(x, mk_int(1)),), ()), rank=0),
            trule(
                "q",
                "N",
                OutNode("N", (x,), (OutApply("q", 0), OutApply("q", 1))),
                rank=2,
            ),
        ),
    ),
    Solver(),
)
print("inc:", inc.apply_one(t))

# 5. Composition (the paper's Section 4 algorithm) and analysis.
inc2 = inc.compose(inc)
print("inc;inc:", inc2.apply_one(t))

# Which inputs can inc;inc map into the odd-leaf language?  Leaves that
# are odd after +2, i.e. odd leaves.
pre = inc2.pre_image(odd)
print("pre-image sample:", pre.witness())
print("pre-image == odd:", pre.equals(odd))

# Type checking: positive-leaved trees stay positive under inc;inc.
print("type-checks:", inc2.type_check(pos, pos) is None)

# Restriction: inc defined only on odd-leaved inputs.
inc_odd = inc.restrict(odd)
print("restricted on L[2]:", inc_odd.apply_one(node("L", 2)))
print("restricted on L[3]:", inc_odd.apply_one(node("L", 3)))
