"""Cross-process telemetry: ship worker observability over the job boundary.

PR 5 moved the expensive analyses into supervised subprocess workers —
and severed them from the observability stack: a forked worker drops
the inherited journal (rightly — appending to the parent's now-private
ring would be silent nonsense), so every ``--trace-json`` capture of
``fast batch``/``fast serve`` showed opaque ``svc.job`` boxes with no
solver or automata spans inside, and ``--profile-json`` counted zero
solver work however hard the workers were grinding.

This module restores end-to-end visibility without giving up process
isolation, in three pieces:

**Worker side** (:func:`execute_with_telemetry`).  Around each job the
worker installs a *fresh* bounded journal ring, zeroes the (fork- or
job-copied) metric registry, and clears the tracer; after the job it
packages everything observed into a size-capped, JSON-able *telemetry
blob* attached to the :class:`~repro.svc.job.JobResult`:

* the journal events, timestamped on the worker's own
  ``perf_counter`` timeline (drop-oldest at ``max_events``; the drop
  count travels with the blob — no silent truncation);
* the metric deltas (registry was zeroed at job start, so the
  post-job snapshot *is* the per-job delta; histograms ship their
  reservoir so quantiles survive the merge);
* the top-level span tree, node-capped at ``max_spans``.

**Clock alignment** (:func:`clock_offset_from_pong`).  ``perf_counter``
timelines are per-process, so at worker spawn the supervisor plays one
NTP-style ping/pong: it stamps ``t0``, pings, the worker pongs back its
own ``perf_counter``, the supervisor stamps ``t1`` and estimates
``offset = (t0 + t1) / 2 - t_worker``.  Adding ``offset`` to a worker
timestamp lands it on the supervisor's timeline, accurate to half the
pipe round-trip (microseconds on a fork pool).

**Supervisor side** (:func:`consume_blob`).  When a valid result
arrives, its blob is folded into the host observability state:

* journal events are re-timestamped and appended to the host journal
  under a per-worker-pid track (plus an ``M`` registration event that
  :func:`repro.obs.export.chrome_trace` turns into Perfetto
  process/thread metadata) — the trace finally shows *what the worker
  did inside* each ``svc.job``;
* counter deltas are folded into the host registry, so
  ``--profile-json`` and the ``repro.obs.diff`` CI gate count worker
  solver work;
* the span tree is grafted under the supervisor's ``svc.job`` span.

Crash safety is structural: a killed/hung worker never sends a result,
so there is no blob and therefore nothing to merge — the host journal
only ever receives complete, per-track-balanced fragments.  A blob that
fails to merge (corrupted in flight) is dropped whole and counted in
``svc.telemetry.merge_errors``; it cannot poison the host state.

Everything is off by default: telemetry engages only when
:mod:`repro.obs` recording is enabled in the supervisor (``REPRO_OBS``,
``--profile``, ``--trace-json``, …) or a :class:`TelemetryConfig` is
set explicitly on the :class:`~repro.svc.service.ServiceConfig`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.journal import Event, Journal
from ..obs.live import LiveStats
from ..obs.metrics import Counter, Gauge, Histogram, percentile
from ..obs.report import span_to_dict
from .job import JobResult, JobSpec, execute_job

#: Handshake message markers (tuple heads on the worker pipe).
CLOCK_PING = "__repro_clock_ping__"
CLOCK_PONG = "__repro_clock_pong__"

#: Journal event name of a worker-track registration ("M" phase).
TRACK_EVENT = "svc.worker.track"

_OBS_BLOBS = obs_metrics.counter("svc.telemetry.blobs")
_OBS_EVENTS = obs_metrics.counter("svc.telemetry.events")
_OBS_DROPPED = obs_metrics.counter("svc.telemetry.dropped")
_OBS_MERGE_ERRORS = obs_metrics.counter("svc.telemetry.merge_errors")


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable worker-telemetry knobs (shipped at worker spawn).

    * ``enabled`` — capture at all?  (The pool also skips merge work
      entirely when no config is set.)
    * ``max_events`` — per-job journal ring capacity.  The ring drops
      oldest on overflow; the blob reports how many were dropped and
      the supervisor surfaces the total as ``svc.telemetry.dropped``.
    * ``max_spans`` — span-tree nodes shipped per blob (depth-first
      budget; the blob flags truncation).
    """

    enabled: bool = True
    max_events: int = 8192
    max_spans: int = 512


def default_config() -> Optional[TelemetryConfig]:
    """Telemetry for the current obs state: on iff recording is on."""
    return TelemetryConfig() if obs_config.ENABLED else None


# -- clock handshake ---------------------------------------------------------


def is_ping(message: Any) -> bool:
    return (
        isinstance(message, tuple) and len(message) >= 1
        and message[0] == CLOCK_PING
    )


def is_pong(message: Any) -> bool:
    # Length 3 is the legacy shape; length 4 appends the worker's
    # prewarm duration (ms).  Accept both so mixed-version supervisor/
    # worker pairs mid-upgrade still shake hands.
    return (
        isinstance(message, tuple) and len(message) in (3, 4)
        and message[0] == CLOCK_PONG
    )


def make_pong(
    prewarm_ms: Optional[float] = None,
) -> tuple[str, int, float, Optional[float]]:
    """The worker's handshake reply: pid, clock now, prewarm duration."""
    return (CLOCK_PONG, os.getpid(), time.perf_counter(), prewarm_ms)


def prewarm_ms_from_pong(pong: Any) -> Optional[float]:
    """The worker's self-timed artifact-prewarm duration, if shipped."""
    if not is_pong(pong) or len(pong) < 4:
        return None
    value = pong[3]
    return float(value) if isinstance(value, (int, float)) else None


def clock_offset_from_pong(
    pong: Any, t_sent: float, t_received: float
) -> Optional[float]:
    """Supervisor-side: the worker→supervisor clock offset, or None.

    ``t_sent``/``t_received`` bracket the round trip on the
    supervisor's ``perf_counter``; the worker's timestamp is assumed to
    sit at the midpoint (symmetric pipe latency), so the estimate is
    off by at most half the round trip.
    """
    if not is_pong(pong):
        return None
    t_worker = pong[2]
    if not isinstance(t_worker, (int, float)):
        return None
    return (t_sent + t_received) / 2.0 - t_worker


# -- worker side -------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _spans_to_dicts(
    roots: list[obs_tracer.Span], budget: int
) -> tuple[list[dict[str, Any]], bool]:
    """Span trees as dicts, depth-first, at most ``budget`` nodes."""
    remaining = budget
    truncated = False

    def convert(span: obs_tracer.Span) -> Optional[dict[str, Any]]:
        nonlocal remaining, truncated
        if remaining <= 0:
            truncated = True
            return None
        remaining -= 1
        doc = span_to_dict(span)
        doc["attrs"] = _jsonable(doc["attrs"])
        children = []
        for child in span.children:
            c = convert(child)
            if c is None:
                break
            children.append(c)
        doc["children"] = children
        return doc

    out = []
    for root in roots:
        doc = convert(root)
        if doc is None:
            break
        out.append(doc)
    return out, truncated


def _metric_deltas(
    registry: obs_metrics.Registry,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Split the (job-zeroed) registry into scalar and histogram deltas."""
    counters: dict[str, Any] = {}
    hists: dict[str, Any] = {}
    for name, metric in registry._metrics.items():
        if isinstance(metric, Histogram):
            if metric.count:
                hists[name] = metric.state()
        elif isinstance(metric, (Counter, Gauge)):
            if metric.value:
                counters[name] = metric.value
    return counters, hists


def execute_with_telemetry(
    spec: JobSpec, attempt: int, config: Optional[TelemetryConfig]
) -> JobResult:
    """Worker-side: run one job, capturing a telemetry blob if enabled.

    The job runs under a fresh bounded journal and a zeroed metric
    registry, inside a worker-side ``svc.job`` span — so the blob's
    events and deltas are exactly this job's, never a residue of the
    fork parent or a previous job on this worker.  The previous journal
    and obs flag are restored however the job exits.
    """
    if config is None or not config.enabled:
        with obs_tracer.trace_context(spec.trace_id):
            return execute_job(spec)

    previous_journal = obs_journal.ACTIVE
    was_enabled = obs_config.ENABLED
    job_journal = Journal(capacity=config.max_events)
    obs_metrics.REGISTRY.reset()
    obs_tracer.reset_trace()
    obs_journal.ACTIVE = job_journal
    obs_config.enabled(True)
    t_start = time.perf_counter()
    try:
        # Re-establish the request's trace context inside the worker:
        # the id rode in on the spec, and binding it here stamps the
        # worker-side svc.job span (and everything under it) with the
        # same trace_id the front-end stamped on its spans.
        with obs_tracer.trace_context(spec.trace_id):
            with obs_tracer.span(
                "svc.job",
                job=spec.job_id,
                kind=spec.kind,
                attempt=attempt,
                pid=os.getpid(),
            ):
                result = execute_job(spec)
    finally:
        t_end = time.perf_counter()
        obs_journal.ACTIVE = previous_journal
        obs_config.enabled(was_enabled)

    counters, hists = _metric_deltas(obs_metrics.REGISTRY)
    spans, spans_truncated = _spans_to_dicts(
        obs_tracer.trace(), config.max_spans
    )
    obs_tracer.reset_trace()
    from .lifecycle import current_rss_bytes

    result.telemetry = {
        "pid": os.getpid(),
        "attempt": attempt,
        "t_start": t_start,
        "t_end": t_end,
        # Worker self-report: the lifecycle layer's RSS recycle
        # threshold keys off the same sample (see result.hygiene).
        "rss_bytes": current_rss_bytes(),
        "events": [
            [ts, ph, name, _jsonable(data)]
            for ts, _tid, ph, name, data in job_journal.events()
        ],
        "events_emitted": job_journal.emitted,
        "dropped": job_journal.dropped,
        "counters": counters,
        "hists": hists,
        "spans": spans,
        "spans_truncated": spans_truncated,
    }
    return result


# -- supervisor side ---------------------------------------------------------


def consume_blob(
    result: JobResult, clock_offset: Optional[float]
) -> Optional[dict[str, Any]]:
    """Detach and merge a result's telemetry blob into host obs state.

    Journal events are aligned to the supervisor timeline (falling back
    to right-edge alignment when the handshake never completed) and
    appended to the active host journal under the worker's pid-track;
    counter deltas and histogram states fold into the host registry.
    Returns the blob (for span grafting at finalize) or None.

    Merge is all-or-nothing per blob: any malformed structure aborts
    the whole merge — counted in ``svc.telemetry.merge_errors`` — so a
    corrupted blob can never leave partial garbage in the host journal.
    """
    blob = result.telemetry
    result.telemetry = None
    if not isinstance(blob, dict):
        return None
    try:
        events = _aligned_events(blob, clock_offset)
        counters = blob.get("counters", {})
        hists = blob.get("hists", {})
        if not (isinstance(counters, dict) and isinstance(hists, dict)):
            raise ValueError("malformed telemetry blob")
        host_journal = obs_journal.ACTIVE
        if host_journal is not None and events:
            host_journal.extend(events)
        for name, delta in counters.items():
            if isinstance(delta, bool) or not isinstance(delta, (int, float)):
                continue
            if delta > 0:
                try:
                    obs_metrics.REGISTRY.counter(str(name)).inc(int(delta))
                except TypeError:  # host registered the name as another type
                    pass
        for name, state in hists.items():
            if isinstance(state, dict):
                try:
                    obs_metrics.REGISTRY.histogram(str(name)).merge(state)
                except TypeError:
                    pass
    except Exception:
        if obs_config.ENABLED:
            _OBS_MERGE_ERRORS.inc()
        return None
    if obs_config.ENABLED:
        _OBS_BLOBS.inc()
        _OBS_EVENTS.inc(len(events))
        dropped = blob.get("dropped", 0)
        if isinstance(dropped, int) and dropped > 0:
            _OBS_DROPPED.inc(dropped)
    return blob


def _aligned_events(
    blob: dict[str, Any], clock_offset: Optional[float]
) -> list[Event]:
    """The blob's events on the supervisor timeline, worker-pid track."""
    raw = blob.get("events", [])
    pid = int(blob["pid"])
    if not isinstance(raw, list):
        raise ValueError("telemetry events must be a list")
    if clock_offset is None:
        # Handshake never completed: pin the blob's right edge to "now"
        # (it was received moments after t_end) so it still lands on
        # the host timeline in roughly the right place.
        clock_offset = time.perf_counter() - float(blob["t_end"])
    out: list[Event] = []
    if raw or blob.get("spans"):
        out.append((
            float(blob["t_start"]) + clock_offset,
            pid,
            "M",
            TRACK_EVENT,
            {"pid": pid, "name": f"svc-worker {pid}"},
        ))
    for ev in raw:
        ts, ph, name, data = ev
        out.append((float(ts) + clock_offset, pid, str(ph), str(name), data))
    return out


def graft_spans(parent: Any, blob: Optional[dict[str, Any]]) -> None:
    """Attach a blob's worker span tree under a live supervisor span.

    Rebuilds :class:`~repro.obs.tracer.Span` objects from the shipped
    dicts and appends them as children of ``parent`` (the supervisor's
    ``svc.job`` span), so ``--profile-json`` trace trees and
    ``repro.obs.diff`` span aggregation see worker-side work.  No-op on
    the null span (obs disabled) or a missing blob.
    """
    if blob is None or not isinstance(parent, obs_tracer.Span):
        return
    spans = blob.get("spans")
    if not isinstance(spans, list):
        return
    try:
        for doc in spans:
            span = _span_from_dict(doc)
            if span is not None:
                parent.children.append(span)
    except Exception:
        if obs_config.ENABLED:
            _OBS_MERGE_ERRORS.inc()


def _span_from_dict(doc: Any) -> Optional[obs_tracer.Span]:
    if not isinstance(doc, dict) or "name" not in doc:
        return None
    attrs = doc.get("attrs")
    span = obs_tracer.Span(
        str(doc["name"]), dict(attrs) if isinstance(attrs, dict) else {}
    )
    duration_ms = doc.get("duration_ms")
    if isinstance(duration_ms, (int, float)):
        span.duration = duration_ms / 1e3
    else:
        span.duration = 0.0
    for child_doc in doc.get("children", ()):
        child = _span_from_dict(child_doc)
        if child is not None:
            span.children.append(child)
    return span


# -- serving statistics ------------------------------------------------------


def format_quantiles(hist: Histogram, scale: float = 1e3) -> str:
    """``p50=…ms p95=…ms p99=…ms`` for a latency histogram (seconds)."""
    return (
        f"p50={hist.quantile(0.5) * scale:.1f}ms "
        f"p95={hist.quantile(0.95) * scale:.1f}ms "
        f"p99={hist.quantile(0.99) * scale:.1f}ms"
    )


class ServeStats:
    """Rolling per-kind latency/throughput stats for ``fast serve``.

    Independent of the global obs switch: stand-alone (unregistered,
    un-journaled) histograms accumulate per-kind worker execution times
    for the whole-run ``summary()`` table, and a
    :class:`~repro.obs.live.LiveStats` window aggregator backs the
    rolling ``line()`` updates — including one row per active tenant
    over the short window, so a multi-tenant overload is visible *as*
    it happens, not in the post-run table.

    ``line()`` returns a complete, newline-joined block: the front-end
    writes it with **one** ``write()`` call so stats output can never
    interleave with journal spill writes or other stderr traffic.
    """

    #: LiveStats window label the rolling line reports from.
    LINE_WINDOW = "1m"

    def __init__(self, clock=time.monotonic, live: Optional[LiveStats] = None) -> None:
        self.clock = clock
        self.started = clock()
        self.window_started = self.started
        self.window_jobs = 0
        self.total_jobs = 0
        self.hists: dict[str, Histogram] = {}
        self.retries: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self.shed_total = 0
        self.live = live if live is not None else LiveStats(clock=clock)

    def record_shed(self, reason: str, tenant: str = "default") -> None:
        """One request shed by the admission gate (never dispatched)."""
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.shed_total += 1
        self.live.record_shed(reason, tenant)

    def record(self, result: JobResult, tenant: str = "default") -> None:
        self.total_jobs += 1
        self.window_jobs += 1
        self.retries[result.kind] = (
            self.retries.get(result.kind, 0) + max(0, result.attempts - 1)
        )
        self.live.record_served(
            result.kind, tenant, result.duration, outcome=result.outcome
        )
        if result.worker_pid is not None:
            self.hists.setdefault(result.kind, Histogram()).observe(
                result.duration
            )

    def due(self, interval: float) -> bool:
        return interval > 0 and self.clock() - self.window_started >= interval

    def _tenant_rows(self) -> list[str]:
        """One row per active tenant over the short live window."""
        rows = []
        label = self.LINE_WINDOW
        if label not in {lbl for lbl, _ in self.live.windows}:
            label = self.live.windows[0][0]
        for tenant in self.live.tenants():
            win = self.live.window(label, f"tenant:{tenant}")
            if win is None:
                continue
            totals = win.totals()
            served = totals.get("served", 0)
            shed = totals.get("shed", 0)
            if not served and not shed:
                continue  # idle this window: no row
            parts = [
                f"tenant={tenant}",
                f"window={label}",
                f"served={served}",
                f"shed={shed}",
            ]
            errors = totals.get("error", 0)
            if errors:
                parts.append(f"errors={errors}")
            if win.sample_count():
                q = win.quantiles()
                parts.append(
                    f"p50={q['p50'] * 1e3:.1f}ms p95={q['p95'] * 1e3:.1f}ms "
                    f"p99={q['p99'] * 1e3:.1f}ms"
                )
            rows.append("[svc]   " + " ".join(parts))
        return rows

    def line(self, breakers=None) -> str:
        """One rolling stats block; resets the throughput window.

        The first line is the overall rate/kind summary; one indented
        row per active tenant follows (the per-tenant live window).
        The caller must emit the whole block with a single write.
        """
        elapsed = max(self.clock() - self.window_started, 1e-9)
        parts = [f"{self.window_jobs / elapsed:.1f} jobs/s"]
        if self.shed_total:
            parts.append(f"shed={self.shed_total}")
        for kind in sorted(self.hists):
            h = self.hists[kind]
            parts.append(f"{kind} n={h.count} {format_quantiles(h)}")
        states = _breaker_states(breakers)
        if states:
            parts.append(
                "breakers: "
                + " ".join(f"{k}={v}" for k, v in sorted(states.items()))
            )
        self.window_started = self.clock()
        self.window_jobs = 0
        return "\n".join(["[svc] " + " | ".join(parts)] + self._tenant_rows())

    def summary(self, breakers=None) -> str:
        """The ``fast top``-style closing table."""
        lines = ["== svc stats =="]
        header = (
            f"{'kind':<12} {'jobs':>6} {'retries':>8} "
            f"{'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for kind in sorted(set(self.hists) | set(self.retries)):
            h = self.hists.get(kind)
            if h is not None and h.count:
                row = (
                    f"{kind:<12} {h.count:>6} "
                    f"{self.retries.get(kind, 0):>8} "
                    f"{h.quantile(0.5) * 1e3:>7.1f}ms "
                    f"{h.quantile(0.95) * 1e3:>7.1f}ms "
                    f"{h.quantile(0.99) * 1e3:>7.1f}ms "
                    f"{(h.max or 0) * 1e3:>7.1f}ms"
                )
            else:
                row = (
                    f"{kind:<12} {0:>6} {self.retries.get(kind, 0):>8} "
                    f"{'-':>9} {'-':>9} {'-':>9} {'-':>9}"
                )
            lines.append(row)
        elapsed = max(self.clock() - self.started, 1e-9)
        lines.append(
            f"{self.total_jobs} jobs in {elapsed:.1f}s "
            f"({self.total_jobs / elapsed:.1f} jobs/s)"
        )
        if self.shed_total:
            breakdown = " ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.shed.items())
            )
            lines.append(f"shed: {self.shed_total} ({breakdown})")
        states = _breaker_states(breakers)
        if states:
            lines.append(
                "breakers: "
                + " ".join(f"{k}={v}" for k, v in sorted(states.items()))
            )
        return "\n".join(lines)


def _breaker_states(breakers) -> dict[str, str]:
    if breakers is None:
        return {}
    return {kind: b.state for kind, b in breakers.breakers.items()}


def latency_summary(results: list[JobResult]) -> dict[str, dict[str, Any]]:
    """Per-kind latency quantiles + retry counts from a result list.

    Computed straight from :class:`JobResult` durations (worker-side
    execution time), so it works with observability off — this is what
    ``fast batch --json`` embeds.  Jobs that never executed anywhere
    (crashes past the retry cap, open breakers) have no duration and
    are excluded from the quantiles but still counted in ``retries``.
    """
    durations: dict[str, list[float]] = {}
    retries: dict[str, int] = {}
    for r in results:
        retries[r.kind] = retries.get(r.kind, 0) + max(0, r.attempts - 1)
        if r.worker_pid is not None:
            durations.setdefault(r.kind, []).append(r.duration)
    out: dict[str, dict[str, Any]] = {}
    for kind in sorted(set(durations) | set(retries)):
        durs = sorted(durations.get(kind, ()))
        entry: dict[str, Any] = {
            "count": len(durs),
            "retries": retries.get(kind, 0),
        }
        if durs:
            entry.update(
                p50_ms=round(percentile(durs, 0.50) * 1e3, 3),
                p95_ms=round(percentile(durs, 0.95) * 1e3, 3),
                p99_ms=round(percentile(durs, 0.99) * 1e3, 3),
                mean_ms=round(sum(durs) / len(durs) * 1e3, 3),
                max_ms=round(durs[-1] * 1e3, 3),
            )
        out[kind] = entry
    return out
