"""Batch execution of Fast programs with per-file fault isolation.

The engine behind ``fast batch <dir|files...>``: collect ``.fast``
programs, wrap each as a ``run`` job, push the lot through an
:class:`~repro.svc.service.AnalysisService`, and summarize.  One
pathological program — a parser bomb, a divergent fixpoint, a
worker-killing chaos fault — costs exactly one UNKNOWN line in the
report; every other file still gets its real verdict.

Exit-code contract (``BatchReport.exit_code``):

* ``0`` — no file FAILed (UNKNOWNs are degradations, not failures);
* ``1`` — at least one file had a failing assertion (a *real* FAIL);
* ``2`` — no FAILs, but some file was a permanent ERROR (did not
  parse/compile) — distinct so scripts can tell broken inputs from
  broken properties.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..guard import Budget, scope as _budget_scope
from .job import BudgetSpec, ERROR, JobResult, JobSpec, PROVED, REFUTED, UNKNOWN
from .service import AnalysisService, ServiceConfig
from .telemetry import latency_summary

#: Wall-clock cap on compiling any single shared source during prewarm:
#: the supervisor must never be taken down (or stalled) by a
#: pathological program — that is what worker isolation is for.
PREWARM_DEADLINE = 10.0

#: JSON schema tag of ``fast batch --json`` output.  v2 added the
#: per-kind ``latency`` quantile block, ``summary.retries``, and
#: ``breakers``.
SCHEMA = "repro.svc.batch/v2"


def collect_program_paths(paths: list[str]) -> list[str]:
    """Expand directories into their (sorted) ``*.fast`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(
                n for n in os.listdir(path) if n.endswith(".fast")
            )
            out.extend(os.path.join(path, n) for n in names)
        else:
            out.append(path)
    return out


def build_specs(
    paths: list[str], budget: Optional[BudgetSpec] = None
) -> list[JobSpec]:
    """One ``run`` job per program file; unreadable files still get a
    spec (with empty source) so they appear in the report as ERRORs
    rather than vanishing."""
    specs: list[JobSpec] = []
    for path in paths:
        try:
            with open(path) as f:
                source = f.read()
        except OSError as exc:
            source = f'@@unreadable: {exc}'
        specs.append(
            JobSpec(job_id=path, kind="run", source=source, budget=budget)
        )
    return specs


@dataclass
class BatchReport:
    """Results plus the summary the CLI renders.

    ``breakers`` is the post-batch circuit-breaker state per job kind
    (only kinds whose breaker was ever consulted appear); filled in by
    :func:`run_batch`.
    """

    results: list[JobResult] = field(default_factory=list)
    breakers: dict[str, str] = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        c = {"PROVED": 0, "REFUTED": 0, "UNKNOWN": 0, "ERROR": 0}
        for r in self.results:
            c[r.outcome] = c.get(r.outcome, 0) + 1
        return c

    @property
    def exit_code(self) -> int:
        counts = self.counts()
        if counts.get(REFUTED):
            return 1
        if counts.get(ERROR):
            return 2
        return 0

    def render(self) -> str:
        status_of = {
            PROVED: "PASS",
            REFUTED: "FAIL",
            UNKNOWN: "UNKNOWN",
            ERROR: "ERROR",
        }
        lines = []
        for r in self.results:
            line = f"[{status_of.get(r.outcome, r.outcome):7s}] {r.job_id}"
            if r.reason:
                line += f" — {r.reason}"
            if r.attempts > 1:
                line += f" (attempts: {r.attempts})"
            lines.append(line)
        counts = self.counts()
        retried = sum(1 for r in self.results if r.attempts > 1)
        summary = (
            f"{counts['PROVED']} pass, {counts['REFUTED']} fail, "
            f"{counts['UNKNOWN']} unknown, {counts['ERROR']} error "
            f"({len(self.results)} programs"
        )
        summary += f", {retried} retried)" if retried else ")"
        lines.append(summary)
        return "\n".join(lines)

    def latency(self) -> dict[str, dict[str, Any]]:
        """Per-kind latency quantiles + retry counts (worker durations)."""
        return latency_summary(self.results)

    def render_stats(self) -> str:
        """The ``fast top``-style per-kind latency/retry table."""
        lines = ["== batch stats =="]
        header = (
            f"{'kind':<12} {'jobs':>6} {'retries':>8} "
            f"{'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for kind, entry in self.latency().items():
            if entry.get("count"):
                lines.append(
                    f"{kind:<12} {entry['count']:>6} {entry['retries']:>8} "
                    f"{entry['p50_ms']:>7.1f}ms {entry['p95_ms']:>7.1f}ms "
                    f"{entry['p99_ms']:>7.1f}ms {entry['max_ms']:>7.1f}ms"
                )
            else:
                lines.append(
                    f"{kind:<12} {0:>6} {entry['retries']:>8} "
                    f"{'-':>9} {'-':>9} {'-':>9} {'-':>9}"
                )
        if self.breakers:
            lines.append(
                "breakers: "
                + " ".join(
                    f"{k}={v}" for k, v in sorted(self.breakers.items())
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "summary": {
                **{k.lower(): v for k, v in self.counts().items()},
                "programs": len(self.results),
                "retried": sum(1 for r in self.results if r.attempts > 1),
                "retries": sum(max(0, r.attempts - 1) for r in self.results),
                "exit_code": self.exit_code,
            },
            "latency": self.latency(),
            "breakers": dict(self.breakers),
            "results": [r.to_dict() for r in self.results],
        }


def prewarm_shared_sources(
    specs: list[JobSpec], deadline: float = PREWARM_DEADLINE
) -> int:
    """Dedupe job sources and pre-warm the artifact cache for shared ones.

    K files carrying the same program (one sanitizer checked against K
    page corpora, say) should compile once, not K times — so every
    source appearing in *more than one* spec is compiled here, in the
    supervisor, before dispatch.  Workers then hit the cache: forked
    pools inherit the warm memory layer directly, spawned (or
    pre-existing) pools pick the artifact up from disk.

    Unique sources are left to the workers — compiling them here would
    serialize work the pool would otherwise do in parallel.  Each
    prewarm compile runs under its own deadline budget and failures are
    swallowed: the owning worker will produce the real, properly
    classified error.  Returns the number of sources warmed.
    """
    from ..exec import config as exec_config
    from ..exec.cache import cached_artifact

    if not exec_config.cache_enabled():
        return 0
    multiplicity: dict[str, int] = {}
    for spec in specs:
        multiplicity[spec.source] = multiplicity.get(spec.source, 0) + 1
    warmed = 0
    for source, count in multiplicity.items():
        if count < 2:
            continue
        try:
            with _budget_scope(Budget(deadline=deadline)):
                cached_artifact(source)
            warmed += 1
        except Exception:
            continue
    return warmed


def run_batch(
    paths: list[str],
    *,
    config: Optional[ServiceConfig] = None,
    budget: Optional[BudgetSpec] = None,
    service: Optional[AnalysisService] = None,
) -> BatchReport:
    """Run every program under ``paths`` through the service."""
    specs = build_specs(collect_program_paths(paths), budget)
    prewarm = config.prewarm if config is not None else True
    if prewarm:
        prewarm_shared_sources(specs)
    if service is not None:
        results = service.run_jobs(specs)
        return BatchReport(results, _breaker_states(service))
    with AnalysisService(config) as svc:
        results = svc.run_jobs(specs)
        return BatchReport(results, _breaker_states(svc))


def _breaker_states(service: AnalysisService) -> dict[str, str]:
    return {kind: b.state for kind, b in service.breakers.breakers.items()}
