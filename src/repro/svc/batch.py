"""Batch execution of Fast programs with per-file fault isolation.

The engine behind ``fast batch <dir|files...>``: collect ``.fast``
programs, wrap each as a ``run`` job, push the lot through an
:class:`~repro.svc.service.AnalysisService`, and summarize.  One
pathological program — a parser bomb, a divergent fixpoint, a
worker-killing chaos fault — costs exactly one UNKNOWN line in the
report; every other file still gets its real verdict.

Exit-code contract (``BatchReport.exit_code``):

* ``0`` — no file FAILed (UNKNOWNs are degradations, not failures);
* ``1`` — at least one file had a failing assertion (a *real* FAIL);
* ``2`` — no FAILs, but some file was a permanent ERROR (did not
  parse/compile) — distinct so scripts can tell broken inputs from
  broken properties.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from .job import BudgetSpec, ERROR, JobResult, JobSpec, PROVED, REFUTED, UNKNOWN
from .service import AnalysisService, ServiceConfig

#: JSON schema tag of ``fast batch --json`` output.
SCHEMA = "repro.svc.batch/v1"


def collect_program_paths(paths: list[str]) -> list[str]:
    """Expand directories into their (sorted) ``*.fast`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(
                n for n in os.listdir(path) if n.endswith(".fast")
            )
            out.extend(os.path.join(path, n) for n in names)
        else:
            out.append(path)
    return out


def build_specs(
    paths: list[str], budget: Optional[BudgetSpec] = None
) -> list[JobSpec]:
    """One ``run`` job per program file; unreadable files still get a
    spec (with empty source) so they appear in the report as ERRORs
    rather than vanishing."""
    specs: list[JobSpec] = []
    for path in paths:
        try:
            with open(path) as f:
                source = f.read()
        except OSError as exc:
            source = f'@@unreadable: {exc}'
        specs.append(
            JobSpec(job_id=path, kind="run", source=source, budget=budget)
        )
    return specs


@dataclass
class BatchReport:
    """Results plus the summary the CLI renders."""

    results: list[JobResult] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        c = {"PROVED": 0, "REFUTED": 0, "UNKNOWN": 0, "ERROR": 0}
        for r in self.results:
            c[r.outcome] = c.get(r.outcome, 0) + 1
        return c

    @property
    def exit_code(self) -> int:
        counts = self.counts()
        if counts.get(REFUTED):
            return 1
        if counts.get(ERROR):
            return 2
        return 0

    def render(self) -> str:
        status_of = {
            PROVED: "PASS",
            REFUTED: "FAIL",
            UNKNOWN: "UNKNOWN",
            ERROR: "ERROR",
        }
        lines = []
        for r in self.results:
            line = f"[{status_of.get(r.outcome, r.outcome):7s}] {r.job_id}"
            if r.reason:
                line += f" — {r.reason}"
            if r.attempts > 1:
                line += f" (attempts: {r.attempts})"
            lines.append(line)
        counts = self.counts()
        retried = sum(1 for r in self.results if r.attempts > 1)
        summary = (
            f"{counts['PROVED']} pass, {counts['REFUTED']} fail, "
            f"{counts['UNKNOWN']} unknown, {counts['ERROR']} error "
            f"({len(self.results)} programs"
        )
        summary += f", {retried} retried)" if retried else ")"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "summary": {
                **{k.lower(): v for k, v in self.counts().items()},
                "programs": len(self.results),
                "retried": sum(1 for r in self.results if r.attempts > 1),
                "exit_code": self.exit_code,
            },
            "results": [r.to_dict() for r in self.results],
        }


def run_batch(
    paths: list[str],
    *,
    config: Optional[ServiceConfig] = None,
    budget: Optional[BudgetSpec] = None,
    service: Optional[AnalysisService] = None,
) -> BatchReport:
    """Run every program under ``paths`` through the service."""
    specs = build_specs(collect_program_paths(paths), budget)
    if service is not None:
        return BatchReport(service.run_jobs(specs))
    with AnalysisService(config) as svc:
        return BatchReport(svc.run_jobs(specs))
