"""Retry policy: exponential backoff with full jitter.

Transient failures — a worker crash, a chaos-injected kill, a corrupted
reply — are retried up to a cap.  Delays follow the "full jitter"
scheme (AWS architecture blog): the ``k``-th retry sleeps a uniform
draw from ``[0, min(max_delay, base * 2**k)]``.  Full jitter beats
plain exponential backoff when many jobs fail at once (a dead worker
takes its whole queue with it): synchronized retries would stampede the
respawned worker, jittered ones spread out.

The policy owns a seeded RNG so test runs are reproducible; production
callers can leave the default seed, since jitter quality does not
depend on seed quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .job import JobFailure


@dataclass
class RetryPolicy:
    """How many times to retry and how long to wait between attempts."""

    #: Retries per job *beyond* the first attempt.
    max_retries: int = 2
    #: Backoff base: attempt ``k`` (0-based failure count) waits at most
    #: ``base_delay * 2**k`` seconds.
    base_delay: float = 0.05
    #: Hard ceiling on any single delay.
    max_delay: float = 2.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def should_retry(self, failure: JobFailure, attempt: int) -> bool:
        """May attempt ``attempt`` (0-based) be followed by another?

        Only *transient* failures qualify: an in-worker error or a
        supervisor timeout is deterministic — the same job would fail
        the same way — so retrying merely burns pool capacity.
        """
        return failure.transient and attempt < self.max_retries

    def delay(self, attempt: int) -> float:
        """Full-jitter backoff delay after failing attempt ``attempt``."""
        cap = min(self.max_delay, self.base_delay * (2 ** attempt))
        return self._rng.uniform(0.0, cap)
