"""``fast serve --http``: an HTTP/1.1 binding of the serving protocol.

Pure stdlib (:mod:`http.server`) — the point is a browser-, curl- and
Prometheus-reachable surface over the *same* serving core the JSONL
front-ends use, not a web framework.  :class:`HttpFrontEnd` subclasses
:class:`~repro.svc.serve.FrontEndBase`, so admission control, tenant
quotas, deadline propagation, trace-id handling, live windows, and
graceful drain are shared code, not a re-implementation:

* ``POST /v1/analyze`` — the body is one JSONL request object (same
  schema as ``fast serve --listen``: ``kind``, ``source``/``file``,
  ``args``, ``budget``, ``tenant``, ``trace_id``).  The handler thread
  runs parse + gate inline and then *waits* for the dispatcher to
  deliver the job's reply — HTTP's one-response-per-request model makes
  the handler thread the natural reply callback.  Shedding maps onto
  status codes a load balancer already understands:

  ====================  ======  =========================
  outcome               status  extra
  ====================  ======  =========================
  served (any verdict)  200
  malformed request     400
  shed ``quota``        429     ``Retry-After`` seconds
  shed (other reasons)  503     ``Retry-After`` seconds
  reply never arrived   504
  ====================  ======  =========================

  Every response body carries the request's ``trace_id`` (client's or
  server-minted), exactly like the JSONL wire.

* ``GET /metrics`` — Prometheus text exposition
  (:func:`repro.obs.live.render_prometheus`): gate ledger counters,
  rolling-window gauges and latency quantiles, breaker states, worker
  lifecycle gauges (``svc_worker_rss_bytes`` / ``svc_worker_generation``
  per worker, ``svc_recycles_total`` by reason), and the obs registry
  when recording is on.

* ``GET /healthz`` — the ``health`` ledger as JSON (including the
  worker ``lifecycle`` snapshot); status 200 while ready, 503 once
  draining (so orchestrator readiness probes fail over before the
  drain deadline).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Callable, Optional

from .gate import GateConfig, SHED_QUOTA
from .serve import FrontEndBase, RequestLimits
from .service import ServiceConfig

#: Slack added on top of ``max_source_bytes`` for the JSON envelope
#: around the source (ids, args, budget, tenant, trace_id).
_ENVELOPE_SLACK = 64 * 1024


def _shed_status(reason: str) -> int:
    """Shed reason -> HTTP status: quota is the client's pace (429);
    queue-full / deadline / draining are the server's state (503)."""
    return 429 if reason == SHED_QUOTA else 503


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Set by :class:`HttpFrontEnd` when building the handler class.
    front: "HttpFrontEnd"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # that would interleave with --stats output and journal spills.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away mid-response; nothing to salvage

    def _send_json(
        self,
        status: int,
        doc: dict[str, Any],
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            (json.dumps(doc) + "\n").encode("utf-8"),
            extra_headers=extra_headers,
        )

    # -- GET: operator endpoints -------------------------------------------

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            health = self.front.health_doc()
            self._send_json(200 if health["ready"] else 503, health)
        elif path == "/metrics":
            self._send(
                200,
                self.front.metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json(404, {"error": f"no such path {path!r}"})

    # -- POST: the job protocol --------------------------------------------

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        if path != "/v1/analyze":
            self._send_json(404, {"error": f"no such path {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        cap = self.front.limits.max_source_bytes + _ENVELOPE_SLACK
        if length <= 0:
            self._send_json(400, {"error": "empty request body"})
            return
        if length > cap:
            self._send_json(
                413,
                {"error": f"request body is {length} bytes; the limit is {cap}"},
            )
            return
        try:
            body = self.rfile.read(length).decode("utf-8", errors="replace")
        except OSError:
            return  # client vanished mid-upload
        default_id = f"http-{threading.get_ident()}-{id(self)}"

        done = threading.Event()
        box: dict[str, Any] = {}

        def reply(doc: dict[str, Any]) -> None:
            box["doc"] = doc
            done.set()

        self.front.handle_line(body, default_id, reply)
        # Probes, errors, and sheds reply synchronously from
        # handle_line; only an admitted job waits on the dispatcher.
        # Bound the wait by the worst case the gate allows: full
        # deadline in queue + the drain window, plus margin.
        gate_cfg = self.front.gate.config
        timeout = gate_cfg.max_deadline + gate_cfg.drain_timeout + 10.0
        if not done.wait(timeout):
            self._send_json(
                504, {"error": "no reply from the dispatcher", "id": default_id}
            )
            return
        doc = box["doc"]
        if doc.get("shed"):
            retry_after = max(1, math.ceil(float(doc.get("retry_after", 1.0))))
            self._send_json(
                _shed_status(str(doc.get("reason", ""))),
                doc,
                extra_headers={"Retry-After": str(retry_after)},
            )
        elif "error" in doc:
            self._send_json(400, doc)
        else:
            self._send_json(200, doc)


class HttpFrontEnd(FrontEndBase):
    """``fast serve --http HOST:PORT``: the HTTP/1.1 transport.

    The serving core (gate, dispatcher, tracker, drain) is
    :class:`~repro.svc.serve.FrontEndBase`; this class adds a
    :class:`~http.server.ThreadingHTTPServer` whose handler threads
    play the caller-thread role the socket front-end gives connection
    readers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
        gate_config: Optional[GateConfig] = None,
        limits: Optional[RequestLimits] = None,
        stats_interval: float = 0.0,
        err: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(
            config, gate_config, limits, stats_interval, err, clock
        )
        handler = type("BoundHandler", (_Handler,), {"front": self})
        # Overload must be answered by the admission gate (429/503 with
        # Retry-After), never by the TCP accept backlog resetting
        # connections — socketserver's default backlog of 5 does exactly
        # that under a concurrent burst.
        server_cls = type(
            "BoundServer",
            (ThreadingHTTPServer,),
            {"daemon_threads": True, "request_queue_size": 128},
        )
        self._server = server_cls((host, port), handler)
        self.host, self.port = self._server.server_address[:2]

    def start(self) -> "HttpFrontEnd":
        super().start()
        t = threading.Thread(
            target=self._server.serve_forever,
            name="serve-http",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        t.start()
        self._threads.append(t)
        return self

    def _shutdown_transport(self) -> None:
        # shutdown() blocks until serve_forever exits; in-flight handler
        # threads keep running and will be answered (or drain-shed) by
        # the dispatcher before wait() returns.
        try:
            self._server.shutdown()
            self._server.server_close()
        except OSError:
            pass


def serve_http(
    host: str,
    port: int,
    config: Optional[ServiceConfig] = None,
    *,
    gate_config: Optional[GateConfig] = None,
    limits: Optional[RequestLimits] = None,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    ready: Optional[Callable[["HttpFrontEnd"], None]] = None,
) -> int:
    """Run an :class:`HttpFrontEnd` until drained; returns jobs served.

    ``ready`` is called with the live front-end once it is listening
    (the CLI uses it to print the bound address and install SIGTERM).
    """
    import sys

    front = HttpFrontEnd(
        host,
        port,
        config,
        gate_config,
        limits,
        stats_interval=stats_interval,
        err=err,
    )
    front.start()
    if ready is not None:
        ready(front)
    try:
        while not front.wait(timeout=0.2):
            pass
    finally:
        front.close()
    if stats:
        stream = err if err is not None else sys.stderr
        svc = getattr(front, "_svc", None)
        stream.write(
            front.tracker.summary(svc.breakers if svc else None) + "\n"
        )
        stream.flush()
    return front.served
