"""The subprocess worker: one process, one job at a time, crash-isolated.

A worker is a child process running :func:`_worker_main`: an endless
``recv job -> execute -> send result`` loop over a duplex pipe.  The
supervisor side holds a :class:`Worker` handle bundling the process,
the pipe, and respawn logic.  Everything that can go wrong in a worker
— a segfaulting solver path, an OOM kill, a divergent fixpoint — is
contained: the process dies or hangs, the supervisor notices (sentinel
or kill timeout), and the pool respawns a fresh worker.

Chaos: when a :class:`~repro.guard.chaos.WorkerChaosPolicy` is
configured, each received ``(job, attempt)`` first consults it and may

* SIGKILL itself (``kill`` — the supervisor sees a dead sentinel),
* sleep past the supervisor's kill timeout (``hang``),
* reply with a garbage payload (``corrupt`` — exercising reply
  validation),
* pin a slab of garbage in memory and then answer correctly (``leak``
  — exercising the lifecycle layer's RSS recycle threshold).

Lifecycle: every spawn — initial, crash respawn, proactive recycle —
takes a fresh, never-reused **generation** number, and the handle
tracks ``jobs_served`` / ``spawned_at`` / last self-reported RSS so the
pool can retire workers that cross :class:`~repro.svc.lifecycle.
LifecyclePolicy` thresholds.  The worker side runs hygiene between
jobs: past ``max_terms`` interned terms it consistency-checks the
caches and then flushes them all in one coordinated step
(:func:`repro.smt.flush_all_caches`).

The default start method is ``fork`` where available (Linux): workers
inherit the warmed import state and the hash-consed term table for
free, and spawn in ~1 ms.  ``spawn`` is used elsewhere; it works but
pays an interpreter start per worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from typing import Any, Optional

from ..guard.chaos import WorkerChaosPolicy
from .job import JobSpec
from .lifecycle import LifecyclePolicy, current_rss_bytes, next_generation
from .telemetry import (
    CLOCK_PING,
    TelemetryConfig,
    clock_offset_from_pong,
    execute_with_telemetry,
    is_ping,
    make_pong,
    prewarm_ms_from_pong,
)

#: Payload a chaos-corrupted worker sends instead of a JobResult.
_CORRUPT_PAYLOAD = ("\x00corrupt\x00", "injected by WorkerChaosPolicy")

#: Chaos-leaked slabs; module-level so they stay pinned for the life of
#: the worker process, exactly like a real leak would.
_LEAKED: list[bytearray] = []

_worker_ids = itertools.count(1)


def default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _reset_inherited_state() -> None:
    """Forget governance/observability state copied in by fork.

    A forked worker inherits the parent's active budget stack, journal,
    metric registry values, and tracer span state; charging a parent
    budget from a child, appending to the parent's (now private) journal
    buffer, double-counting the parent's counters into a telemetry
    blob, or parenting worker spans under a copied supervisor span
    would all be silent nonsense.
    """
    try:
        from ..guard import budget as guard_budget

        guard_budget._STATE.stack = []
    except Exception:
        pass
    try:
        from ..obs import journal as obs_journal

        obs_journal.ACTIVE = None
    except Exception:
        pass
    try:
        from ..obs import metrics as obs_metrics
        from ..obs import tracer as obs_tracer

        obs_metrics.REGISTRY.reset()
        state = obs_tracer._state()
        state.stack.clear()
        state.roots.clear()
    except Exception:
        pass


def _prewarm_artifact_cache(plan=None) -> Optional[float]:
    """Best-effort: lift recent disk artifacts into the memory cache.

    Runs once at worker start, so the first job for a recently-analyzed
    program skips even the disk read.  A forked worker already shares
    the parent's memory layer; this only adds what landed on disk in
    earlier processes.  With an explicit ``plan`` (a key tuple computed
    supervisor-side, see :meth:`ArtifactCache.prewarm_plan`) the worker
    skips the directory scan and warms in one pass — respawns and
    recycles reuse the first spawn's plan.  Strictly optional — any
    failure (no cache dir, torn files, a broken deserializer) leaves
    the worker fully functional on the cold path.

    Returns the prewarm duration in milliseconds (None on failure),
    which rides the clock pong back as ``svc.worker.prewarm_ms``.
    """
    try:
        from ..exec import config as exec_config
        from ..exec.cache import DEFAULT_CACHE

        t0 = time.perf_counter()
        if exec_config.cache_enabled():
            if plan is not None:
                DEFAULT_CACHE.prewarm_from_keys(plan)
            else:
                DEFAULT_CACHE.prewarm_from_disk()
        return (time.perf_counter() - t0) * 1e3
    except Exception:
        return None


def _hygiene_report(flushes: int) -> dict:
    """The per-job self-report the supervisor's RSS threshold reads."""
    try:
        from ..smt import terms as terms_mod

        intern_terms = terms_mod.intern_table_size()
    except Exception:
        intern_terms = -1
    return {
        "rss_bytes": current_rss_bytes(),
        "intern_terms": intern_terms,
        "flushes": flushes,
    }


def _maybe_flush_between_jobs(lifecycle: Optional[LifecyclePolicy]) -> bool:
    """In-worker memory hygiene: bounded intern table between jobs.

    When the interned-term count crosses ``lifecycle.max_terms``, the
    caches are first verified (sampled
    :func:`repro.guard.check_solver_consistency` — the abort-safety
    machinery, so a flush can never paper over corrupted state) and
    then dropped together via :func:`repro.smt.flush_all_caches`.
    Consistency violations propagate: a worker whose caches fail the
    check dies loudly and is respawned, rather than serving from
    suspect state.
    """
    if lifecycle is None or lifecycle.max_terms is None:
        return False
    from ..smt import terms as terms_mod

    if terms_mod.intern_table_size() <= lifecycle.max_terms:
        return False
    from ..smt import flush_all_caches

    flush_all_caches(check=True)
    return True


def _worker_main(
    conn,
    chaos: Optional[WorkerChaosPolicy],
    telemetry: Optional[TelemetryConfig] = None,
    prewarm=True,
    lifecycle: Optional[LifecyclePolicy] = None,
) -> None:
    """The worker loop; exits on a ``None`` message or a closed pipe.

    ``prewarm`` is False (skip), True (scan the disk cache), or a
    tuple of cache keys (warm exactly those, no scan).
    """
    _reset_inherited_state()
    prewarm_ms: Optional[float] = None
    if prewarm:
        plan = prewarm if isinstance(prewarm, (tuple, list)) else None
        prewarm_ms = _prewarm_artifact_cache(plan)
    flushes = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        if is_ping(message):
            # Clock handshake: reply with our pid and perf_counter so
            # the supervisor can align this worker's telemetry
            # timestamps onto its own timeline (plus the prewarm time,
            # for `svc.worker.prewarm_ms`).
            try:
                conn.send(make_pong(prewarm_ms))
            except (BrokenPipeError, OSError):
                break
            continue
        spec, attempt = message
        fault = chaos.decide(spec.job_id, attempt) if chaos is not None else None
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "hang":
            time.sleep(chaos.hang_seconds)  # the supervisor kills us first
        if fault == "corrupt":
            try:
                conn.send(_CORRUPT_PAYLOAD)
            except (BrokenPipeError, OSError):
                break
            continue
        if fault == "leak":
            # Pin garbage, then answer correctly: the damage is RSS.
            _LEAKED.append(bytearray(chaos.leak_bytes))
        result = execute_with_telemetry(spec, attempt, telemetry)
        result.hygiene = _hygiene_report(flushes)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
        except Exception:
            # The telemetry blob smuggled in something unpicklable;
            # better a blobless reply than a crashed worker.
            result.telemetry = None
            try:
                conn.send(result)
            except Exception:
                break
        # Hygiene runs *after* the reply is on the wire, so the flush
        # cost lands in idle time, never in a job's latency.
        if _maybe_flush_between_jobs(lifecycle):
            flushes += 1
    conn.close()


class Worker:
    """Supervisor-side handle: process + pipe + respawn."""

    #: How long the spawn-time clock handshake waits for the pong.
    HANDSHAKE_TIMEOUT = 5.0

    def __init__(
        self,
        ctx,
        chaos: Optional[WorkerChaosPolicy] = None,
        telemetry: Optional[TelemetryConfig] = None,
        prewarm: bool = True,
        lifecycle: Optional[LifecyclePolicy] = None,
        prewarm_plan: Optional[tuple] = None,
    ) -> None:
        self.ctx = ctx
        self.chaos = chaos
        self.telemetry = telemetry
        self.prewarm = prewarm
        self.lifecycle = lifecycle
        self.worker_id = next(_worker_ids)
        self.spawns = 0
        self.process: Any = None
        self.conn: Any = None
        #: Worker->supervisor ``perf_counter`` offset, from the spawn
        #: handshake; None when telemetry is off or the pong never came.
        self.clock_offset: Optional[float] = None
        #: Never-reused generation number, fresh per (re)spawn.
        self.generation: int = 0
        #: Supervisor-clock timestamp of the last (re)spawn.
        self.spawned_at: float = 0.0
        #: Valid replies finalized since the last (re)spawn.
        self.jobs_served: int = 0
        #: Last RSS the worker self-reported (bytes), None before the
        #: first reply of this generation.
        self.rss_bytes: Optional[int] = None
        #: Worker-timed artifact prewarm for this generation (ms).
        self.prewarm_ms: Optional[float] = None
        #: Cached artifact-key plan: computed once at first spawn (or
        #: inherited from the pool), then reused by every respawn/
        #: recycle so replacement workers warm in one pass without
        #: re-scanning the cache directory.
        self.prewarm_plan: Optional[tuple] = (
            tuple(prewarm_plan) if prewarm_plan is not None else None
        )
        self.spawn()

    def _resolve_prewarm(self):
        """What to ship as ``_worker_main``'s prewarm argument."""
        if not self.prewarm:
            return False
        if self.prewarm_plan is None:
            try:
                from ..exec import config as exec_config
                from ..exec.cache import DEFAULT_CACHE

                if exec_config.cache_enabled():
                    self.prewarm_plan = DEFAULT_CACHE.prewarm_plan()
            except Exception:
                self.prewarm_plan = None
        return self.prewarm_plan if self.prewarm_plan is not None else True

    def spawn(self) -> None:
        """(Re)start the child process with a fresh pipe."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.chaos,
                self.telemetry,
                self._resolve_prewarm(),
                self.lifecycle,
            ),
            daemon=True,
            name=f"repro-svc-worker-{self.worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.spawns += 1
        self.generation = next_generation()
        self.spawned_at = time.monotonic()
        self.jobs_served = 0
        self.rss_bytes = None
        self.prewarm_ms = None
        self.clock_offset = None
        self._handshake()

    def _handshake(self) -> None:
        """Ping the fresh worker; absorb its clock offset + prewarm time.

        Doubles as the *readiness barrier*: the worker only answers the
        ping once its loop is up, i.e. after prewarm completed — which
        is what lets a recycle retire the old worker knowing its
        replacement is genuinely warm.  Best-effort: a worker that dies
        or stalls before ponging just leaves ``clock_offset`` at None
        (telemetry merges fall back to right-edge alignment) — job
        dispatch proceeds regardless, and a late pong is absorbed by
        the pool's reply loop via :meth:`note_pong`.
        """
        try:
            t_sent = time.perf_counter()
            self.conn.send((CLOCK_PING,))
            if self.conn.poll(self.HANDSHAKE_TIMEOUT):
                payload = self.conn.recv()
                t_received = time.perf_counter()
                self.clock_offset = clock_offset_from_pong(
                    payload, t_sent, t_received
                )
                self.prewarm_ms = prewarm_ms_from_pong(payload)
        except (BrokenPipeError, EOFError, OSError):
            pass

    def note_pong(self, payload: Any) -> None:
        """Absorb a pong that arrived late, outside the handshake window."""
        t_now = time.perf_counter()
        # The send time is long gone; treat receipt as the whole trip.
        offset = clock_offset_from_pong(payload, t_now, t_now)
        if offset is not None and self.clock_offset is None:
            self.clock_offset = offset
        if self.prewarm_ms is None:
            self.prewarm_ms = prewarm_ms_from_pong(payload)

    @property
    def age(self) -> float:
        """Seconds since this generation (re)spawned."""
        return time.monotonic() - self.spawned_at

    # -- state -------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode if self.process is not None else None

    # -- protocol ----------------------------------------------------------

    def dispatch(self, spec: JobSpec, attempt: int) -> None:
        """Send one job; raises OSError/BrokenPipeError if the pipe died."""
        self.conn.send((spec, attempt))

    def kill(self) -> None:
        """SIGKILL the child and reap it (used for hung workers)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.process is not None:
            self.process.join()
        if self.conn is not None:
            self.conn.close()

    def stop(self, grace: float = 1.0) -> None:
        """Polite shutdown: send the stop message, then escalate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if self.conn is not None:
            self.conn.close()
