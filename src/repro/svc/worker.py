"""The subprocess worker: one process, one job at a time, crash-isolated.

A worker is a child process running :func:`_worker_main`: an endless
``recv job -> execute -> send result`` loop over a duplex pipe.  The
supervisor side holds a :class:`Worker` handle bundling the process,
the pipe, and respawn logic.  Everything that can go wrong in a worker
— a segfaulting solver path, an OOM kill, a divergent fixpoint — is
contained: the process dies or hangs, the supervisor notices (sentinel
or kill timeout), and the pool respawns a fresh worker.

Chaos: when a :class:`~repro.guard.chaos.WorkerChaosPolicy` is
configured, each received ``(job, attempt)`` first consults it and may

* SIGKILL itself (``kill`` — the supervisor sees a dead sentinel),
* sleep past the supervisor's kill timeout (``hang``),
* reply with a garbage payload (``corrupt`` — exercising reply
  validation).

The default start method is ``fork`` where available (Linux): workers
inherit the warmed import state and the hash-consed term table for
free, and spawn in ~1 ms.  ``spawn`` is used elsewhere; it works but
pays an interpreter start per worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from typing import Any, Optional

from ..guard.chaos import WorkerChaosPolicy
from .job import JobSpec, execute_job

#: Payload a chaos-corrupted worker sends instead of a JobResult.
_CORRUPT_PAYLOAD = ("\x00corrupt\x00", "injected by WorkerChaosPolicy")

_worker_ids = itertools.count(1)


def default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _reset_inherited_state() -> None:
    """Forget governance/observability state copied in by fork.

    A forked worker inherits the parent's active budget stack and
    journal; charging a parent budget from a child or appending to the
    parent's (now private) journal buffer would be silent nonsense.
    """
    try:
        from ..guard import budget as guard_budget

        guard_budget._STATE.stack = []
    except Exception:
        pass
    try:
        from ..obs import journal as obs_journal

        obs_journal.ACTIVE = None
    except Exception:
        pass


def _worker_main(conn, chaos: Optional[WorkerChaosPolicy]) -> None:
    """The worker loop; exits on a ``None`` message or a closed pipe."""
    _reset_inherited_state()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        spec, attempt = message
        fault = chaos.decide(spec.job_id, attempt) if chaos is not None else None
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "hang":
            time.sleep(chaos.hang_seconds)  # the supervisor kills us first
        if fault == "corrupt":
            try:
                conn.send(_CORRUPT_PAYLOAD)
            except (BrokenPipeError, OSError):
                break
            continue
        result = execute_job(spec)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class Worker:
    """Supervisor-side handle: process + pipe + respawn."""

    def __init__(
        self,
        ctx,
        chaos: Optional[WorkerChaosPolicy] = None,
    ) -> None:
        self.ctx = ctx
        self.chaos = chaos
        self.worker_id = next(_worker_ids)
        self.spawns = 0
        self.process: Any = None
        self.conn: Any = None
        self.spawn()

    def spawn(self) -> None:
        """(Re)start the child process with a fresh pipe."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.chaos),
            daemon=True,
            name=f"repro-svc-worker-{self.worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.spawns += 1

    # -- state -------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode if self.process is not None else None

    # -- protocol ----------------------------------------------------------

    def dispatch(self, spec: JobSpec, attempt: int) -> None:
        """Send one job; raises OSError/BrokenPipeError if the pipe died."""
        self.conn.send((spec, attempt))

    def kill(self) -> None:
        """SIGKILL the child and reap it (used for hung workers)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.process is not None:
            self.process.join()
        if self.conn is not None:
            self.conn.close()

    def stop(self, grace: float = 1.0) -> None:
        """Polite shutdown: send the stop message, then escalate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if self.conn is not None:
            self.conn.close()
