"""The subprocess worker: one process, one job at a time, crash-isolated.

A worker is a child process running :func:`_worker_main`: an endless
``recv job -> execute -> send result`` loop over a duplex pipe.  The
supervisor side holds a :class:`Worker` handle bundling the process,
the pipe, and respawn logic.  Everything that can go wrong in a worker
— a segfaulting solver path, an OOM kill, a divergent fixpoint — is
contained: the process dies or hangs, the supervisor notices (sentinel
or kill timeout), and the pool respawns a fresh worker.

Chaos: when a :class:`~repro.guard.chaos.WorkerChaosPolicy` is
configured, each received ``(job, attempt)`` first consults it and may

* SIGKILL itself (``kill`` — the supervisor sees a dead sentinel),
* sleep past the supervisor's kill timeout (``hang``),
* reply with a garbage payload (``corrupt`` — exercising reply
  validation).

The default start method is ``fork`` where available (Linux): workers
inherit the warmed import state and the hash-consed term table for
free, and spawn in ~1 ms.  ``spawn`` is used elsewhere; it works but
pays an interpreter start per worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from typing import Any, Optional

from ..guard.chaos import WorkerChaosPolicy
from .job import JobSpec
from .telemetry import (
    CLOCK_PING,
    TelemetryConfig,
    clock_offset_from_pong,
    execute_with_telemetry,
    is_ping,
    make_pong,
)

#: Payload a chaos-corrupted worker sends instead of a JobResult.
_CORRUPT_PAYLOAD = ("\x00corrupt\x00", "injected by WorkerChaosPolicy")

_worker_ids = itertools.count(1)


def default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _reset_inherited_state() -> None:
    """Forget governance/observability state copied in by fork.

    A forked worker inherits the parent's active budget stack, journal,
    metric registry values, and tracer span state; charging a parent
    budget from a child, appending to the parent's (now private) journal
    buffer, double-counting the parent's counters into a telemetry
    blob, or parenting worker spans under a copied supervisor span
    would all be silent nonsense.
    """
    try:
        from ..guard import budget as guard_budget

        guard_budget._STATE.stack = []
    except Exception:
        pass
    try:
        from ..obs import journal as obs_journal

        obs_journal.ACTIVE = None
    except Exception:
        pass
    try:
        from ..obs import metrics as obs_metrics
        from ..obs import tracer as obs_tracer

        obs_metrics.REGISTRY.reset()
        state = obs_tracer._state()
        state.stack.clear()
        state.roots.clear()
    except Exception:
        pass


def _prewarm_artifact_cache() -> None:
    """Best-effort: lift recent disk artifacts into the memory cache.

    Runs once at worker start, so the first job for a recently-analyzed
    program skips even the disk read.  A forked worker already shares
    the parent's memory layer; this only adds what landed on disk in
    earlier processes.  Strictly optional — any failure (no cache dir,
    torn files, a broken deserializer) leaves the worker fully
    functional on the cold path.
    """
    try:
        from ..exec import config as exec_config
        from ..exec.cache import DEFAULT_CACHE

        if exec_config.cache_enabled():
            DEFAULT_CACHE.prewarm_from_disk()
    except Exception:
        pass


def _worker_main(
    conn,
    chaos: Optional[WorkerChaosPolicy],
    telemetry: Optional[TelemetryConfig] = None,
    prewarm: bool = True,
) -> None:
    """The worker loop; exits on a ``None`` message or a closed pipe."""
    _reset_inherited_state()
    if prewarm:
        _prewarm_artifact_cache()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        if is_ping(message):
            # Clock handshake: reply with our pid and perf_counter so
            # the supervisor can align this worker's telemetry
            # timestamps onto its own timeline.
            try:
                conn.send(make_pong())
            except (BrokenPipeError, OSError):
                break
            continue
        spec, attempt = message
        fault = chaos.decide(spec.job_id, attempt) if chaos is not None else None
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "hang":
            time.sleep(chaos.hang_seconds)  # the supervisor kills us first
        if fault == "corrupt":
            try:
                conn.send(_CORRUPT_PAYLOAD)
            except (BrokenPipeError, OSError):
                break
            continue
        result = execute_with_telemetry(spec, attempt, telemetry)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
        except Exception:
            # The telemetry blob smuggled in something unpicklable;
            # better a blobless reply than a crashed worker.
            result.telemetry = None
            try:
                conn.send(result)
            except Exception:
                break
    conn.close()


class Worker:
    """Supervisor-side handle: process + pipe + respawn."""

    #: How long the spawn-time clock handshake waits for the pong.
    HANDSHAKE_TIMEOUT = 5.0

    def __init__(
        self,
        ctx,
        chaos: Optional[WorkerChaosPolicy] = None,
        telemetry: Optional[TelemetryConfig] = None,
        prewarm: bool = True,
    ) -> None:
        self.ctx = ctx
        self.chaos = chaos
        self.telemetry = telemetry
        self.prewarm = prewarm
        self.worker_id = next(_worker_ids)
        self.spawns = 0
        self.process: Any = None
        self.conn: Any = None
        #: Worker->supervisor ``perf_counter`` offset, from the spawn
        #: handshake; None when telemetry is off or the pong never came.
        self.clock_offset: Optional[float] = None
        self.spawn()

    def spawn(self) -> None:
        """(Re)start the child process with a fresh pipe."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.chaos, self.telemetry, self.prewarm),
            daemon=True,
            name=f"repro-svc-worker-{self.worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.spawns += 1
        self.clock_offset = None
        if self.telemetry is not None and self.telemetry.enabled:
            self._handshake()

    def _handshake(self) -> None:
        """Ping the fresh worker and estimate its clock offset.

        Best-effort: a worker that dies or stalls before ponging just
        leaves ``clock_offset`` at None (telemetry merges fall back to
        right-edge alignment) — job dispatch proceeds regardless, and a
        late pong is absorbed by the pool's reply loop via
        :meth:`note_pong`.
        """
        try:
            t_sent = time.perf_counter()
            self.conn.send((CLOCK_PING,))
            if self.conn.poll(self.HANDSHAKE_TIMEOUT):
                payload = self.conn.recv()
                t_received = time.perf_counter()
                self.clock_offset = clock_offset_from_pong(
                    payload, t_sent, t_received
                )
        except (BrokenPipeError, EOFError, OSError):
            pass

    def note_pong(self, payload: Any) -> None:
        """Absorb a pong that arrived late, outside the handshake window."""
        t_now = time.perf_counter()
        # The send time is long gone; treat receipt as the whole trip.
        offset = clock_offset_from_pong(payload, t_now, t_now)
        if offset is not None and self.clock_offset is None:
            self.clock_offset = offset

    # -- state -------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode if self.process is not None else None

    # -- protocol ----------------------------------------------------------

    def dispatch(self, spec: JobSpec, attempt: int) -> None:
        """Send one job; raises OSError/BrokenPipeError if the pipe died."""
        self.conn.send((spec, attempt))

    def kill(self) -> None:
        """SIGKILL the child and reap it (used for hung workers)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.process is not None:
            self.process.join()
        if self.conn is not None:
            self.conn.close()

    def stop(self, grace: float = 1.0) -> None:
        """Polite shutdown: send the stop message, then escalate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if self.conn is not None:
            self.conn.close()
