"""The analysis service facade: configuration + pool + breakers.

:class:`AnalysisService` is what callers use: configure once, submit
jobs (single, batch, or an endless stream), get
:class:`~repro.svc.job.JobResult`\\ s — or library-level
:class:`~repro.guard.Verdict`\\ s — back.  The service owns the pieces
with *state that must outlive a batch*:

* the :class:`~repro.svc.pool.WorkerPool` (warm workers amortize spawn
  cost across batches and ``fast serve`` requests);
* the :class:`~repro.svc.breaker.BreakerRegistry` (a kind that melted
  down during one batch stays open into the next until its cooldown).

Retry policy and chaos injection are configuration; see
:class:`ServiceConfig`.  The worker chaos policy defaults to whatever
``REPRO_CHAOS`` carries in ``worker_*`` keys, so a chaos soak (CI, the
verdict-stability property test) needs no code changes — just the
environment variable that already drives solver chaos.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..guard import Verdict
from ..guard.chaos import WorkerChaosPolicy, worker_policy_from_spec
from .breaker import BreakerConfig, BreakerRegistry
from .job import JobResult, JobSpec
from .lifecycle import LifecyclePolicy
from .pool import WorkerPool
from .retry import RetryPolicy
from .telemetry import TelemetryConfig, default_config as default_telemetry


def chaos_from_env(var: str = "REPRO_CHAOS") -> Optional[WorkerChaosPolicy]:
    """The worker chaos policy of the environment, or None."""
    spec = os.environ.get(var, "")
    if not spec:
        return None
    return worker_policy_from_spec(spec)


@dataclass
class ServiceConfig:
    """Everything an :class:`AnalysisService` needs to know."""

    #: Worker processes (concurrent jobs).
    jobs: int = 4
    #: Hard wall-clock cap per attempt for jobs without a deadline.
    kill_timeout: float = 300.0
    #: Kill margin above a job's soft ``budget.deadline``.
    kill_grace: float = 5.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Worker-level fault injection; None = read ``REPRO_CHAOS``.
    worker_chaos: Optional[WorkerChaosPolicy] = None
    #: multiprocessing start method; None = fork where available.
    start_method: Optional[str] = None
    #: Cross-process telemetry; None = on iff obs recording is on.
    telemetry: Optional[TelemetryConfig] = None
    #: Artifact-cache pre-warming: workers load recent disk artifacts
    #: at spawn, and ``fast batch`` compiles shared sources up front.
    prewarm: bool = True
    #: Proactive worker recycling thresholds (jobs / RSS / age) plus
    #: the in-worker intern-table ceiling; None = workers live forever
    #: (the pre-lifecycle behaviour).
    lifecycle: Optional[LifecyclePolicy] = None

    def resolved_chaos(self) -> Optional[WorkerChaosPolicy]:
        return self.worker_chaos if self.worker_chaos is not None else chaos_from_env()

    def resolved_telemetry(self) -> Optional[TelemetryConfig]:
        """The effective telemetry config (an explicit one wins)."""
        return self.telemetry if self.telemetry is not None else default_telemetry()


class AnalysisService:
    """A long-lived, fault-isolated front door for Fast analyses.

    Use as a context manager::

        with AnalysisService(ServiceConfig(jobs=8)) as svc:
            results = svc.run_jobs(specs)

    Every result is final: crashed, hung, corrupted, and
    breaker-rejected jobs come back as UNKNOWN with a structured
    :class:`~repro.svc.job.JobFailure`, never as an exception.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = WorkerPool(
            self.config.jobs,
            chaos=self.config.resolved_chaos(),
            start_method=self.config.start_method,
            telemetry=self.config.resolved_telemetry(),
            prewarm=self.config.prewarm,
            lifecycle=self.config.lifecycle,
        )
        self.breakers = BreakerRegistry(config=self.config.breaker)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "AnalysisService":
        self.pool.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self.pool.close()

    def close(self) -> None:
        self.pool.close()

    # -- submission --------------------------------------------------------

    def run_jobs(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Run a batch with per-job isolation; results in input order.

        ``on_result`` (optional) receives each finalized
        :class:`JobResult` as it decides — see
        :meth:`~repro.svc.pool.WorkerPool.run_jobs`.
        """
        return self.pool.run_jobs(
            specs,
            retry=self.config.retry,
            breakers=self.breakers,
            kill_timeout=self.config.kill_timeout,
            kill_grace=self.config.kill_grace,
            on_result=on_result,
        )

    def run_job(self, spec: JobSpec) -> JobResult:
        return self.run_jobs([spec])[0]

    def breaker_states(self) -> dict[str, str]:
        """Per-kind circuit-breaker states (for health reporting)."""
        return {k: b.state for k, b in self.breakers.breakers.items()}

    def lifecycle_snapshot(self) -> dict:
        """Per-worker generation/RSS/age state (for health reporting)."""
        return self.pool.lifecycle_snapshot()

    @staticmethod
    def verdict_of(result: JobResult) -> Verdict:
        """The result as a library :class:`~repro.guard.Verdict`."""
        return result.to_verdict()
