"""``fast serve``: JSONL serving front-ends (stdin loop and socket).

The minimal serving surface: one JSON object per input line describes a
request, one JSON object per output line reports its outcome.  Request
shape::

    {"id": "req-1", "kind": "run", "source": "...fast program text..."}
    {"id": "req-2", "kind": "emptiness", "file": "prog.fast",
     "tenant": "team-a",
     "args": {"lang": "noTags"},
     "budget": {"deadline": 2.0, "max_solver_queries": 100000}}
    {"id": "probe", "kind": "health"}

``source`` carries program text inline (capped at
``RequestLimits.max_source_bytes``); ``file`` reads it server-side,
confined to ``RequestLimits.root`` — absolute paths and ``..`` escapes
are rejected with an ``error`` line, because a serving endpoint that
will read any path a client names is an arbitrary-file-read oracle.

Responses are :meth:`~repro.svc.job.JobResult.to_dict` payloads (plus
an ``id`` echo), shed notices (``{"id": ..., "shed": true, "reason":
..., "retry_after": ...}``), health snapshots, or ``{"id": ...,
"error": ...}`` lines for malformed requests.  The loop itself never
dies on bad input — the same posture the worker pool takes toward bad
jobs.

Both front-ends put every request through the same
:class:`~repro.svc.gate.AdmissionGate`:

* :func:`serve_lines` — the ``--stdin-jsonl`` loop: synchronous, one
  request at a time, so its queue never builds, but deadline clamping,
  tenant quotas, and the ``health`` kind behave identically to the
  socket path.  Stdin EOF is the drain signal.

* :class:`SocketFrontEnd` — ``--listen HOST:PORT``: one reader thread
  per connection feeding a bounded pending queue, one dispatcher
  thread owning the (single-threaded) supervisor pool.  Admission and
  shedding happen on the connection thread — a shed request is
  answered in microseconds however deep the backlog — and responses
  stream back as each job decides.  SIGTERM initiates graceful drain:
  stop admitting, finish what was admitted (up to the gate's drain
  timeout), close the pool, exit 0.

The service — pool, breakers, warm workers — persists across requests,
so a poisonous request kind trips its breaker for subsequent requests
exactly as it would in a long-running deployment.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import queue
import re
import secrets
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import IO, Any, Callable, Iterator, Optional

from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from .gate import AdmissionGate, GateConfig, SHED_DRAINING, Shed, Ticket
from .job import KINDS, BudgetSpec, JobSpec
from .service import AnalysisService, ServiceConfig
from .telemetry import ServeStats

_OBS_CLIENT_GONE = obs_metrics.counter("svc.serve.client_gone")
_OBS_BAD_REQUESTS = obs_metrics.counter("svc.serve.bad_requests")

#: Budget keys a request may carry; anything else is a client error.
_BUDGET_KEYS = ("deadline", "max_solver_queries", "max_steps")

#: Client-supplied trace ids: printable, no whitespace, bounded — an id
#: is a correlation token, not a payload channel.
_TRACE_ID_RE = re.compile(r"^[\x21-\x7e]{1,128}$")


def mint_trace_id() -> str:
    """A fresh server-minted trace id (64 bits of hex)."""
    return secrets.token_hex(8)


def _trace_id_from_doc(doc: dict[str, Any]) -> str:
    """The request's trace id: the client's if valid, else minted.

    Raises ``ValueError`` on a malformed client id (wrong type, empty,
    whitespace, oversized) — silently replacing it would break the
    client's own correlation.
    """
    raw = doc.get("trace_id")
    if raw is None:
        return mint_trace_id()
    if not isinstance(raw, str) or not _TRACE_ID_RE.match(raw):
        raise ValueError(
            "'trace_id' must be a non-empty printable string without "
            "whitespace, at most 128 chars"
        )
    return raw


@dataclass(frozen=True)
class RequestLimits:
    """What a request may ask of the server's filesystem and memory.

    * ``root`` — directory ``file`` requests are confined to; ``None``
      rejects file requests outright (inline ``source`` only), which is
      the right default for a network-facing endpoint.
    * ``max_source_bytes`` — cap on inline source *and* on the size of
      a file read server-side; a 2 GB "program" is a memory attack,
      not a job.
    """

    root: Optional[str] = None
    max_source_bytes: int = 1 << 20

    @classmethod
    def local(cls) -> "RequestLimits":
        """The stdin-loop default: files confined to the cwd."""
        return cls(root=os.getcwd())


@dataclass
class Request:
    """One parsed request line: a probe (health/stats) or a job + tenant."""

    client_id: str
    health: bool = False
    stats: bool = False
    spec: Optional[JobSpec] = None
    tenant: str = "default"
    #: The request-scoped trace id: the client's (validated) or minted
    #: at parse time.  Every response line derived from this request —
    #: verdict, shed, health, error — echoes it.
    trace_id: str = ""


class RequestError(ValueError):
    """A rejected request that still identified itself.

    Carries the client's ``id`` (and trace id, when one was readable)
    so the error line correlates with the request that caused it even
    though no job was built.
    """

    def __init__(
        self, message: str, client_id: str, trace_id: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.client_id = client_id
        self.trace_id = trace_id


def _load_doc(line: str) -> dict[str, Any]:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("request must be a JSON object")
    return doc


def _confined_read(path: str, limits: RequestLimits) -> str:
    """Read a server-side file within the limits, or raise ValueError."""
    if limits.root is None:
        raise ValueError(
            "'file' requests are disabled on this endpoint (no serve "
            "root configured); send inline 'source' instead"
        )
    if not isinstance(path, str) or not path:
        raise ValueError("'file' must be a non-empty string")
    if os.path.isabs(path):
        raise ValueError(
            f"'file' must be relative to the serve root, got absolute "
            f"path {path!r}"
        )
    root = os.path.realpath(limits.root)
    resolved = os.path.realpath(os.path.join(root, path))
    if resolved != root and not resolved.startswith(root + os.sep):
        raise ValueError(f"'file' escapes the serve root: {path!r}")
    try:
        size = os.path.getsize(resolved)
    except OSError as exc:
        raise ValueError(f"cannot read 'file' {path!r}: {exc}") from exc
    if size > limits.max_source_bytes:
        raise ValueError(
            f"'file' {path!r} is {size} bytes; the limit is "
            f"{limits.max_source_bytes}"
        )
    with open(resolved, encoding="utf-8") as f:
        return f.read()


def _budget_from_doc(doc: dict[str, Any]) -> Optional[BudgetSpec]:
    raw = doc.get("budget")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ValueError("'budget' must be an object")
    unknown = sorted(set(raw) - set(_BUDGET_KEYS))
    if unknown:
        raise ValueError(
            f"unknown budget field(s) {unknown} "
            f"(expected one of {list(_BUDGET_KEYS)})"
        )
    return BudgetSpec(
        deadline=raw.get("deadline"),
        max_solver_queries=raw.get("max_solver_queries"),
        max_steps=raw.get("max_steps"),
    ).validated()


def _spec_from_doc(
    doc: dict[str, Any],
    default_id: str,
    limits: Optional[RequestLimits],
    trace_id: Optional[str] = None,
) -> JobSpec:
    kind = doc.get("kind", "run")
    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r} (expected one of {KINDS})")
    if "source" in doc:
        source = doc["source"]
        if not isinstance(source, str):
            raise ValueError("'source' must be a string")
        if limits is not None:
            size = len(source.encode("utf-8"))
            if size > limits.max_source_bytes:
                raise ValueError(
                    f"inline 'source' is {size} bytes; the limit is "
                    f"{limits.max_source_bytes}"
                )
    elif "file" in doc:
        if limits is not None:
            source = _confined_read(doc["file"], limits)
        else:
            with open(doc["file"]) as f:
                source = f.read()
    else:
        raise ValueError("request needs 'source' or 'file'")
    args = doc.get("args") or {}
    if not isinstance(args, dict):
        raise ValueError("'args' must be an object")
    return JobSpec(
        job_id=str(doc.get("id", default_id)),
        kind=kind,
        source=source,
        args=tuple(sorted((str(k), str(v)) for k, v in args.items())),
        budget=_budget_from_doc(doc),
        trace_id=trace_id,
    )


def parse_request(
    line: str, default_id: str, limits: Optional[RequestLimits] = None
) -> JobSpec:
    """One JSONL request line -> a JobSpec (raises ValueError on junk)."""
    return _spec_from_doc(_load_doc(line), default_id, limits)


def parse_line(
    line: str, default_id: str, limits: Optional[RequestLimits] = None
) -> Request:
    """One JSONL line -> a :class:`Request` (health/stats probe or job).

    Every request gets a ``trace_id`` here — the client's (validated)
    or a freshly minted one — so there is no code path past parsing
    where a request is not followable.
    """
    doc = _load_doc(line)
    client_id = str(doc.get("id", default_id))
    try:
        trace_id = _trace_id_from_doc(doc)
    except ValueError as exc:
        raise RequestError(str(exc), client_id) from exc
    if doc.get("kind") == "health":
        return Request(client_id, health=True, trace_id=trace_id)
    if doc.get("kind") == "stats":
        return Request(client_id, stats=True, trace_id=trace_id)
    try:
        tenant = doc.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("'tenant' must be a non-empty string")
        spec = _spec_from_doc(doc, default_id, limits, trace_id=trace_id)
    except (ValueError, OSError) as exc:
        raise RequestError(str(exc), client_id, trace_id) from exc
    return Request(client_id, spec=spec, tenant=tenant, trace_id=trace_id)


# -- the stdin-JSONL loop ----------------------------------------------------


def serve_lines(
    lines: Iterator[str],
    out: IO[str],
    config: Optional[ServiceConfig] = None,
    *,
    gate_config: Optional[GateConfig] = None,
    limits: Optional[RequestLimits] = None,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    stop: Optional[threading.Event] = None,
    clock=time.monotonic,
) -> int:
    """Serve until the input ends; returns the number of jobs served.

    Every request passes through an :class:`AdmissionGate` (quota and
    deadline semantics identical to the socket front-end; the queue
    bound is moot because this loop is synchronous).  ``stop`` — when
    given — drains the loop from outside (the CLI sets it on SIGTERM):
    the current job finishes, no further line is admitted.

    A vanished client (``BrokenPipeError``/``EPIPE`` on ``out``) ends
    the loop cleanly with the jobs-served count instead of a traceback:
    dying because the consumer left is the one failure mode a serving
    loop must not have.

    With ``stats_interval > 0`` a rolling ``[svc] ... jobs/s ... p95=...``
    line goes to ``err`` (default stderr) at most every that many
    seconds; with ``stats`` a ``fast top``-style per-kind summary table
    is printed when the input ends.  Result lines on ``out`` are
    untouched either way — stats are operator chatter, not protocol.
    """
    served = 0
    err = err if err is not None else sys.stderr
    config = config or ServiceConfig()
    gate = AdmissionGate(
        gate_config or GateConfig(workers=config.jobs), clock=clock
    )
    # The tracker always exists — the `stats` request kind reads its
    # live windows whether or not operator stats output was asked for.
    tracker = ServeStats(clock=clock)
    with AnalysisService(config) as svc:
        for index, line in enumerate(lines):
            if stop is not None and stop.is_set():
                gate.start_drain()
                break
            line = line.strip()
            if not line:
                continue
            default_id = f"line-{index + 1}"
            try:
                request = parse_line(line, default_id, limits)
            except (ValueError, OSError) as exc:
                _OBS_BAD_REQUESTS.inc()
                error_doc = {
                    "id": getattr(exc, "client_id", default_id),
                    "error": str(exc),
                }
                trace_id = getattr(exc, "trace_id", None)
                if trace_id:
                    error_doc["trace_id"] = trace_id
                if not _emit(out, error_doc):
                    break
                continue
            if request.health:
                health = gate.health(svc.breakers, workers=config.jobs)
                health["id"] = request.client_id
                health["trace_id"] = request.trace_id
                if not _emit(out, health):
                    break
                continue
            if request.stats:
                if not _emit(out, stats_response(request, tracker, served)):
                    break
                continue
            with obs_tracer.trace_context(request.trace_id):
                with obs_tracer.span(
                    "svc.admission",
                    id=request.client_id,
                    kind=request.spec.kind,
                    tenant=request.tenant,
                ):
                    decision = gate.admit(request.spec, request.tenant)
                if isinstance(decision, Shed):
                    tracker.record_shed(decision.reason, request.tenant)
                    if not _emit(out, decision.response(request.client_id)):
                        break
                    continue
                with obs_tracer.span("svc.dispatch", id=request.client_id):
                    released = gate.release(decision)
                if isinstance(released, Shed):
                    tracker.record_shed(released.reason, request.tenant)
                    if not _emit(out, released.response(request.client_id)):
                        break
                    continue
                result = svc.run_job(released)
            gate.note_served(result.duration)
            doc = result.to_dict()
            doc["id"] = request.client_id
            doc.setdefault("trace_id", request.trace_id)
            if not _emit(out, doc):
                break
            served += 1
            tracker.record(result, request.tenant)
            if tracker.due(stats_interval):
                err.write(tracker.line(svc.breakers) + "\n")
                err.flush()
        if stats:
            err.write(tracker.summary(svc.breakers) + "\n")
            err.flush()
    return served


def stats_response(
    request: Request, tracker: ServeStats, served: int
) -> dict[str, Any]:
    """The payload of a ``stats`` request: the live window snapshot."""
    return {
        "id": request.client_id,
        "trace_id": request.trace_id,
        "served_total": served,
        "stats": tracker.live.snapshot(),
    }


def _emit(out: IO[str], doc: dict[str, Any]) -> bool:
    """Write one response line; False when the client is gone (EPIPE)."""
    try:
        out.write(json.dumps(doc))
        out.write("\n")
        out.flush()
        return True
    except BrokenPipeError:
        _OBS_CLIENT_GONE.inc()
        return False
    except OSError as exc:
        if exc.errno in (errno.EPIPE, errno.ESHUTDOWN):
            _OBS_CLIENT_GONE.inc()
            return False
        raise


# -- the threaded front-end core ---------------------------------------------


class FrontEndBase:
    """The transport-agnostic serving core behind the socket and HTTP
    front-ends: one :class:`AdmissionGate`, one bounded pending queue,
    one dispatcher thread owning the (single-threaded)
    :class:`AnalysisService`.

    A transport's job is only to turn its inbound payloads into calls
    to :meth:`handle_line` with a ``reply`` callback, and to shut its
    listener in :meth:`_shutdown_transport` — admission, quotas,
    deadline propagation, trace-id handling, live stats, and drain
    semantics live here once and cannot drift between transports.

    * **Caller threads** (connection readers, HTTP handler threads) run
      parse + gate inline — health/stats probes, parse errors, and shed
      decisions are answered right there, without the dispatcher, which
      is what keeps refusal latency flat under any backlog; admitted
      tickets go onto the pending queue (bounded by the gate, so the
      queue object itself never grows past ``max_queue``).
    * The **dispatcher thread** pulls micro-batches of up to ``jobs``
      tickets, re-checks each ticket's remaining deadline (queue time
      burned the budget; an expired ticket sheds without dispatch), and
      streams each result to its ``reply`` as the pool finalizes it.

    Responses carry the client's ``id`` and the request's ``trace_id``;
    internally every dispatched job gets a unique sequence id so
    clients reusing ids (or two clients picking the same id) cannot
    collide inside a pool batch.

    Drain (:meth:`initiate_drain`, wired to SIGTERM by the CLI): the
    transport closes, the gate sheds new requests with ``reason:
    "draining"``, the dispatcher finishes the queue up to
    ``drain_timeout``, any leftovers are shed, the pool closes, and
    :meth:`wait` returns.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        gate_config: Optional[GateConfig] = None,
        limits: Optional[RequestLimits] = None,
        stats_interval: float = 0.0,
        err: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.gate = AdmissionGate(
            gate_config or GateConfig(workers=self.config.jobs), clock=clock
        )
        self.limits = limits if limits is not None else RequestLimits()
        self.clock = clock
        self.stats_interval = stats_interval
        self.err = err if err is not None else sys.stderr
        self.tracker = ServeStats(clock=clock)
        self.served = 0
        self._queue: "queue.Queue[Ticket]" = queue.Queue()
        self._draining = threading.Event()
        self._done = threading.Event()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FrontEndBase":
        t = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def _shutdown_transport(self) -> None:
        """Transport hook: stop accepting new payloads (idempotent)."""

    def initiate_drain(self) -> None:
        """Stop admitting; finish admitted work; then shut down."""
        if self._draining.is_set():
            return
        self.gate.start_drain()
        self._draining.set()
        self._shutdown_transport()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until drain completes; True when fully shut down."""
        return self._done.wait(timeout)

    def close(self) -> None:
        """Hard stop: drain and wait for the dispatcher to finish."""
        self.initiate_drain()
        self._done.wait(self.gate.config.drain_timeout + 5.0)

    def __enter__(self) -> "FrontEndBase":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operator views ----------------------------------------------------

    def health_doc(self) -> dict[str, Any]:
        """The ``health`` ledger (gate + breakers + worker lifecycle)."""
        svc = getattr(self, "_svc", None)
        return self.gate.health(
            svc.breakers if svc is not None else None,
            workers=self.config.jobs,
            pool=svc.pool if svc is not None else None,
        )

    def metrics_text(self) -> str:
        """The Prometheus text exposition of this front-end's state.

        The ``svc_gate_*`` families come from the gate's own ledger
        (valid with observability off, and exactly consistent with the
        wire-level served/shed partition); the window gauges from the
        live tracker; registry metrics ride along when obs recording is
        on.
        """
        from ..obs import config as obs_config
        from ..obs.live import render_prometheus

        svc = getattr(self, "_svc", None)
        return render_prometheus(
            gate=self.gate,
            breakers=svc.breakers if svc is not None else None,
            live=self.tracker.live,
            registry=obs_metrics.REGISTRY if obs_config.ENABLED else None,
            pool=svc.pool if svc is not None else None,
        )

    # -- request handling (caller threads) ---------------------------------

    def handle_line(
        self,
        line: str,
        default_id: str,
        reply: Callable[[dict[str, Any]], None],
    ) -> None:
        """Parse one request payload and answer or enqueue it."""
        try:
            request = parse_line(line, default_id, self.limits)
        except (ValueError, OSError) as exc:
            _OBS_BAD_REQUESTS.inc()
            doc = {"id": getattr(exc, "client_id", default_id),
                   "error": str(exc)}
            trace_id = getattr(exc, "trace_id", None)
            if trace_id:
                doc["trace_id"] = trace_id
            reply(doc)
            return
        if request.health:
            health = self.health_doc()
            health["id"] = request.client_id
            health["trace_id"] = request.trace_id
            reply(health)
            return
        if request.stats:
            reply(stats_response(request, self.tracker, self.served))
            return
        with obs_tracer.trace_context(request.trace_id):
            with obs_tracer.span(
                "svc.admission",
                id=request.client_id,
                kind=request.spec.kind,
                tenant=request.tenant,
            ):
                decision = self.gate.admit(request.spec, request.tenant)
        if isinstance(decision, Shed):
            self.tracker.record_shed(decision.reason, request.tenant)
            reply(decision.response(request.client_id))
            return
        decision.reply = reply
        self._queue.put(decision)

    # -- the dispatcher ----------------------------------------------------

    def _next_internal_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"g{self._seq}"

    def _gather(self, max_batch: int) -> list[Ticket]:
        """Up to ``max_batch`` tickets; blocks briefly for the first."""
        batch: list[Ticket] = []
        try:
            batch.append(self._queue.get(timeout=0.05))
        except queue.Empty:
            return batch
        while len(batch) < max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _dispatch_loop(self) -> None:
        drain_deadline: Optional[float] = None
        try:
            with AnalysisService(self.config) as svc:
                self._svc = svc
                while True:
                    if self._draining.is_set():
                        if drain_deadline is None:
                            drain_deadline = (
                                self.clock() + self.gate.config.drain_timeout
                            )
                        if self.clock() >= drain_deadline:
                            break
                        if self._queue.empty() and self.gate.inflight == 0:
                            break
                    batch = self._gather(max(1, self.config.jobs))
                    if not batch:
                        continue
                    self._dispatch_batch(svc, batch)
        finally:
            # Anything still queued when the drain deadline hit gets a
            # well-formed shed response — never silence.
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                shed = self.gate.drain_shed(ticket)
                if ticket.reply is not None:
                    ticket.reply(shed.response(ticket.client_id))
            self._done.set()

    def _dispatch_batch(
        self, svc: AnalysisService, batch: list[Ticket]
    ) -> None:
        specs: list[JobSpec] = []
        tickets: dict[str, Ticket] = {}
        for ticket in batch:
            with obs_tracer.trace_context(ticket.spec.trace_id):
                with obs_tracer.span(
                    "svc.dispatch",
                    id=ticket.client_id,
                    kind=ticket.spec.kind,
                    tenant=ticket.tenant,
                ):
                    released = self.gate.release(ticket)
            if isinstance(released, Shed):
                self.tracker.record_shed(released.reason, ticket.tenant)
                if ticket.reply is not None:
                    ticket.reply(released.response(ticket.client_id))
                continue
            internal = self._next_internal_id()
            specs.append(dataclasses.replace(released, job_id=internal))
            tickets[internal] = ticket
        if not specs:
            return
        started = self.clock()

        def deliver(result) -> None:
            ticket = tickets.get(result.job_id)
            if ticket is None:
                return
            doc = result.to_dict()
            doc["job_id"] = ticket.client_id
            doc["id"] = ticket.client_id
            # Fabricated results (crash past retries, open breaker)
            # never saw the worker, so the spec's id fills the gap.
            doc.setdefault("trace_id", ticket.spec.trace_id)
            if ticket.reply is not None:
                ticket.reply(doc)
            self.gate.note_served(
                result.duration or (self.clock() - started)
            )
            self.served += 1
            self.tracker.record(result, ticket.tenant)

        svc.run_jobs(specs, on_result=deliver)
        if self.tracker.due(self.stats_interval):
            # One write call: stats output must never interleave with
            # journal spill writes or other stderr traffic mid-line.
            self.err.write(self.tracker.line(svc.breakers) + "\n")
            self.err.flush()


# -- the socket front-end ----------------------------------------------------


class SocketFrontEnd(FrontEndBase):
    """``fast serve --listen``: a threaded JSONL-over-TCP endpoint.

    The serving core (gate, dispatcher, drain) is
    :class:`FrontEndBase`; this class adds the TCP transport — an
    **accept thread** handing each connection to a **reader thread**
    that feeds :meth:`handle_line` with a per-connection, write-locked
    ``reply``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
        gate_config: Optional[GateConfig] = None,
        limits: Optional[RequestLimits] = None,
        stats_interval: float = 0.0,
        err: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(
            config, gate_config, limits, stats_interval, err, clock
        )
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self.host, self.port = self._listener.getsockname()[:2]
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SocketFrontEnd":
        super().start()
        t = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def _shutdown_transport(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass

    def close(self) -> None:
        """Hard stop: drain, wait briefly, close every connection."""
        super().close()
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    # -- accept + connection readers ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed: drain started
            with self._conns_lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._read_loop, args=(conn,), daemon=True
            )
            t.start()

    def _read_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        gone = threading.Event()

        def reply(doc: dict[str, Any]) -> None:
            if gone.is_set():
                return
            data = (json.dumps(doc) + "\n").encode("utf-8")
            with write_lock:
                try:
                    conn.sendall(data)
                except OSError:
                    gone.set()
                    _OBS_CLIENT_GONE.inc()

        reader = conn.makefile("r", encoding="utf-8", errors="replace")
        index = 0
        try:
            for line in reader:
                index += 1
                line = line.strip()
                if not line:
                    continue
                self.handle_line(line, f"conn-{index}", reply)
        except (OSError, ValueError):
            pass  # connection torn down mid-read
        finally:
            try:
                reader.close()
            except OSError:
                pass
            # The socket itself stays open until drain/close: in-flight
            # jobs admitted from this connection may still reply on the
            # write half after the client half-closes its read side.


def serve_socket(
    host: str,
    port: int,
    config: Optional[ServiceConfig] = None,
    *,
    gate_config: Optional[GateConfig] = None,
    limits: Optional[RequestLimits] = None,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    ready: Optional[Callable[["SocketFrontEnd"], None]] = None,
) -> int:
    """Run a :class:`SocketFrontEnd` until drained; returns jobs served.

    ``ready`` is called with the live front-end once it is listening
    (the CLI uses it to print the bound address and install SIGTERM).
    """
    front = SocketFrontEnd(
        host,
        port,
        config,
        gate_config,
        limits,
        stats_interval=stats_interval,
        err=err,
    )
    front.start()
    if ready is not None:
        ready(front)
    try:
        while not front.wait(timeout=0.2):
            pass
    finally:
        front.close()
    if stats:
        stream = err if err is not None else sys.stderr
        svc = getattr(front, "_svc", None)
        stream.write(
            front.tracker.summary(svc.breakers if svc else None) + "\n"
        )
        stream.flush()
    return front.served
