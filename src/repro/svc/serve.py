"""``fast serve``: JSONL serving front-ends (stdin loop and socket).

The minimal serving surface: one JSON object per input line describes a
request, one JSON object per output line reports its outcome.  Request
shape::

    {"id": "req-1", "kind": "run", "source": "...fast program text..."}
    {"id": "req-2", "kind": "emptiness", "file": "prog.fast",
     "tenant": "team-a",
     "args": {"lang": "noTags"},
     "budget": {"deadline": 2.0, "max_solver_queries": 100000}}
    {"id": "probe", "kind": "health"}

``source`` carries program text inline (capped at
``RequestLimits.max_source_bytes``); ``file`` reads it server-side,
confined to ``RequestLimits.root`` — absolute paths and ``..`` escapes
are rejected with an ``error`` line, because a serving endpoint that
will read any path a client names is an arbitrary-file-read oracle.

Responses are :meth:`~repro.svc.job.JobResult.to_dict` payloads (plus
an ``id`` echo), shed notices (``{"id": ..., "shed": true, "reason":
..., "retry_after": ...}``), health snapshots, or ``{"id": ...,
"error": ...}`` lines for malformed requests.  The loop itself never
dies on bad input — the same posture the worker pool takes toward bad
jobs.

Both front-ends put every request through the same
:class:`~repro.svc.gate.AdmissionGate`:

* :func:`serve_lines` — the ``--stdin-jsonl`` loop: synchronous, one
  request at a time, so its queue never builds, but deadline clamping,
  tenant quotas, and the ``health`` kind behave identically to the
  socket path.  Stdin EOF is the drain signal.

* :class:`SocketFrontEnd` — ``--listen HOST:PORT``: one reader thread
  per connection feeding a bounded pending queue, one dispatcher
  thread owning the (single-threaded) supervisor pool.  Admission and
  shedding happen on the connection thread — a shed request is
  answered in microseconds however deep the backlog — and responses
  stream back as each job decides.  SIGTERM initiates graceful drain:
  stop admitting, finish what was admitted (up to the gate's drain
  timeout), close the pool, exit 0.

The service — pool, breakers, warm workers — persists across requests,
so a poisonous request kind trips its breaker for subsequent requests
exactly as it would in a long-running deployment.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import queue
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import IO, Any, Callable, Iterator, Optional

from ..obs import metrics as obs_metrics
from .gate import AdmissionGate, GateConfig, SHED_DRAINING, Shed, Ticket
from .job import KINDS, BudgetSpec, JobSpec
from .service import AnalysisService, ServiceConfig
from .telemetry import ServeStats

_OBS_CLIENT_GONE = obs_metrics.counter("svc.serve.client_gone")
_OBS_BAD_REQUESTS = obs_metrics.counter("svc.serve.bad_requests")

#: Budget keys a request may carry; anything else is a client error.
_BUDGET_KEYS = ("deadline", "max_solver_queries", "max_steps")


@dataclass(frozen=True)
class RequestLimits:
    """What a request may ask of the server's filesystem and memory.

    * ``root`` — directory ``file`` requests are confined to; ``None``
      rejects file requests outright (inline ``source`` only), which is
      the right default for a network-facing endpoint.
    * ``max_source_bytes`` — cap on inline source *and* on the size of
      a file read server-side; a 2 GB "program" is a memory attack,
      not a job.
    """

    root: Optional[str] = None
    max_source_bytes: int = 1 << 20

    @classmethod
    def local(cls) -> "RequestLimits":
        """The stdin-loop default: files confined to the cwd."""
        return cls(root=os.getcwd())


@dataclass
class Request:
    """One parsed request line: a health probe or a job + tenant."""

    client_id: str
    health: bool = False
    spec: Optional[JobSpec] = None
    tenant: str = "default"


class RequestError(ValueError):
    """A rejected request that still identified itself.

    Carries the client's ``id`` so the error line correlates with the
    request that caused it even though no job was built.
    """

    def __init__(self, message: str, client_id: str) -> None:
        super().__init__(message)
        self.client_id = client_id


def _load_doc(line: str) -> dict[str, Any]:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("request must be a JSON object")
    return doc


def _confined_read(path: str, limits: RequestLimits) -> str:
    """Read a server-side file within the limits, or raise ValueError."""
    if limits.root is None:
        raise ValueError(
            "'file' requests are disabled on this endpoint (no serve "
            "root configured); send inline 'source' instead"
        )
    if not isinstance(path, str) or not path:
        raise ValueError("'file' must be a non-empty string")
    if os.path.isabs(path):
        raise ValueError(
            f"'file' must be relative to the serve root, got absolute "
            f"path {path!r}"
        )
    root = os.path.realpath(limits.root)
    resolved = os.path.realpath(os.path.join(root, path))
    if resolved != root and not resolved.startswith(root + os.sep):
        raise ValueError(f"'file' escapes the serve root: {path!r}")
    try:
        size = os.path.getsize(resolved)
    except OSError as exc:
        raise ValueError(f"cannot read 'file' {path!r}: {exc}") from exc
    if size > limits.max_source_bytes:
        raise ValueError(
            f"'file' {path!r} is {size} bytes; the limit is "
            f"{limits.max_source_bytes}"
        )
    with open(resolved, encoding="utf-8") as f:
        return f.read()


def _budget_from_doc(doc: dict[str, Any]) -> Optional[BudgetSpec]:
    raw = doc.get("budget")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ValueError("'budget' must be an object")
    unknown = sorted(set(raw) - set(_BUDGET_KEYS))
    if unknown:
        raise ValueError(
            f"unknown budget field(s) {unknown} "
            f"(expected one of {list(_BUDGET_KEYS)})"
        )
    return BudgetSpec(
        deadline=raw.get("deadline"),
        max_solver_queries=raw.get("max_solver_queries"),
        max_steps=raw.get("max_steps"),
    ).validated()


def _spec_from_doc(
    doc: dict[str, Any], default_id: str, limits: Optional[RequestLimits]
) -> JobSpec:
    kind = doc.get("kind", "run")
    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r} (expected one of {KINDS})")
    if "source" in doc:
        source = doc["source"]
        if not isinstance(source, str):
            raise ValueError("'source' must be a string")
        if limits is not None:
            size = len(source.encode("utf-8"))
            if size > limits.max_source_bytes:
                raise ValueError(
                    f"inline 'source' is {size} bytes; the limit is "
                    f"{limits.max_source_bytes}"
                )
    elif "file" in doc:
        if limits is not None:
            source = _confined_read(doc["file"], limits)
        else:
            with open(doc["file"]) as f:
                source = f.read()
    else:
        raise ValueError("request needs 'source' or 'file'")
    args = doc.get("args") or {}
    if not isinstance(args, dict):
        raise ValueError("'args' must be an object")
    return JobSpec(
        job_id=str(doc.get("id", default_id)),
        kind=kind,
        source=source,
        args=tuple(sorted((str(k), str(v)) for k, v in args.items())),
        budget=_budget_from_doc(doc),
    )


def parse_request(
    line: str, default_id: str, limits: Optional[RequestLimits] = None
) -> JobSpec:
    """One JSONL request line -> a JobSpec (raises ValueError on junk)."""
    return _spec_from_doc(_load_doc(line), default_id, limits)


def parse_line(
    line: str, default_id: str, limits: Optional[RequestLimits] = None
) -> Request:
    """One JSONL line -> a :class:`Request` (health probe or job)."""
    doc = _load_doc(line)
    client_id = str(doc.get("id", default_id))
    if doc.get("kind") == "health":
        return Request(client_id, health=True)
    try:
        tenant = doc.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("'tenant' must be a non-empty string")
        spec = _spec_from_doc(doc, default_id, limits)
    except (ValueError, OSError) as exc:
        raise RequestError(str(exc), client_id) from exc
    return Request(client_id, spec=spec, tenant=tenant)


# -- the stdin-JSONL loop ----------------------------------------------------


def serve_lines(
    lines: Iterator[str],
    out: IO[str],
    config: Optional[ServiceConfig] = None,
    *,
    gate_config: Optional[GateConfig] = None,
    limits: Optional[RequestLimits] = None,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    stop: Optional[threading.Event] = None,
    clock=time.monotonic,
) -> int:
    """Serve until the input ends; returns the number of jobs served.

    Every request passes through an :class:`AdmissionGate` (quota and
    deadline semantics identical to the socket front-end; the queue
    bound is moot because this loop is synchronous).  ``stop`` — when
    given — drains the loop from outside (the CLI sets it on SIGTERM):
    the current job finishes, no further line is admitted.

    A vanished client (``BrokenPipeError``/``EPIPE`` on ``out``) ends
    the loop cleanly with the jobs-served count instead of a traceback:
    dying because the consumer left is the one failure mode a serving
    loop must not have.

    With ``stats_interval > 0`` a rolling ``[svc] ... jobs/s ... p95=...``
    line goes to ``err`` (default stderr) at most every that many
    seconds; with ``stats`` a ``fast top``-style per-kind summary table
    is printed when the input ends.  Result lines on ``out`` are
    untouched either way — stats are operator chatter, not protocol.
    """
    served = 0
    err = err if err is not None else sys.stderr
    config = config or ServiceConfig()
    gate = AdmissionGate(
        gate_config or GateConfig(workers=config.jobs), clock=clock
    )
    tracker = ServeStats(clock=clock) if (stats or stats_interval > 0) else None
    with AnalysisService(config) as svc:
        for index, line in enumerate(lines):
            if stop is not None and stop.is_set():
                gate.start_drain()
                break
            line = line.strip()
            if not line:
                continue
            default_id = f"line-{index + 1}"
            try:
                request = parse_line(line, default_id, limits)
            except (ValueError, OSError) as exc:
                _OBS_BAD_REQUESTS.inc()
                error_id = getattr(exc, "client_id", default_id)
                if not _emit(out, {"id": error_id, "error": str(exc)}):
                    break
                continue
            if request.health:
                health = gate.health(svc.breakers, workers=config.jobs)
                health["id"] = request.client_id
                if not _emit(out, health):
                    break
                continue
            decision = gate.admit(request.spec, request.tenant)
            if isinstance(decision, Shed):
                if tracker is not None:
                    tracker.record_shed(decision.reason)
                if not _emit(out, decision.response(request.client_id)):
                    break
                continue
            released = gate.release(decision)
            if isinstance(released, Shed):
                if tracker is not None:
                    tracker.record_shed(released.reason)
                if not _emit(out, released.response(request.client_id)):
                    break
                continue
            result = svc.run_job(released)
            gate.note_served(result.duration)
            doc = result.to_dict()
            doc["id"] = request.client_id
            if not _emit(out, doc):
                break
            served += 1
            if tracker is not None:
                tracker.record(result)
                if tracker.due(stats_interval):
                    print(tracker.line(svc.breakers), file=err)
                    err.flush()
        if tracker is not None and stats:
            print(tracker.summary(svc.breakers), file=err)
            err.flush()
    return served


def _emit(out: IO[str], doc: dict[str, Any]) -> bool:
    """Write one response line; False when the client is gone (EPIPE)."""
    try:
        out.write(json.dumps(doc))
        out.write("\n")
        out.flush()
        return True
    except BrokenPipeError:
        _OBS_CLIENT_GONE.inc()
        return False
    except OSError as exc:
        if exc.errno in (errno.EPIPE, errno.ESHUTDOWN):
            _OBS_CLIENT_GONE.inc()
            return False
        raise


# -- the socket front-end ----------------------------------------------------


class SocketFrontEnd:
    """``fast serve --listen``: a threaded JSONL-over-TCP endpoint.

    Threading model (chosen so the single-threaded supervisor stays
    single-threaded):

    * an **accept thread** hands each connection to a reader thread;
    * **reader threads** parse lines and run the gate — health probes,
      parse errors, and shed decisions are answered right here, without
      the dispatcher, which is what keeps shed latency flat under any
      backlog; admitted tickets go onto the pending queue (bounded by
      the gate, so the queue object itself never grows past
      ``max_queue``);
    * one **dispatcher thread** owns the :class:`AnalysisService`: it
      pulls micro-batches of up to ``jobs`` tickets, re-checks each
      ticket's remaining deadline (queue time burned the budget; an
      expired ticket sheds without dispatch), and streams each result
      to its connection's writer as the pool finalizes it.

    Responses carry the client's ``id``; internally every dispatched
    job gets a unique sequence id so clients reusing ids (or two
    clients picking the same id) cannot collide inside a pool batch.

    Drain (:meth:`initiate_drain`, wired to SIGTERM by the CLI): the
    listener closes, the gate sheds new requests with ``reason:
    "draining"``, the dispatcher finishes the queue up to
    ``drain_timeout``, any leftovers are shed, the pool closes, and
    :meth:`wait` returns.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
        gate_config: Optional[GateConfig] = None,
        limits: Optional[RequestLimits] = None,
        stats_interval: float = 0.0,
        err: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.gate = AdmissionGate(
            gate_config or GateConfig(workers=self.config.jobs), clock=clock
        )
        self.limits = limits if limits is not None else RequestLimits()
        self.clock = clock
        self.stats_interval = stats_interval
        self.err = err if err is not None else sys.stderr
        self.tracker = ServeStats(clock=clock)
        self.served = 0
        self._queue: "queue.Queue[Ticket]" = queue.Queue()
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self.host, self.port = self._listener.getsockname()[:2]
        self._draining = threading.Event()
        self._done = threading.Event()
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SocketFrontEnd":
        for target, name in (
            (self._accept_loop, "serve-accept"),
            (self._dispatch_loop, "serve-dispatch"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def initiate_drain(self) -> None:
        """Stop admitting; finish admitted work; then shut down."""
        if self._draining.is_set():
            return
        self.gate.start_drain()
        self._draining.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until drain completes; True when fully shut down."""
        return self._done.wait(timeout)

    def close(self) -> None:
        """Hard stop: drain, wait briefly, close every connection."""
        self.initiate_drain()
        self._done.wait(self.gate.config.drain_timeout + 5.0)
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "SocketFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accept + connection readers ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed: drain started
            with self._conns_lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._read_loop, args=(conn,), daemon=True
            )
            t.start()

    def _read_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        gone = threading.Event()

        def reply(doc: dict[str, Any]) -> None:
            if gone.is_set():
                return
            data = (json.dumps(doc) + "\n").encode("utf-8")
            with write_lock:
                try:
                    conn.sendall(data)
                except OSError:
                    gone.set()
                    _OBS_CLIENT_GONE.inc()

        reader = conn.makefile("r", encoding="utf-8", errors="replace")
        index = 0
        try:
            for line in reader:
                index += 1
                line = line.strip()
                if not line:
                    continue
                self._handle_line(line, f"conn-{index}", reply)
        except (OSError, ValueError):
            pass  # connection torn down mid-read
        finally:
            try:
                reader.close()
            except OSError:
                pass
            # The socket itself stays open until drain/close: in-flight
            # jobs admitted from this connection may still reply on the
            # write half after the client half-closes its read side.

    def _handle_line(
        self,
        line: str,
        default_id: str,
        reply: Callable[[dict[str, Any]], None],
    ) -> None:
        try:
            request = parse_line(line, default_id, self.limits)
        except (ValueError, OSError) as exc:
            _OBS_BAD_REQUESTS.inc()
            reply({"id": getattr(exc, "client_id", default_id),
                   "error": str(exc)})
            return
        if request.health:
            svc = getattr(self, "_svc", None)
            health = self.gate.health(
                svc.breakers if svc is not None else None,
                workers=self.config.jobs,
            )
            health["id"] = request.client_id
            reply(health)
            return
        decision = self.gate.admit(request.spec, request.tenant)
        if isinstance(decision, Shed):
            self.tracker.record_shed(decision.reason)
            reply(decision.response(request.client_id))
            return
        decision.reply = reply
        self._queue.put(decision)

    # -- the dispatcher ----------------------------------------------------

    def _next_internal_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"g{self._seq}"

    def _gather(self, max_batch: int) -> list[Ticket]:
        """Up to ``max_batch`` tickets; blocks briefly for the first."""
        batch: list[Ticket] = []
        try:
            batch.append(self._queue.get(timeout=0.05))
        except queue.Empty:
            return batch
        while len(batch) < max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _dispatch_loop(self) -> None:
        drain_deadline: Optional[float] = None
        try:
            with AnalysisService(self.config) as svc:
                self._svc = svc
                while True:
                    if self._draining.is_set():
                        if drain_deadline is None:
                            drain_deadline = (
                                self.clock() + self.gate.config.drain_timeout
                            )
                        if self.clock() >= drain_deadline:
                            break
                        if self._queue.empty() and self.gate.inflight == 0:
                            break
                    batch = self._gather(max(1, self.config.jobs))
                    if not batch:
                        continue
                    self._dispatch_batch(svc, batch)
        finally:
            # Anything still queued when the drain deadline hit gets a
            # well-formed shed response — never silence.
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                shed = self.gate.drain_shed(ticket)
                if ticket.reply is not None:
                    ticket.reply(shed.response(ticket.client_id))
            self._done.set()

    def _dispatch_batch(
        self, svc: AnalysisService, batch: list[Ticket]
    ) -> None:
        specs: list[JobSpec] = []
        tickets: dict[str, Ticket] = {}
        for ticket in batch:
            released = self.gate.release(ticket)
            if isinstance(released, Shed):
                self.tracker.record_shed(released.reason)
                if ticket.reply is not None:
                    ticket.reply(released.response(ticket.client_id))
                continue
            internal = self._next_internal_id()
            specs.append(dataclasses.replace(released, job_id=internal))
            tickets[internal] = ticket
        if not specs:
            return
        started = self.clock()

        def deliver(result) -> None:
            ticket = tickets.get(result.job_id)
            if ticket is None:
                return
            doc = result.to_dict()
            doc["job_id"] = ticket.client_id
            doc["id"] = ticket.client_id
            if ticket.reply is not None:
                ticket.reply(doc)
            self.gate.note_served(
                result.duration or (self.clock() - started)
            )
            self.served += 1
            self.tracker.record(result)

        svc.run_jobs(specs, on_result=deliver)
        if self.tracker.due(self.stats_interval):
            print(self.tracker.line(svc.breakers), file=self.err)
            self.err.flush()


def serve_socket(
    host: str,
    port: int,
    config: Optional[ServiceConfig] = None,
    *,
    gate_config: Optional[GateConfig] = None,
    limits: Optional[RequestLimits] = None,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    ready: Optional[Callable[["SocketFrontEnd"], None]] = None,
) -> int:
    """Run a :class:`SocketFrontEnd` until drained; returns jobs served.

    ``ready`` is called with the live front-end once it is listening
    (the CLI uses it to print the bound address and install SIGTERM).
    """
    front = SocketFrontEnd(
        host,
        port,
        config,
        gate_config,
        limits,
        stats_interval=stats_interval,
        err=err,
    )
    front.start()
    if ready is not None:
        ready(front)
    try:
        while not front.wait(timeout=0.2):
            pass
    finally:
        front.close()
    if stats:
        stream = err if err is not None else sys.stderr
        svc = getattr(front, "_svc", None)
        print(
            front.tracker.summary(svc.breakers if svc else None), file=stream
        )
        stream.flush()
    return front.served
