"""``fast serve --stdin-jsonl``: a line-oriented job loop.

The minimal serving surface: one JSON object per input line describes a
job, one JSON object per output line reports its result.  Request
shape::

    {"id": "req-1", "kind": "run", "source": "...fast program text..."}
    {"id": "req-2", "kind": "emptiness", "file": "prog.fast",
     "args": {"lang": "noTags"},
     "budget": {"deadline": 2.0, "max_solver_queries": 100000}}

``source`` carries program text inline; ``file`` reads it server-side.
Responses are ``JobResult.to_dict()`` payloads; malformed requests get
``{"id": ..., "error": ...}`` lines (the loop itself never dies on bad
input — it is the same posture the worker pool takes toward bad jobs).

The service — pool, breakers, warm workers — persists across lines, so
a poisonous request kind trips its breaker for subsequent requests
exactly as it would in a long-running deployment.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Any, Iterator, Optional

from .job import KINDS, BudgetSpec, JobSpec
from .service import AnalysisService, ServiceConfig
from .telemetry import ServeStats


def parse_request(line: str, default_id: str) -> JobSpec:
    """One JSONL request line -> a JobSpec (raises ValueError on junk)."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("request must be a JSON object")
    kind = doc.get("kind", "run")
    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r} (expected one of {KINDS})")
    if "source" in doc:
        source = doc["source"]
    elif "file" in doc:
        with open(doc["file"]) as f:
            source = f.read()
    else:
        raise ValueError("request needs 'source' or 'file'")
    budget: Optional[BudgetSpec] = None
    if isinstance(doc.get("budget"), dict):
        b = doc["budget"]
        budget = BudgetSpec(
            deadline=b.get("deadline"),
            max_solver_queries=b.get("max_solver_queries"),
            max_steps=b.get("max_steps"),
        )
    args = doc.get("args") or {}
    if not isinstance(args, dict):
        raise ValueError("'args' must be an object")
    return JobSpec(
        job_id=str(doc.get("id", default_id)),
        kind=kind,
        source=source,
        args=tuple(sorted((str(k), str(v)) for k, v in args.items())),
        budget=budget,
    )


def serve_lines(
    lines: Iterator[str],
    out: IO[str],
    config: Optional[ServiceConfig] = None,
    *,
    stats: bool = False,
    stats_interval: float = 0.0,
    err: Optional[IO[str]] = None,
    clock=time.monotonic,
) -> int:
    """Serve until the input ends; returns the number of jobs served.

    With ``stats_interval > 0`` a rolling ``[svc] ... jobs/s ... p95=...``
    line goes to ``err`` (default stderr) at most every that many
    seconds; with ``stats`` a ``fast top``-style per-kind summary table
    is printed when the input ends.  Result lines on ``out`` are
    untouched either way — stats are operator chatter, not protocol.
    """
    served = 0
    err = err if err is not None else sys.stderr
    tracker = ServeStats(clock=clock) if (stats or stats_interval > 0) else None
    with AnalysisService(config) as svc:
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                spec = parse_request(line, default_id=f"line-{index + 1}")
            except (ValueError, OSError) as exc:
                _emit(out, {"id": f"line-{index + 1}", "error": str(exc)})
                continue
            result = svc.run_job(spec)
            _emit(out, result.to_dict())
            served += 1
            if tracker is not None:
                tracker.record(result)
                if tracker.due(stats_interval):
                    print(tracker.line(svc.breakers), file=err)
                    err.flush()
        if tracker is not None and stats:
            print(tracker.summary(svc.breakers), file=err)
            err.flush()
    return served


def _emit(out: IO[str], doc: dict[str, Any]) -> None:
    out.write(json.dumps(doc))
    out.write("\n")
    out.flush()
