"""repro.svc — the fault-isolated analysis service.

The paper's analyses (compose, typecheck, emptiness, equivalence — §3
and §4) are worst-case exponential; the guard layer bounds what they
*consume*, but an in-process analysis can still take the host down by
crashing or hanging below the charge points.  This package moves
execution into a supervised pool of subprocess workers so the serving
process survives anything a job does:

* :mod:`~repro.svc.job` — picklable :class:`JobSpec` in, JSON-able
  :class:`JobResult` out; :func:`execute_job` is the worker-side core;
* :mod:`~repro.svc.worker` — the subprocess loop + respawnable handle
  (and the hook where worker-level chaos faults fire);
* :mod:`~repro.svc.pool` — the single-threaded supervisor: dispatch,
  wall-clock kill timeouts, crash detection, respawn;
* :mod:`~repro.svc.lifecycle` — long-haul hygiene: worker generation
  numbers, proactive recycling by jobs-served / RSS / age thresholds
  (``--worker-max-*``), and the in-worker intern-table ceiling;
* :mod:`~repro.svc.retry` — exponential backoff with full jitter for
  transient failures;
* :mod:`~repro.svc.breaker` — per-analysis-kind circuit breakers
  (closed → open → half-open) so a poisonous workload degrades to
  immediate UNKNOWNs instead of starving the pool;
* :mod:`~repro.svc.service` — the :class:`AnalysisService` facade;
* :mod:`~repro.svc.telemetry` — cross-process observability: worker
  journals/metrics/spans ship back over the job boundary as size-capped
  blobs and merge into the host journal (per-worker Perfetto tracks),
  registry, and trace tree;
* :mod:`~repro.svc.gate` — admission control: bounded pending queue
  with explicit load shedding, per-tenant token-bucket quotas, a
  server-side deadline ceiling with remaining-time propagation, health
  snapshots, and graceful drain;
* :mod:`~repro.svc.batch` / :mod:`~repro.svc.serve` — the engines of
  ``fast batch``, ``fast serve --stdin-jsonl``, and
  ``fast serve --listen HOST:PORT`` (the socket JSONL front-end);
* :mod:`~repro.svc.http` — ``fast serve --http HOST:PORT``: the same
  serving core behind an HTTP/1.1 surface (``POST /v1/analyze``,
  ``GET /metrics`` Prometheus exposition, ``GET /healthz``).

Quick use::

    from repro.svc import AnalysisService, JobSpec, ServiceConfig

    with AnalysisService(ServiceConfig(jobs=8)) as svc:
        result = svc.run_job(JobSpec("job-1", "run", source))
        print(result.outcome, result.reason)

Every failure mode — worker crash, hang, corrupted reply, open breaker
— comes back as an UNKNOWN result with a structured
:class:`~repro.svc.job.JobFailure`; the supervisor never raises for
job-level trouble.
"""

from __future__ import annotations

from .batch import BatchReport, build_specs, collect_program_paths, run_batch
from .breaker import BreakerConfig, BreakerRegistry, CircuitBreaker
from .gate import AdmissionGate, GateConfig, Shed, Ticket, TokenBucket
from .job import (
    BudgetSpec,
    InvalidBudget,
    JobFailure,
    JobResult,
    JobSpec,
    KINDS,
    execute_job,
)
from .http import HttpFrontEnd, serve_http
from .lifecycle import LifecyclePolicy, current_rss_bytes, parse_size
from .pool import WorkerPool
from .retry import RetryPolicy
from .serve import (
    FrontEndBase,
    RequestError,
    RequestLimits,
    SocketFrontEnd,
    mint_trace_id,
    parse_line,
    parse_request,
    serve_lines,
    serve_socket,
)
from .service import AnalysisService, ServiceConfig, chaos_from_env
from .telemetry import ServeStats, TelemetryConfig, latency_summary

__all__ = [
    "AdmissionGate",
    "AnalysisService",
    "BatchReport",
    "BreakerConfig",
    "BreakerRegistry",
    "BudgetSpec",
    "CircuitBreaker",
    "FrontEndBase",
    "GateConfig",
    "HttpFrontEnd",
    "InvalidBudget",
    "JobFailure",
    "JobResult",
    "JobSpec",
    "KINDS",
    "LifecyclePolicy",
    "RequestError",
    "RequestLimits",
    "RetryPolicy",
    "ServeStats",
    "ServiceConfig",
    "Shed",
    "SocketFrontEnd",
    "TelemetryConfig",
    "Ticket",
    "TokenBucket",
    "WorkerPool",
    "build_specs",
    "chaos_from_env",
    "collect_program_paths",
    "current_rss_bytes",
    "execute_job",
    "latency_summary",
    "mint_trace_id",
    "parse_line",
    "parse_size",
    "parse_request",
    "run_batch",
    "serve_http",
    "serve_lines",
    "serve_socket",
]
