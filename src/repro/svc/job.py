"""Jobs: the unit of work the analysis service isolates.

A :class:`JobSpec` names one analysis over one Fast program — run the
whole program's assertions, or a single compose / typecheck / emptiness
/ equivalence query on its declarations — plus the
:class:`~repro.guard.Budget` it must respect.  Specs are plain
picklable dataclasses: the supervisor ships them to subprocess workers
over a pipe.

A :class:`JobResult` is what comes back.  Its payload is deliberately
**JSON-able** (outcome strings, rendered witness trees, snapshot and
derivation dicts) rather than live ``Language``/``Tree``/``Term``
objects: hash-consed terms must not cross process boundaries — their
identity-based caches only make sense inside one intern table — and a
JSON payload feeds ``fast batch --json`` and ``fast serve`` directly.
Failures that are *errors* (a crash, a corrupted reply, an exhausted
retry budget) travel as a structured :class:`JobFailure`, optionally
carrying the original pickled :class:`~repro.errors.ReproError`.

:func:`execute_job` is the worker-side entry point: it activates the
budget scope, dispatches on the job kind, and maps every outcome —
including budget exhaustion *outside* the governed analyses (e.g.
during parsing or compilation) — to a clean result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ReproError
from ..guard import Budget, GuardError, Verdict, governed, scope
from ..guard.budget import BudgetSnapshot

#: Job kinds the service understands.
KINDS = ("run", "emptiness", "equivalence", "typecheck", "compose")

#: Outcome strings (the three Verdict outcomes plus ERROR for permanent
#: front-end failures: a file that does not parse is not "unknown").
PROVED, REFUTED, UNKNOWN, ERROR = "PROVED", "REFUTED", "UNKNOWN", "ERROR"


class InvalidBudget(ValueError):
    """A budget limit that cannot mean anything: wrong type, <= 0, NaN.

    Raised at *parse* time (``fast serve`` request validation, batch
    spec construction) so garbage limits are rejected with a clear
    error line instead of failing deep inside :mod:`repro.guard` —
    where a negative deadline would silently mean "already exhausted"
    and a string one would crash an arithmetic comparison mid-analysis.
    """


@dataclass(frozen=True)
class BudgetSpec:
    """The picklable limits of a :class:`~repro.guard.Budget`.

    Budgets themselves carry live consumption counters and are started
    in the worker, so only the limits cross the process boundary.
    """

    deadline: Optional[float] = None
    max_solver_queries: Optional[int] = None
    max_steps: Optional[int] = None

    def validated(self) -> "BudgetSpec":
        """This spec, after rejecting limits that cannot be meant.

        Every limit must be a positive finite number (bools are *not*
        numbers here — ``{"deadline": true}`` is a client bug, not a
        1-second budget), and the query/step caps must be integral.
        Raises :class:`InvalidBudget` naming the offending field.
        """
        for name, value, integral in (
            ("deadline", self.deadline, False),
            ("max_solver_queries", self.max_solver_queries, True),
            ("max_steps", self.max_steps, True),
        ):
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise InvalidBudget(
                    f"budget.{name} must be a number, "
                    f"got {type(value).__name__}"
                )
            if value != value or value in (float("inf"), float("-inf")):
                raise InvalidBudget(f"budget.{name} must be finite")
            if value <= 0:
                raise InvalidBudget(
                    f"budget.{name} must be > 0, got {value!r}"
                )
            if integral and isinstance(value, float) and not value.is_integer():
                raise InvalidBudget(
                    f"budget.{name} must be an integer, got {value!r}"
                )
        return self

    def to_budget(self) -> Optional[Budget]:
        if (
            self.deadline is None
            and self.max_solver_queries is None
            and self.max_steps is None
        ):
            return None
        return Budget(
            deadline=self.deadline,
            max_solver_queries=self.max_solver_queries,
            max_steps=self.max_steps,
        )


@dataclass(frozen=True)
class JobSpec:
    """One isolated analysis job.

    * ``job_id`` — unique within a batch; retries reuse it (the chaos
      policy draws per ``(job_id, attempt)``);
    * ``kind`` — one of :data:`KINDS`;
    * ``source`` — the Fast program text (jobs carry source, not paths:
      workers must not depend on the supervisor's filesystem view);
    * ``args`` — kind-specific declaration names, e.g.
      ``("lang", "noTags")`` pairs (a tuple of pairs so the spec stays
      hashable and picklable);
    * ``budget`` — soft limits enforced *inside* the worker; the
      supervisor's kill timeout sits above the deadline;
    * ``trace_id`` — the request-scoped trace id minted (or accepted)
      at admission; it rides the spec into the worker so worker-side
      spans and journal events carry the same id as the front-end's.
    """

    job_id: str
    kind: str
    source: str
    args: tuple[tuple[str, str], ...] = ()
    budget: Optional[BudgetSpec] = None
    trace_id: Optional[str] = None

    def arg(self, name: str) -> str:
        for key, value in self.args:
            if key == name:
                return value
        raise KeyError(f"job {self.job_id}: missing argument {name!r}")


@dataclass
class JobFailure:
    """Why an attempt (or a whole job) failed, structurally.

    * ``kind`` — ``crash`` (worker died), ``timeout`` (supervisor
      killed a hung worker), ``corrupt`` (reply failed validation),
      ``breaker-open`` (rejected without dispatch), ``error``
      (in-worker exception);
    * ``transient`` — whether the supervisor may retry;
    * ``exception`` — the original error when it pickles (the
      :class:`~repro.errors.ReproError` hierarchy does, by contract).
    """

    kind: str
    message: str
    transient: bool = False
    error_type: Optional[str] = None
    exception: Optional[BaseException] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "transient": self.transient,
            "error_type": self.error_type,
        }


@dataclass
class JobResult:
    """The JSON-able outcome of one job.

    ``outcome`` is PROVED / REFUTED / UNKNOWN (the three-valued verdict
    vocabulary) or ERROR for permanent front-end failures.  For ``run``
    jobs, ``assertions`` holds the per-assertion explain dicts and the
    job-level outcome aggregates them: any FAIL ⇒ REFUTED, else any
    unknown ⇒ UNKNOWN, else PROVED.

    The supervisor fills in ``attempts`` and ``attempt_failures`` when
    the job was retried, and fabricates whole results (UNKNOWN +
    failure) for jobs that never produced one — crashes past the retry
    cap, timeouts, open breakers.

    ``telemetry`` is the worker-side observability blob
    (:mod:`repro.svc.telemetry`): journal events, metric deltas, and
    the span tree captured around this job.  It rides the pipe back to
    the supervisor, which merges it into host obs state and detaches it
    — so ``to_dict()`` (the ``fast batch --json`` / ``fast serve``
    payload) never carries it.
    """

    job_id: str
    kind: str
    outcome: str
    reason: str = ""
    witness: Optional[str] = None
    assertions: list[dict[str, Any]] = field(default_factory=list)
    snapshot: Optional[dict[str, Any]] = None
    failure: Optional[JobFailure] = None
    duration: float = 0.0
    worker_pid: Optional[int] = None
    attempts: int = 1
    attempt_failures: list[dict[str, Any]] = field(default_factory=list)
    telemetry: Optional[dict[str, Any]] = None
    trace_id: Optional[str] = None
    #: Worker self-report for the lifecycle layer, attached after every
    #: executed job: ``{"rss_bytes": int|None, "intern_terms": int,
    #: "flushes": int}``.  Unlike ``telemetry`` it is present even with
    #: obs off — the supervisor's RSS recycle threshold depends on it.
    hygiene: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "job_id": self.job_id,
            "kind": self.kind,
            "outcome": self.outcome,
            "reason": self.reason,
            "witness": self.witness,
            "assertions": self.assertions,
            "snapshot": self.snapshot,
            "failure": None if self.failure is None else self.failure.to_dict(),
            "duration": self.duration,
            "worker_pid": self.worker_pid,
            "attempts": self.attempts,
            "attempt_failures": self.attempt_failures,
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.hygiene is not None:
            doc["hygiene"] = self.hygiene
        return doc

    def to_verdict(self) -> Verdict:
        """The result as the library's three-valued :class:`Verdict`.

        Crash / timeout / open-breaker results are UNKNOWN verdicts
        whose reason is the structured failure message; the budget
        snapshot is reconstructed when the worker got far enough to
        record one.  (The full derivation stays in the worker — the
        verdict carries a provenance *stub* via its reason.)
        """
        snapshot = None
        if self.snapshot is not None:
            snapshot = BudgetSnapshot(**self.snapshot)
        if self.outcome == PROVED:
            return Verdict.proved(self.reason, snapshot)
        if self.outcome == REFUTED:
            return Verdict.refuted(self.reason, None, snapshot)
        reason = self.reason
        if self.failure is not None:
            reason = f"{self.failure.kind}: {self.failure.message}"
        return Verdict.unknown(reason or "job did not complete", snapshot)


# -- worker-side execution ---------------------------------------------------


def _verdict_payload(verdict: Verdict) -> dict[str, Any]:
    d = verdict.explain_dict()
    return {
        "outcome": d["outcome"],
        "reason": d["reason"],
        "witness": d["witness"],
        "snapshot": d["snapshot"],
    }


def _compile(source: str):
    """One compiled artifact per job, via the artifact cache.

    Called exactly once by :func:`execute_job` and shared by every
    handler — compiling per handler (the old shape) billed a
    multi-declaration program's front end N times per job.  Warm cache
    hits skip parse/compile entirely (but replay the ``fast.decl``
    budget charge; see :mod:`repro.exec.cache`).
    """
    from ..exec.cache import cached_artifact

    return cached_artifact(source)


def _resolve_lang(env, name: str):
    if name in env.langs:
        return env.langs[name]
    raise KeyError(f"no language named {name!r} in the program")


def _resolve_trans(env, name: str):
    if name in env.transducers:
        return env.transducers[name]
    raise KeyError(f"no transducer named {name!r} in the program")


def _execute_run(spec: JobSpec, artifact) -> dict[str, Any]:
    from ..fast.evaluator import explain_artifact
    from ..obs import tracer as obs_tracer

    with obs_tracer.span("explain_program"):
        report = explain_artifact(artifact)
    assertions = [a.to_dict() for a in report.assertions]
    failed = sum(a.passed is False for a in report.assertions)
    unknown = sum(a.passed is None for a in report.assertions)
    passed = sum(a.passed is True for a in report.assertions)
    if failed:
        outcome, reason = REFUTED, f"{failed} assertion(s) failed"
    elif unknown:
        outcome, reason = UNKNOWN, f"{unknown} assertion(s) unknown"
    else:
        outcome, reason = PROVED, f"{passed}/{len(assertions)} assertions passed"
    return {
        "outcome": outcome,
        "reason": reason,
        "witness": None,
        "snapshot": None,
        "assertions": assertions,
    }


def _execute_emptiness(spec: JobSpec, artifact) -> dict[str, Any]:
    env = artifact.env
    name = spec.arg("lang")
    if name in env.langs:
        verdict = env.langs[name].is_empty_verdict()
    else:
        verdict = _resolve_trans(env, name).is_empty_verdict()
    return _verdict_payload(verdict)


def _execute_equivalence(spec: JobSpec, artifact) -> dict[str, Any]:
    env = artifact.env
    left = _resolve_lang(env, spec.arg("left"))
    right = _resolve_lang(env, spec.arg("right"))
    return _verdict_payload(left.equals_verdict(right))


def _execute_typecheck(spec: JobSpec, artifact) -> dict[str, Any]:
    env = artifact.env
    trans = _resolve_trans(env, spec.arg("trans"))
    input_lang = _resolve_lang(env, spec.arg("input"))
    output_lang = _resolve_lang(env, spec.arg("output"))
    return _verdict_payload(trans.type_check_verdict(input_lang, output_lang))


def _execute_compose(spec: JobSpec, artifact) -> dict[str, Any]:
    env = artifact.env
    first = _resolve_trans(env, spec.arg("first"))
    second = _resolve_trans(env, spec.arg("second"))
    sizes: list[tuple[int, int]] = []

    def check():
        composed = first.compose(second)
        sizes.append(composed.size())
        return None

    verdict = governed(check, proved="composition constructed")
    payload = _verdict_payload(verdict)
    if sizes:
        states, rules = sizes[0]
        payload["reason"] = f"composed: {states} states, {rules} rules"
    return payload


_EXECUTORS: dict[str, Callable[[JobSpec, Any], dict[str, Any]]] = {
    "run": _execute_run,
    "emptiness": _execute_emptiness,
    "equivalence": _execute_equivalence,
    "typecheck": _execute_typecheck,
    "compose": _execute_compose,
}


def _dispatch(spec: JobSpec) -> dict[str, Any]:
    """Compile (or fetch) the program once, then run the job's handler."""
    artifact = _compile(spec.source)
    return _EXECUTORS[spec.kind](spec, artifact)


def execute_job(spec: JobSpec) -> JobResult:
    """Run one job to a result; never raise.

    The result always carries the spec's ``trace_id`` back out — the
    worker side of request-scoped trace propagation.
    """
    result = _execute_job(spec)
    result.trace_id = spec.trace_id
    return result


def _execute_job(spec: JobSpec) -> JobResult:
    """Run one job to a result; never raise.

    Everything a job can do wrong becomes a structured result:

    * budget exhaustion / injected solver faults *outside* a governed
      analysis (parse, compile) ⇒ UNKNOWN with the guard reason;
    * front-end and backend :class:`ReproError`\\ s ⇒ ERROR with the
      pickled original attached (permanent: retrying cannot help);
    * any other exception ⇒ ERROR, flagged with its type.

    Worker *process* failures (kill, hang, corrupt reply) are not
    visible from here — the supervisor detects and classifies those.
    """
    import os
    import pickle

    if spec.kind not in _EXECUTORS:
        return JobResult(
            spec.job_id,
            spec.kind,
            ERROR,
            reason=f"unknown job kind {spec.kind!r}",
            failure=JobFailure("error", f"unknown job kind {spec.kind!r}"),
            worker_pid=os.getpid(),
        )
    budget = spec.budget.to_budget() if spec.budget is not None else None
    started = time.perf_counter()
    snapshot: Optional[dict[str, Any]] = None
    try:
        if budget is not None:
            with scope(budget):
                payload = _dispatch(spec)
            snapshot = budget.snapshot().as_dict()
        else:
            payload = _dispatch(spec)
    except GuardError as exc:
        snap = getattr(exc, "snapshot", None)
        if snap is None and budget is not None:
            snap = budget.snapshot()
        return JobResult(
            spec.job_id,
            spec.kind,
            UNKNOWN,
            reason=str(exc) or type(exc).__name__,
            snapshot=None if snap is None else snap.as_dict(),
            duration=time.perf_counter() - started,
            worker_pid=os.getpid(),
        )
    except (ReproError, KeyError, ValueError) as exc:
        carried: Optional[BaseException] = None
        try:
            pickle.dumps(exc)
            carried = exc
        except Exception:
            carried = None
        return JobResult(
            spec.job_id,
            spec.kind,
            ERROR,
            reason=str(exc),
            failure=JobFailure(
                "error",
                str(exc),
                transient=False,
                error_type=type(exc).__name__,
                exception=carried,
            ),
            duration=time.perf_counter() - started,
            worker_pid=os.getpid(),
        )
    except Exception as exc:  # unexpected: report, do not crash the worker
        return JobResult(
            spec.job_id,
            spec.kind,
            ERROR,
            reason=f"unexpected {type(exc).__name__}: {exc}",
            failure=JobFailure(
                "error",
                f"unexpected {type(exc).__name__}: {exc}",
                transient=False,
                error_type=type(exc).__name__,
            ),
            duration=time.perf_counter() - started,
            worker_pid=os.getpid(),
        )
    result = JobResult(
        spec.job_id,
        spec.kind,
        payload["outcome"],
        reason=payload.get("reason", ""),
        witness=payload.get("witness"),
        assertions=payload.get("assertions", []),
        snapshot=payload.get("snapshot") or snapshot,
        duration=time.perf_counter() - started,
        worker_pid=os.getpid(),
    )
    return result
