"""Worker lifecycle policy: generations, recycle thresholds, RSS sampling.

A long-running server must not let any single worker process live
forever: the hash-consed intern table, the solver memo caches, and the
exec artifact LRU all grow monotonically within a process, so a worker
that serves days of traffic leaks by design.  The fix is *proactive
recycling* — each worker carries a monotonically increasing
**generation** number, and the supervisor retires it for a prewarmed
replacement when it crosses any configured threshold:

* ``max_jobs`` — jobs served since (re)spawn (reason ``"jobs"``);
* ``max_rss_bytes`` — resident set size self-reported by the worker
  after each job (reason ``"rss"``);
* ``max_age`` — wall-clock seconds since (re)spawn (reason ``"age"``).

Workers additionally run *in-process* hygiene between jobs: when the
intern table grows past ``max_terms``, the worker verifies cache
consistency (:func:`repro.guard.check_solver_consistency`, sampled)
and then flushes every term-holding cache in one coordinated step
(:func:`repro.smt.flush_all_caches`).

RSS sampling strategy: ``/proc/self/statm`` gives *current* resident
pages on Linux (field 2 × page size) — cheap (one small read, no
syscall fan-out) and reflects frees.  Where procfs is unavailable the
fallback is ``resource.getrusage(RUSAGE_SELF).ru_maxrss``, which is a
*high-water* mark (never decreases) — still a sound recycle trigger,
merely a conservative one.  On Linux ``ru_maxrss`` is kilobytes; on
macOS it is bytes; the fallback normalizes.
"""

from __future__ import annotations

import itertools
import os
import re
from dataclasses import dataclass
from typing import Optional

#: Recycle reasons, in the order thresholds are consulted.
REASON_JOBS = "jobs"
REASON_RSS = "rss"
REASON_AGE = "age"
RECYCLE_REASONS = (REASON_JOBS, REASON_RSS, REASON_AGE)

#: Process-wide generation counter.  Every successful worker spawn —
#: initial, crash respawn, or proactive recycle — takes the next value,
#: so generation numbers are never reused within a supervisor process.
_generations = itertools.count(1)


def next_generation() -> int:
    """Allocate a fresh, never-reused worker generation number."""
    return next(_generations)


_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT]I?B?|B)?\s*$", re.I)
_SIZE_UNITS = {
    "B": 1,
    "K": 1 << 10,
    "M": 1 << 20,
    "G": 1 << 30,
    "T": 1 << 40,
}


def parse_size(text: str) -> int:
    """Parse a human size string (``64M``, ``1.5G``, ``4096``) to bytes.

    Accepted suffixes: ``B``, ``K``/``KB``/``KiB``, ``M``, ``G``, ``T``
    (case-insensitive); no suffix means bytes.  Raises ``ValueError``
    on anything else so CLI flag errors stay loud.
    """
    match = _SIZE_RE.match(str(text))
    if match is None:
        raise ValueError(f"unparseable size {text!r} (try 64M, 1G, 4096)")
    value = float(match.group(1))
    unit = (match.group(2) or "B").upper()
    return int(value * _SIZE_UNITS[unit[0]])


def current_rss_bytes() -> Optional[int]:
    """Resident set size of *this* process in bytes, or None.

    Prefers ``/proc/self/statm`` (current residency, reflects frees);
    falls back to ``getrusage`` high-water where procfs is missing.
    """
    return rss_of_pid(None)


def rss_of_pid(pid: Optional[int]) -> Optional[int]:
    """RSS in bytes for ``pid`` (None = self) via procfs, with a
    getrusage fallback for the self case only."""
    path = "/proc/self/statm" if pid is None else f"/proc/{pid}/statm"
    try:
        with open(path, "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        pass
    if pid is not None:
        return None
    try:
        import resource
        import sys

        ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes.
        return int(ru) if sys.platform == "darwin" else int(ru) * 1024
    except Exception:
        return None


@dataclass(frozen=True)
class LifecyclePolicy:
    """Recycle thresholds for one worker generation.

    All fields are optional; a policy with nothing set is inert (the
    pool behaves exactly as before this layer existed).  The policy is
    frozen and picklable: the supervisor ships it to each worker so the
    in-process hygiene half (``max_terms``) runs child-side while the
    jobs/RSS/age half is enforced supervisor-side.
    """

    #: Retire a worker after this many jobs served since (re)spawn.
    max_jobs: Optional[int] = None
    #: Retire a worker whose self-reported RSS exceeds this many bytes.
    max_rss_bytes: Optional[int] = None
    #: Retire a worker older than this many wall-clock seconds.
    max_age: Optional[float] = None
    #: In-worker hygiene: when ``terms.intern_table_size()`` exceeds
    #: this between jobs, the worker consistency-checks and then runs
    #: :func:`repro.smt.flush_all_caches`.
    max_terms: Optional[int] = None

    def active(self) -> bool:
        """True when any supervisor-side threshold is configured."""
        return (
            self.max_jobs is not None
            or self.max_rss_bytes is not None
            or self.max_age is not None
        )

    def recycle_reason(
        self,
        *,
        jobs_served: int,
        rss_bytes: Optional[int],
        age: float,
    ) -> Optional[str]:
        """First threshold crossed, as a reason string, or None."""
        if self.max_jobs is not None and jobs_served >= self.max_jobs:
            return REASON_JOBS
        if (
            self.max_rss_bytes is not None
            and rss_bytes is not None
            and rss_bytes > self.max_rss_bytes
        ):
            return REASON_RSS
        if self.max_age is not None and age >= self.max_age:
            return REASON_AGE
        return None
