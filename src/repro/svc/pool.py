"""The supervised worker pool: dispatch, watch, kill, respawn, retry.

One single-threaded supervisor drives N subprocess workers through a
select-style event loop (:func:`multiprocessing.connection.wait` over
result pipes *and* process sentinels, so replies and deaths wake it
equally).  Per iteration it:

1. moves due retries from the backoff heap to the ready queue;
2. dispatches ready jobs to idle workers — unless the job kind's
   circuit breaker is open, in which case the job degrades to an
   immediate UNKNOWN without touching the pool;
3. sleeps until the next reply, death, kill deadline, or retry due
   time;
4. classifies what woke it: a valid reply finalizes (or, for a
   transient failure, re-queues with exponential backoff + full
   jitter), an invalid reply counts as a *corrupt* transient failure,
   a dead sentinel as a *crash*, and a blown kill deadline gets the
   worker SIGKILLed and the job finalized UNKNOWN (a hang is
   deterministic; retrying it would just hang again).

Dead and killed workers are respawned immediately, so pool capacity is
constant no matter how hostile the workload.  The supervisor itself
never executes analysis code — there is nothing a job can do to take
it down short of killing the host.

Lifecycle and decision events flow into :mod:`repro.obs`: ``svc.*``
counters and the ``svc.job`` / ``svc.pool.run`` spans land in
``--profile-json`` snapshots and, via the journal, in Perfetto trace
exports.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..guard.chaos import WorkerChaosPolicy
from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from . import telemetry as svc_telemetry
from .breaker import BreakerRegistry
from .job import ERROR, JobFailure, JobResult, JobSpec, REFUTED, UNKNOWN
from .lifecycle import RECYCLE_REASONS, LifecyclePolicy
from .retry import RetryPolicy
from .telemetry import TelemetryConfig
from .worker import Worker, default_start_method

_OBS_SUBMITTED = obs_metrics.counter("svc.jobs_submitted")
_OBS_COMPLETED = obs_metrics.counter("svc.jobs_completed")
_OBS_UNKNOWN = obs_metrics.counter("svc.jobs_unknown")
_OBS_FAILED = obs_metrics.counter("svc.jobs_failed")
_OBS_ERRORS = obs_metrics.counter("svc.jobs_error")
_OBS_RETRIES = obs_metrics.counter("svc.retries")
_OBS_SPAWNS = obs_metrics.counter("svc.worker_spawns")
_OBS_CRASHES = obs_metrics.counter("svc.worker_crashes")
_OBS_TIMEOUTS = obs_metrics.counter("svc.worker_timeouts")
_OBS_CORRUPT = obs_metrics.counter("svc.corrupt_results")
_OBS_LATENCY = obs_metrics.histogram("svc.job_latency")
_OBS_RECYCLES = obs_metrics.counter("svc.recycles")
_OBS_RECYCLES_BY = {
    reason: obs_metrics.counter(f"svc.recycles.{reason}")
    for reason in RECYCLE_REASONS
}
_OBS_WORKER_RSS = obs_metrics.gauge("svc.worker.rss_bytes")
_OBS_WORKER_GEN = obs_metrics.gauge("svc.worker.generation")
_OBS_PREWARM_MS = obs_metrics.histogram("svc.worker.prewarm_ms")
_OBS_RECYCLE_PAUSE = obs_metrics.histogram("svc.recycle_pause_ms")


def _journal(event: str, detail: dict) -> None:
    j = obs_journal.ACTIVE
    if j is not None:
        j.emit("I", event, detail)


@dataclass
class _JobState:
    """Supervisor-side bookkeeping for one job across its attempts."""

    spec: JobSpec
    attempt: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)
    first_dispatched: Optional[float] = None


class WorkerPool:
    """A fixed-size pool of supervised subprocess workers."""

    def __init__(
        self,
        size: int,
        chaos: Optional[WorkerChaosPolicy] = None,
        start_method: Optional[str] = None,
        telemetry: Optional[TelemetryConfig] = None,
        prewarm: bool = True,
        lifecycle: Optional[LifecyclePolicy] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.chaos = chaos
        self.prewarm = prewarm
        self.lifecycle = lifecycle
        # Telemetry defaults from the obs state at construction time:
        # pools built while recording is on ship worker journals back.
        self.telemetry = (
            telemetry if telemetry is not None
            else svc_telemetry.default_config()
        )
        self.ctx = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self.workers: list[Worker] = []
        #: Proactive recycles by reason; plain counts (valid with obs
        #: off), mirrored to ``svc.recycles*`` obs counters.
        self.recycles: dict[str, int] = {r: 0 for r in RECYCLE_REASONS}
        #: Wall-clock cost of each recycle (spawn + swap + retire).
        self.recycle_pause_s: list[float] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _note_spawn(self, worker: Worker) -> None:
        if obs_config.ENABLED:
            _OBS_SPAWNS.inc()
            _OBS_WORKER_GEN.set(float(worker.generation))
            if worker.prewarm_ms is not None:
                _OBS_PREWARM_MS.observe(worker.prewarm_ms)
        detail = {
            "worker": worker.worker_id,
            "pid": worker.pid,
            "generation": worker.generation,
        }
        if worker.prewarm_ms is not None:
            detail["prewarm_ms"] = round(worker.prewarm_ms, 3)
        _journal("svc.worker.spawn", detail)

    def _new_worker(self) -> Worker:
        """Build (and spawn) a worker, sharing the pool's prewarm plan.

        The first worker computes the artifact-key plan from disk; every
        later spawn — pool growth, crash respawn, proactive recycle —
        reuses it, so replacement workers warm in one pass without
        re-scanning the cache directory.
        """
        worker = Worker(
            self.ctx,
            self.chaos,
            self.telemetry,
            prewarm=self.prewarm,
            lifecycle=self.lifecycle,
            prewarm_plan=self._shared_prewarm_plan(),
        )
        return worker

    def _shared_prewarm_plan(self) -> Optional[tuple]:
        for w in self.workers:
            if w.prewarm_plan is not None:
                return w.prewarm_plan
        return None

    def _ensure_workers(self) -> None:
        while len(self.workers) < self.size:
            worker = self._new_worker()
            self.workers.append(worker)
            self._note_spawn(worker)

    def _respawn(self, worker: Worker) -> None:
        worker.kill()
        if worker.prewarm_plan is None:
            worker.prewarm_plan = self._shared_prewarm_plan()
        worker.spawn()
        self._note_spawn(worker)

    # -- proactive recycling ----------------------------------------------

    def _note_hygiene(self, worker: Worker, result: JobResult) -> None:
        """Absorb a reply's worker self-report into the handle + obs."""
        worker.jobs_served += 1
        report = result.hygiene
        if isinstance(report, dict):
            rss = report.get("rss_bytes")
            if isinstance(rss, int):
                worker.rss_bytes = rss
                if obs_config.ENABLED:
                    _OBS_WORKER_RSS.set(float(rss))

    def _maybe_recycle(self, worker: Worker) -> Worker:
        """Recycle an *idle* worker that crossed a threshold.

        Returns the worker now occupying the slot (the replacement, or
        the untouched original).  Only idle workers are considered, so
        "retirement waits for the in-flight job" holds trivially — a
        busy worker is re-examined once its reply is finalized, and a
        busy worker that never replies is the kill-timeout path's
        problem, not ours.
        """
        policy = self.lifecycle
        if policy is None or not policy.active() or not worker.alive:
            return worker
        reason = policy.recycle_reason(
            jobs_served=worker.jobs_served,
            rss_bytes=worker.rss_bytes,
            age=worker.age,
        )
        if reason is None:
            return worker
        return self._recycle(worker, reason)

    def _recycle(self, worker: Worker, reason: str) -> Worker:
        """Seamlessly replace one idle worker: spawn first, retire second.

        The replacement is fully spawned, prewarmed, and handshaken
        (the spawn-time ping doubles as a readiness barrier) *before*
        the old worker leaves the pool, so capacity never dips and no
        job can be dispatched into the gap.  Generation numbers come
        from a process-wide counter and are never reused.
        """
        t0 = time.monotonic()
        replacement = self._prepare_replacement(worker)
        self.workers[self.workers.index(worker)] = replacement
        self._note_spawn(replacement)
        worker.stop()
        pause = time.monotonic() - t0
        self.recycles[reason] = self.recycles.get(reason, 0) + 1
        self.recycle_pause_s.append(pause)
        if obs_config.ENABLED:
            _OBS_RECYCLES.inc()
            counter = _OBS_RECYCLES_BY.get(reason)
            if counter is not None:
                counter.inc()
            _OBS_RECYCLE_PAUSE.observe(pause * 1e3)
        _journal(
            "svc.worker.recycle",
            {
                "worker": worker.worker_id,
                "reason": reason,
                "old_generation": worker.generation,
                "new_generation": replacement.generation,
                "jobs_served": worker.jobs_served,
                "rss_bytes": worker.rss_bytes,
                "age_s": round(worker.age, 3),
                "pause_ms": round(pause * 1e3, 3),
            },
        )
        return replacement

    def _prepare_replacement(self, worker: Worker) -> Worker:
        """Spawn + prewarm the replacement while the old worker stands.

        Split out so chaos tests can interpose (e.g. SIGKILL a sibling
        exactly while the replacement is prewarming).
        """
        return self._new_worker()

    def lifecycle_snapshot(self) -> dict[str, Any]:
        """Per-worker lifecycle state for health docs and /metrics."""
        workers = []
        for w in self.workers:
            workers.append(
                {
                    "worker": w.worker_id,
                    "pid": w.pid,
                    "generation": w.generation,
                    "jobs_served": w.jobs_served,
                    "rss_bytes": w.rss_bytes,
                    "age_s": round(w.age, 3),
                    "prewarm_ms": (
                        round(w.prewarm_ms, 3)
                        if w.prewarm_ms is not None
                        else None
                    ),
                    "alive": w.alive,
                }
            )
        policy = None
        if self.lifecycle is not None:
            policy = {
                "max_jobs": self.lifecycle.max_jobs,
                "max_rss_bytes": self.lifecycle.max_rss_bytes,
                "max_age": self.lifecycle.max_age,
                "max_terms": self.lifecycle.max_terms,
            }
        return {
            "workers": workers,
            "recycles": dict(self.recycles),
            "recycles_total": sum(self.recycles.values()),
            "policy": policy,
        }

    def close(self) -> None:
        """Stop every worker (politely, then by force)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.stop()
        self.workers.clear()

    def __enter__(self) -> "WorkerPool":
        self._ensure_workers()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the supervision loop ---------------------------------------------

    def run_jobs(
        self,
        specs: list[JobSpec],
        *,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
        kill_timeout: float = 300.0,
        kill_grace: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> list[JobResult]:
        """Run every job to a result; never raises for job-level trouble.

        ``kill_timeout`` is the hard wall-clock cap per attempt when a
        job has no deadline of its own; with a soft ``budget.deadline``
        the attempt is killed at ``deadline + kill_grace`` — the worker
        gets a chance to abort cleanly (UNKNOWN with a snapshot) before
        the supervisor shoots it.

        ``on_result`` streams each finalized result *as it decides*,
        before slower batch-mates finish — the serving front-end uses
        it to put responses on the wire immediately instead of holding
        a whole micro-batch hostage to its slowest member.  Exceptions
        it raises are swallowed (a broken reply sink must not take the
        supervisor loop down with it).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        retry = retry if retry is not None else RetryPolicy()
        breakers = breakers if breakers is not None else BreakerRegistry()
        seen: set[str] = set()
        for spec in specs:
            if spec.job_id in seen:
                raise ValueError(f"duplicate job_id {spec.job_id!r}")
            seen.add(spec.job_id)

        self._ensure_workers()
        states = {spec.job_id: _JobState(spec) for spec in specs}
        ready: deque[str] = deque(spec.job_id for spec in specs)
        delayed: list[tuple[float, int, str]] = []  # (due, seq, job_id)
        seq = 0
        busy: dict[int, tuple[Worker, str, float]] = {}  # id(worker) -> (w, job, kill_at)
        results: dict[str, JobResult] = {}

        if obs_config.ENABLED:
            _OBS_SUBMITTED.inc(len(specs))
        _journal(
            "svc.pool.start", {"jobs": len(specs), "workers": self.size}
        )

        def finalize(
            job_id: str,
            result: JobResult,
            blob: Optional[dict[str, Any]] = None,
        ) -> None:
            state = states[job_id]
            result.attempts = state.attempt + 1
            if result.trace_id is None:
                # Fabricated results (crash past retries, open breaker,
                # kill timeout) never rode through a worker; the spec
                # still knows the request they belong to.
                result.trace_id = state.spec.trace_id
            result.attempt_failures = state.failures
            results[job_id] = result
            if obs_config.ENABLED:
                _OBS_COMPLETED.inc()
                if result.outcome == UNKNOWN:
                    _OBS_UNKNOWN.inc()
                elif result.outcome == REFUTED:
                    _OBS_FAILED.inc()
                elif result.outcome == ERROR:
                    _OBS_ERRORS.inc()
                if state.first_dispatched is not None:
                    latency = clock() - state.first_dispatched
                    _OBS_LATENCY.observe(latency)
                    obs_metrics.histogram(
                        f"svc.job_latency.{state.spec.kind}"
                    ).observe(latency)
                # A zero-length span records the job in the trace tree;
                # the worker's shipped span tree is grafted beneath it,
                # so profile output shows what happened *inside* the job.
                # Binding the request's trace context stamps the span,
                # closing the admission → dispatch → worker → merge
                # chain under one trace_id.
                with obs_tracer.trace_context(state.spec.trace_id):
                    with obs_tracer.span(
                        "svc.job",
                        job=job_id,
                        kind=state.spec.kind,
                        outcome=result.outcome,
                        attempts=result.attempts,
                    ) as sp:
                        pass
                svc_telemetry.graft_spans(sp, blob)
            if on_result is not None:
                try:
                    on_result(result)
                except Exception:
                    pass

        def fail_attempt(job_id: str, failure: JobFailure) -> None:
            """Route one failed attempt: retry, or finalize UNKNOWN."""
            nonlocal seq
            state = states[job_id]
            state.failures.append(
                {"attempt": state.attempt, **failure.to_dict()}
            )
            breakers.get(state.spec.kind).record_failure()
            if retry.should_retry(failure, state.attempt):
                delay = retry.delay(state.attempt)
                state.attempt += 1
                if obs_config.ENABLED:
                    _OBS_RETRIES.inc()
                _journal(
                    "svc.retry",
                    {
                        "job": job_id,
                        "attempt": state.attempt,
                        "delay": round(delay, 6),
                        "failure": failure.kind,
                    },
                )
                seq += 1
                heapq.heappush(delayed, (clock() + delay, seq, job_id))
            else:
                finalize(
                    job_id,
                    JobResult(
                        job_id,
                        state.spec.kind,
                        UNKNOWN,
                        reason=f"{failure.kind}: {failure.message}",
                        failure=failure,
                    ),
                )

        def classify_reply(worker: Worker, job_id: str, payload: Any) -> None:
            state = states[job_id]
            if (
                isinstance(payload, JobResult)
                and payload.job_id == job_id
            ):
                breakers.get(state.spec.kind).record_success()
                self._note_hygiene(worker, payload)
                # Fold the worker's telemetry blob (journal fragment,
                # metric deltas) into host obs state before the span is
                # recorded; crash-safe — a mangled blob merges nothing.
                blob = svc_telemetry.consume_blob(
                    payload, worker.clock_offset
                )
                finalize(job_id, payload, blob)
            else:
                if obs_config.ENABLED:
                    _OBS_CORRUPT.inc()
                _journal(
                    "svc.worker.corrupt_result",
                    {"worker": worker.worker_id, "job": job_id},
                )
                fail_attempt(
                    job_id,
                    JobFailure(
                        "corrupt",
                        f"worker {worker.pid} replied with an invalid "
                        f"payload ({type(payload).__name__})",
                        transient=True,
                    ),
                )

        with obs_tracer.span("svc.pool.run", jobs=len(specs)):
            while len(results) < len(states):
                now = clock()
                while delayed and delayed[0][0] <= now:
                    _, _, job_id = heapq.heappop(delayed)
                    ready.append(job_id)

                # Proactively recycle idle workers that crossed a
                # lifecycle threshold — replacement first, then retire,
                # so the dispatch below never sees reduced capacity.
                if self.lifecycle is not None and self.lifecycle.active():
                    for w in list(self.workers):
                        if id(w) not in busy:
                            self._maybe_recycle(w)

                # Dispatch to idle workers.
                idle = [
                    w for w in self.workers if id(w) not in busy and w.alive
                ]
                while ready and idle:
                    job_id = ready.popleft()
                    state = states[job_id]
                    breaker = breakers.get(state.spec.kind)
                    if not breaker.allow():
                        finalize(
                            job_id,
                            JobResult(
                                job_id,
                                state.spec.kind,
                                UNKNOWN,
                                reason=(
                                    f"circuit breaker open for kind "
                                    f"{state.spec.kind!r}"
                                ),
                                failure=JobFailure(
                                    "breaker-open",
                                    f"circuit breaker for {state.spec.kind!r} "
                                    f"is {breaker.state}",
                                    transient=False,
                                ),
                            ),
                        )
                        continue
                    worker = idle.pop()
                    budget = state.spec.budget
                    if budget is not None and budget.deadline is not None:
                        attempt_cap = budget.deadline + kill_grace
                    else:
                        attempt_cap = kill_timeout
                    try:
                        worker.dispatch(state.spec, state.attempt)
                    except (BrokenPipeError, OSError):
                        # The worker died idle; replace it and re-queue.
                        if obs_config.ENABLED:
                            _OBS_CRASHES.inc()
                        self._respawn(worker)
                        idle.append(worker)
                        ready.appendleft(job_id)
                        continue
                    dispatch_detail = {
                        "job": job_id,
                        "kind": state.spec.kind,
                        "worker": worker.worker_id,
                        "attempt": state.attempt,
                    }
                    if state.spec.trace_id is not None:
                        dispatch_detail["trace_id"] = state.spec.trace_id
                    _journal("svc.worker.dispatch", dispatch_detail)
                    if state.first_dispatched is None:
                        state.first_dispatched = clock()
                    busy[id(worker)] = (worker, job_id, clock() + attempt_cap)

                if not busy:
                    if ready:
                        continue  # breaker rejections may have drained all
                    if delayed and len(results) < len(states):
                        # Nothing in flight; sleep until the next retry.
                        pause = max(0.0, delayed[0][0] - clock())
                        if pause:
                            time.sleep(pause)
                        continue
                    continue

                # Sleep until a reply, a death, a kill deadline, or the
                # next retry — whichever comes first.
                now = clock()
                deadlines = [kill_at for (_, _, kill_at) in busy.values()]
                if delayed:
                    deadlines.append(delayed[0][0])
                wait_timeout = max(0.0, min(deadlines) - now)
                handles = []
                for worker, _, _ in busy.values():
                    handles.append(worker.conn)
                    handles.append(worker.process.sentinel)
                ready_handles = multiprocessing.connection.wait(
                    handles, timeout=wait_timeout
                )
                ready_set = set(ready_handles)

                for key in list(busy):
                    worker, job_id, kill_at = busy[key]
                    if worker.conn in ready_set:
                        try:
                            payload = worker.conn.recv()
                        except (EOFError, OSError):
                            self._on_crash(worker, job_id, fail_attempt)
                            del busy[key]
                            continue
                        if svc_telemetry.is_pong(payload):
                            # A clock pong that missed the spawn-time
                            # handshake window; the job reply is still
                            # on its way — keep the worker busy.
                            worker.note_pong(payload)
                            continue
                        del busy[key]
                        classify_reply(worker, job_id, payload)
                    elif worker.process.sentinel in ready_set:
                        self._on_crash(worker, job_id, fail_attempt)
                        del busy[key]
                    elif clock() >= kill_at:
                        self._on_timeout(worker, job_id, fail_attempt)
                        del busy[key]

        _journal("svc.pool.done", {"jobs": len(results)})
        return [results[spec.job_id] for spec in specs]

    # -- failure handlers --------------------------------------------------

    def _on_crash(
        self,
        worker: Worker,
        job_id: str,
        fail_attempt: Callable[[str, JobFailure], None],
    ) -> None:
        worker.process.join(timeout=1.0)  # reap so exitcode is real
        exitcode = worker.exitcode
        if obs_config.ENABLED:
            _OBS_CRASHES.inc()
        _journal(
            "svc.worker.crash",
            {"worker": worker.worker_id, "job": job_id, "exitcode": exitcode},
        )
        self._respawn(worker)
        fail_attempt(
            job_id,
            JobFailure(
                "crash",
                f"worker died (exitcode {exitcode}) while running {job_id}",
                transient=True,
            ),
        )

    def _on_timeout(
        self,
        worker: Worker,
        job_id: str,
        fail_attempt: Callable[[str, JobFailure], None],
    ) -> None:
        if obs_config.ENABLED:
            _OBS_TIMEOUTS.inc()
        _journal(
            "svc.worker.kill",
            {"worker": worker.worker_id, "job": job_id, "reason": "timeout"},
        )
        self._respawn(worker)
        # A hang is deterministic from the supervisor's viewpoint:
        # retrying would occupy another worker for the full kill
        # timeout.  ``transient=False`` makes fail_attempt finalize the
        # job UNKNOWN immediately while still recording the failure
        # against the kind's circuit breaker.
        fail_attempt(
            job_id,
            JobFailure(
                "timeout",
                f"worker killed after exceeding the wall-clock kill "
                f"timeout (job {job_id})",
                transient=False,
            ),
        )
