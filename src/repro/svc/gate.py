"""``repro.svc.gate``: admission control and overload protection.

The worker pool (:mod:`repro.svc.pool`) makes the service survive what
a *job* does; this module makes it survive what *traffic* does.  An
unprotected serving loop facing a burst flood fails in the worst
possible way — it queues unboundedly, every request's latency grows
without limit, memory grows with the backlog, and by the time anything
is answered the client has long stopped listening.  The gate replaces
that implicit, unbounded queue with explicit, deliberate policy:

* **Bounded pending queue.**  At most ``max_queue`` admitted requests
  may wait for a worker.  When the queue is full, new requests are
  *shed* — answered immediately with a well-formed
  ``{"id": ..., "shed": true, "reason": "queue-full",
  "retry_after": ...}`` line — instead of waiting.  A shed response in
  under 10 ms is strictly better than a served response after 80
  seconds: the client can retry elsewhere, back off, or degrade.

* **Per-tenant token buckets.**  Each request names a tenant (the
  ``tenant`` field; ``"default"`` otherwise) and draws one token from
  that tenant's bucket (``tenant_rate`` tokens/sec, ``tenant_burst``
  capacity).  An empty bucket sheds with ``reason: "quota"`` and a
  ``retry_after`` computed from the refill rate, so one hostile client
  cannot starve the rest.

* **Deadline ceiling + propagation.**  The server clamps every job's
  ``BudgetSpec.deadline`` to ``max_deadline`` (jobs without a deadline
  get the ceiling), so no client can request an unbounded analysis.
  The admitted deadline starts ticking at *admission*: when a queued
  job finally reaches the dispatcher, the budget dispatched to the
  worker is the **remaining** time — and a job whose deadline is
  already exhausted while queued is shed (``reason: "deadline"``)
  without ever touching a worker.  Queue time is not free time.

* **Health.**  :meth:`AdmissionGate.health` snapshots readiness, queue
  depth, per-reason shed counters, and per-kind breaker states into
  one JSON-able dict — the payload of the ``health`` request kind.

* **Graceful drain.**  :meth:`AdmissionGate.start_drain` stops
  admission (new requests shed with ``reason: "draining"``) while
  letting the dispatcher finish what was already admitted, up to the
  front-end's drain timeout.

The gate is deliberately front-end agnostic: the stdin-JSONL loop and
the socket server (:mod:`repro.svc.serve`) both run every request
through the same :meth:`admit` / :meth:`release` pair, so admission
semantics cannot drift between transports.  All methods are
thread-safe (the socket front-end admits from many connection threads
while one dispatcher releases).

See DESIGN.md §11 for the admission/shedding state machine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from .job import BudgetSpec, JobSpec

#: Shed reasons (the ``reason`` field of a shed response).
SHED_QUEUE_FULL = "queue-full"
SHED_QUOTA = "quota"
SHED_DEADLINE = "deadline"
SHED_DRAINING = "draining"

SHED_REASONS = (SHED_QUEUE_FULL, SHED_QUOTA, SHED_DEADLINE, SHED_DRAINING)

_OBS_ADMITTED = obs_metrics.counter("svc.gate.admitted")
_OBS_SERVED = obs_metrics.counter("svc.gate.served")
_OBS_SHED = {
    reason: obs_metrics.counter(f"svc.gate.shed.{reason.replace('-', '_')}")
    for reason in SHED_REASONS
}
_OBS_QUEUE_DEPTH = obs_metrics.gauge("svc.gate.queue_depth")


@dataclass(frozen=True)
class GateConfig:
    """Admission policy knobs for one serving front-end."""

    #: Admitted requests that may wait for a worker; beyond this,
    #: requests shed immediately with ``reason: queue-full``.
    max_queue: int = 64
    #: Server-side deadline ceiling (seconds), clamped onto every job's
    #: budget; jobs without a deadline get exactly this much.
    max_deadline: float = 30.0
    #: Per-tenant sustained admission rate (requests/sec); 0 disables
    #: quota enforcement entirely.
    tenant_rate: float = 0.0
    #: Per-tenant bucket capacity (burst tolerance above the rate).
    tenant_burst: int = 8
    #: Seconds the front-end keeps finishing admitted work after drain
    #: starts before closing the pool.
    drain_timeout: float = 10.0
    #: Worker slots behind the gate (used for the queue-full
    #: ``retry_after`` estimate, not enforced here).
    workers: int = 4

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_deadline <= 0:
            raise ValueError(
                f"max_deadline must be > 0, got {self.max_deadline}"
            )


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/sec, ``burst`` capacity.

    ``try_take`` is the only operation: one token per admission.  When
    empty, it reports how long until the next token exists — the
    ``retry_after`` a quota-shed response carries.  The clock is
    injectable so tests drive refill deterministically.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = max(1.0, float(burst))
        self.clock = clock
        self.tokens = self.burst
        self.last_refill = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_refill = now

    def try_take(self) -> tuple[bool, float]:
        """``(True, 0.0)`` on success; ``(False, retry_after)`` when dry."""
        now = self.clock()
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:
            return False, 1.0
        return False, (1.0 - self.tokens) / self.rate


@dataclass
class Shed:
    """The gate's refusal: why, and when to come back.

    ``response`` renders the wire form — the *whole* contract of a shed
    request is one immediate, well-formed JSONL line.
    """

    reason: str
    retry_after: float
    #: The request's trace id, echoed on the wire so a refusal is as
    #: followable as a verdict (stamped by the gate from the bound
    #: trace context at decision time).
    trace_id: Optional[str] = None

    def response(self, client_id: str) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": client_id,
            "shed": True,
            "reason": self.reason,
            "retry_after": round(max(0.0, self.retry_after), 4),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc


@dataclass
class Ticket:
    """One admitted request, waiting for (or holding) a worker.

    ``deadline_at`` is absolute on the gate's clock: admission started
    the countdown, and :meth:`AdmissionGate.release` turns whatever is
    left into the dispatched budget.
    """

    spec: JobSpec
    client_id: str
    tenant: str
    admitted_at: float
    deadline_at: float
    #: Reply delivery, set by the front-end (connection writer).
    reply: Optional[Callable[[dict[str, Any]], None]] = None


class AdmissionGate:
    """Admission control in front of an :class:`AnalysisService`.

    Thread-safe; the usual lifecycle per request is::

        decision = gate.admit(spec, tenant)      # connection thread
        if isinstance(decision, Shed):
            reply(decision.response(client_id))  # immediate, < 10 ms
        else:
            queue.put(decision)                  # bounded by the gate
        ...
        outcome = gate.release(ticket)           # dispatcher thread
        if isinstance(outcome, Shed):            # died waiting in queue
            reply(outcome.response(...))
        else:
            dispatch(outcome)                    # spec w/ remaining budget
        ...
        gate.note_served(duration)               # after the result
    """

    def __init__(
        self,
        config: Optional[GateConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or GateConfig()
        self.clock = clock
        self.started = clock()
        self.draining = False
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._pending = 0
        self._inflight = 0
        #: EWMA of served wall-clock (seconds) — the queue-full
        #: ``retry_after`` estimate.  Seeded pessimistically small so
        #: the first estimates are cheap retries, not long exiles.
        self._ewma_latency = 0.05
        self.admitted = 0
        self.served = 0
        self.shed: dict[str, int] = {reason: 0 for reason in SHED_REASONS}

    # -- admission ---------------------------------------------------------

    def _shed(
        self,
        reason: str,
        retry_after: float,
        tenant: Optional[str] = None,
        stage: str = "admit",
    ) -> Shed:
        """Count one refusal and journal it as a trace-stamped instant.

        The instant (``svc.gate.shed``) is how a refused request shows
        up in the exported Perfetto track: sheds have no span of their
        own, but the decision point — reason, stage (``admit`` vs
        ``release``), tenant — is followable by ``trace_id`` alongside
        the spans of requests that made it through.
        """
        self.shed[reason] += 1
        if obs_config.ENABLED:
            _OBS_SHED[reason].inc()
        data: dict[str, Any] = {"reason": reason, "stage": stage}
        if tenant is not None:
            data["tenant"] = tenant
        obs_tracer.instant("svc.gate.shed", data)
        return Shed(reason, retry_after, trace_id=obs_tracer.current_trace_id())

    def _queue_retry_after(self) -> float:
        """Expected time for the backlog to clear one slot."""
        per_worker = self._pending + self._inflight
        workers = max(1, self.config.workers)
        return max(0.01, per_worker * self._ewma_latency / workers)

    def clamp(self, budget: Optional[BudgetSpec]) -> float:
        """The effective deadline (seconds) the server grants a budget."""
        ceiling = self.config.max_deadline
        if budget is None or budget.deadline is None:
            return ceiling
        return min(float(budget.deadline), ceiling)

    def admit(self, spec: JobSpec, tenant: str = "default") -> Ticket | Shed:
        """Admit one request, or shed it with a reason and a retry hint.

        On admission the spec's budget deadline is clamped to the
        server ceiling and the countdown starts; the returned ticket
        occupies one bounded-queue slot until :meth:`release`.
        """
        with self._lock:
            if self.draining:
                return self._shed(
                    SHED_DRAINING, self.config.drain_timeout, tenant
                )
            if self.config.tenant_rate > 0:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(
                        self.config.tenant_rate,
                        self.config.tenant_burst,
                        self.clock,
                    )
                    self._buckets[tenant] = bucket
                ok, retry_after = bucket.try_take()
                if not ok:
                    return self._shed(SHED_QUOTA, retry_after, tenant)
            if self._pending >= self.config.max_queue:
                return self._shed(
                    SHED_QUEUE_FULL, self._queue_retry_after(), tenant
                )
            now = self.clock()
            deadline = self.clamp(spec.budget)
            budget = spec.budget or BudgetSpec()
            clamped = BudgetSpec(
                deadline=deadline,
                max_solver_queries=budget.max_solver_queries,
                max_steps=budget.max_steps,
            )
            self._pending += 1
            self.admitted += 1
            if obs_config.ENABLED:
                _OBS_ADMITTED.inc()
                _OBS_QUEUE_DEPTH.add(1)
            obs_tracer.instant(
                "svc.gate.admit",
                {
                    "tenant": tenant,
                    "deadline": round(deadline, 4),
                    "queue_depth": self._pending,
                },
            )
            return Ticket(
                spec=JobSpec(
                    job_id=spec.job_id,
                    kind=spec.kind,
                    source=spec.source,
                    args=spec.args,
                    budget=clamped,
                    trace_id=spec.trace_id,
                ),
                client_id=spec.job_id,
                tenant=tenant,
                admitted_at=now,
                deadline_at=now + deadline,
            )

    # -- dispatch ----------------------------------------------------------

    def release(self, ticket: Ticket) -> JobSpec | Shed:
        """Take a ticket off the queue, for dispatch or a deadline shed.

        The returned spec's budget deadline is the *remaining* time —
        the worker must not get the original grant back after the
        request already spent part of it waiting.
        """
        with self._lock:
            self._pending -= 1
            if obs_config.ENABLED:
                _OBS_QUEUE_DEPTH.add(-1)
            remaining = ticket.deadline_at - self.clock()
            if remaining <= 0:
                return self._shed(
                    SHED_DEADLINE, 0.0, ticket.tenant, stage="release"
                )
            self._inflight += 1
        budget = ticket.spec.budget or BudgetSpec()
        return JobSpec(
            job_id=ticket.spec.job_id,
            kind=ticket.spec.kind,
            source=ticket.spec.source,
            args=ticket.spec.args,
            budget=BudgetSpec(
                deadline=remaining,
                max_solver_queries=budget.max_solver_queries,
                max_steps=budget.max_steps,
            ),
            trace_id=ticket.spec.trace_id,
        )

    def note_served(self, duration: float) -> None:
        """One released job came back (any outcome: it was *answered*)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            self.served += 1
            if duration > 0:
                self._ewma_latency += 0.2 * (duration - self._ewma_latency)
        if obs_config.ENABLED:
            _OBS_SERVED.inc()

    def drain_shed(self, ticket: Ticket) -> Shed:
        """Shed a still-queued ticket at drain-timeout (never silence).

        Like :meth:`release`, this frees the ticket's queue slot; unlike
        it, the outcome is always a ``draining`` shed — the drain
        deadline passed before a worker could take the job.
        """
        with self._lock:
            self._pending -= 1
            if obs_config.ENABLED:
                _OBS_QUEUE_DEPTH.add(-1)
            return self._shed(
                SHED_DRAINING, 0.0, ticket.tenant, stage="drain"
            )

    # -- drain & health ----------------------------------------------------

    def start_drain(self) -> None:
        """Stop admitting; already-admitted work may still finish."""
        with self._lock:
            self.draining = True

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._pending

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def health(
        self,
        breakers: Any = None,
        workers: Optional[int] = None,
        pool: Any = None,
    ) -> dict[str, Any]:
        """The JSON-able payload of a ``health`` request.

        ``ready`` means "may I send you work and expect an answer" —
        false once draining.  Counters come from the gate's own
        bookkeeping (valid with observability off); breaker states are
        read from the service's :class:`BreakerRegistry` when given;
        with a ``pool`` the worker lifecycle snapshot (per-worker
        generation / RSS / jobs served, recycle counts by reason) rides
        along under ``"lifecycle"`` so an operator — or a probe — can
        see recycling happen without scraping ``/metrics``.
        """
        with self._lock:
            shed_total = sum(self.shed.values())
            doc: dict[str, Any] = {
                "status": "draining" if self.draining else "ok",
                "ready": not self.draining,
                "uptime": round(self.clock() - self.started, 3),
                "queue_depth": self._pending,
                "inflight": self._inflight,
                "max_queue": self.config.max_queue,
                "max_deadline": self.config.max_deadline,
                "workers": workers
                if workers is not None
                else self.config.workers,
                "counters": {
                    "admitted": self.admitted,
                    "served": self.served,
                    "shed": dict(self.shed),
                    "shed_total": shed_total,
                },
            }
        states: dict[str, str] = {}
        if breakers is not None:
            for kind, breaker in getattr(breakers, "breakers", {}).items():
                states[kind] = breaker.state
        doc["breakers"] = states
        if pool is not None:
            snapshot = getattr(pool, "lifecycle_snapshot", None)
            if callable(snapshot):
                try:
                    doc["lifecycle"] = snapshot()
                except Exception:
                    pass  # health must answer even mid-recycle
        return doc
