"""Per-analysis-kind circuit breakers: fail fast on poisonous workloads.

Retry with backoff handles *sporadic* failures; it makes *systematic*
ones worse.  A job kind that crashes every worker it touches (a solver
path that segfaults, a composition that OOMs) would, with retries
alone, grind the pool through ``jobs × (1 + retries)`` doomed
executions.  The circuit breaker pattern (Nygard, *Release It!*) caps
the damage with a three-state machine per job kind:

* **CLOSED** — normal dispatch; consecutive failures are counted,
  successes reset the count;
* **OPEN** — after ``failure_threshold`` consecutive failures: jobs of
  this kind are rejected *without dispatch* as immediate UNKNOWN
  verdicts (reason ``circuit breaker open``) until ``cooldown``
  elapses;
* **HALF_OPEN** — after the cooldown, one probe job is let through:
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

The clock is injectable so tests drive the cooldown deterministically.
Breakers live in the :class:`~repro.svc.service.AnalysisService`, not
the pool, so their state persists across batches in a long-lived
service (``fast serve``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

_OBS_TRIPS = obs_metrics.counter("svc.breaker_trips")
_OBS_REJECTIONS = obs_metrics.counter("svc.breaker_rejections")
_OBS_CLOSES = obs_metrics.counter("svc.breaker_closes")


def _journal(event: str, detail: dict) -> None:
    j = obs_journal.ACTIVE
    if j is not None:
        j.emit("I", event, detail)


@dataclass
class BreakerConfig:
    """Shared knobs for every per-kind breaker of a service."""

    #: Consecutive failures that trip CLOSED -> OPEN.
    failure_threshold: int = 5
    #: Seconds OPEN before allowing a HALF_OPEN probe.
    cooldown: float = 30.0


class CircuitBreaker:
    """One breaker (one job kind): closed -> open -> half-open."""

    def __init__(
        self,
        kind: str,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.kind = kind
        self.config = config or BreakerConfig()
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: Totals for reports (not reset by state transitions).
        self.rejected = 0
        self.trips = 0

    def allow(self) -> bool:
        """May a job of this kind be dispatched right now?

        OPEN breakers transition to HALF_OPEN when the cooldown has
        elapsed; the call that observes the transition wins the single
        probe slot (the supervisor is single-threaded, so there is no
        probe race).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            assert self.opened_at is not None
            if self.clock() - self.opened_at >= self.config.cooldown:
                self.state = HALF_OPEN
                _journal(
                    "svc.breaker.half_open",
                    {"kind": self.kind},
                )
                return True
            self.rejected += 1
            if obs_config.ENABLED:
                _OBS_REJECTIONS.inc()
            return False
        # HALF_OPEN: the probe is already in flight; queue-mates wait.
        self.rejected += 1
        if obs_config.ENABLED:
            _OBS_REJECTIONS.inc()
        return False

    def record_success(self) -> None:
        """The dispatched job came back (any clean result counts).

        A clean UNKNOWN — budget exhaustion inside the worker — is a
        *service* success: the worker survived and answered.  Breakers
        protect pool capacity, not analysis completeness.
        """
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self.opened_at = None
            if obs_config.ENABLED:
                _OBS_CLOSES.inc()
            _journal("svc.breaker.close", {"kind": self.kind})

    def record_failure(self) -> None:
        """The dispatched job failed (crash, timeout, corrupt reply)."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: straight back to OPEN, fresh cooldown.
            self._trip()
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opened_at = self.clock()
        self.trips += 1
        if obs_config.ENABLED:
            _OBS_TRIPS.inc()
        _journal(
            "svc.breaker.trip",
            {"kind": self.kind, "failures": self.consecutive_failures},
        )


@dataclass
class BreakerRegistry:
    """Per-kind breakers sharing one config and clock."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    clock: Callable[[], float] = time.monotonic
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    def get(self, kind: str) -> CircuitBreaker:
        if kind not in self.breakers:
            self.breakers[kind] = CircuitBreaker(kind, self.config, self.clock)
        return self.breakers[kind]
