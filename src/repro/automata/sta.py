"""Alternating symbolic tree automata (paper Definition 1).

An STA rule ``(q, f, phi, lbar)`` fires at a node ``f[a](t1..tk)`` when
the guard ``phi(a)`` holds and, for every child position ``i``, the
subtree ``ti`` belongs to the language of **every** state in the
lookahead set ``lbar[i]`` (a conjunction — this is the alternation).
Disjunction comes from having several rules per ``(state, symbol)``.

States are arbitrary hashable values; operations tag states to keep
unions disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..smt import builders as smt
from ..smt.terms import Term
from ..trees.types import TreeType

State = Hashable


class AutomatonError(Exception):
    """Structural errors in automaton construction."""


@dataclass(frozen=True)
class STARule:
    """``(state, ctor, guard, lookahead)`` — see Definition 1."""

    state: State
    ctor: str
    guard: Term
    lookahead: tuple[frozenset[State], ...]

    def __repr__(self) -> str:
        las = ", ".join("{" + ",".join(map(str, l)) + "}" for l in self.lookahead)
        return f"{self.state} --{self.ctor}[{self.guard!r}]--> ({las})"


def rule(
    state: State,
    ctor: str,
    guard: Term | None = None,
    lookahead: Iterable[Iterable[State]] = (),
) -> STARule:
    """Convenience rule builder: ``None`` guard means ``true``."""
    return STARule(
        state,
        ctor,
        smt.TRUE if guard is None else guard,
        tuple(frozenset(l) for l in lookahead),
    )


@dataclass(frozen=True)
class STA:
    """An alternating symbolic tree automaton ``(Q, T^sigma_Sigma, delta)``.

    There is no distinguished initial state: languages are indexed by
    state (paper Definition 2), and the :class:`~repro.automata.language.Language`
    facade pairs an STA with a state.
    """

    tree_type: TreeType
    rules: tuple[STARule, ...]

    def __post_init__(self) -> None:
        for r in self.rules:
            ctor = self.tree_type.constructor(r.ctor)
            if len(r.lookahead) != ctor.rank:
                raise AutomatonError(
                    f"rule {r!r}: lookahead length {len(r.lookahead)} does not "
                    f"match rank {ctor.rank} of {r.ctor}"
                )
        index: dict[tuple[State, str], list[STARule]] = {}
        for r in self.rules:
            index.setdefault((r.state, r.ctor), []).append(r)
        object.__setattr__(self, "_index", index)

    # -- queries --------------------------------------------------------------

    @property
    def states(self) -> frozenset[State]:
        out: set[State] = set()
        for r in self.rules:
            out.add(r.state)
            for l in r.lookahead:
                out.update(l)
        return frozenset(out)

    def rules_from(self, state: State, ctor: str | None = None) -> list[STARule]:
        """All rules with the given source state (optionally per symbol)."""
        if ctor is not None:
            return self._index.get((state, ctor), [])  # type: ignore[attr-defined]
        return [r for r in self.rules if r.state == state]

    def size(self) -> tuple[int, int]:
        """(number of states, number of rules) — used in the evaluation."""
        return len(self.states), len(self.rules)

    # -- construction helpers --------------------------------------------------

    def with_rules(self, extra: Iterable[STARule]) -> "STA":
        return STA(self.tree_type, self.rules + tuple(extra))

    def map_states(self, fn) -> "STA":
        """Rename every state through ``fn`` (must be injective)."""
        return STA(
            self.tree_type,
            tuple(
                STARule(
                    fn(r.state),
                    r.ctor,
                    r.guard,
                    tuple(frozenset(fn(s) for s in l) for l in r.lookahead),
                )
                for r in self.rules
            ),
        )

    def restrict_states(self, keep: Iterable[State]) -> "STA":
        """Drop rules whose source or lookahead states are not in ``keep``."""
        keep = set(keep)
        return STA(
            self.tree_type,
            tuple(
                r
                for r in self.rules
                if r.state in keep and all(l <= keep for l in r.lookahead)
            ),
        )


def disjoint_union(left: STA, right: STA):
    """Union two STAs over the same tree type with disjoint state spaces.

    Returns the combined STA and two total state-renaming functions
    (total, so states that appear in no rule — e.g. of the empty
    language — still rename).
    """
    if left.tree_type != right.tree_type:
        raise AutomatonError(
            f"cannot union automata over {left.tree_type.name} and "
            f"{right.tree_type.name}"
        )
    lmap = lambda s: ("L", s)  # noqa: E731
    rmap = lambda s: ("R", s)  # noqa: E731
    combined = STA(
        left.tree_type,
        left.map_states(lmap).rules + right.map_states(rmap).rules,
    )
    return combined, lmap, rmap
