"""Antichain-based inclusion and universality for symbolic tree automata.

The paper's "open problems" paragraph points to antichain techniques for
universality/inclusion of nondeterministic tree automata (Bouajjani,
Habermehl, Holik, Touili, Vojnar, CIAA'08) and asks whether they carry
over to the symbolic setting.  This module answers constructively for
our STAs: the classical bottom-up antichain algorithm lifts by replacing
"for every alphabet symbol" with "for every *minterm* of the locally
applicable guards".

``included_in_antichain(A, p, B, q)`` decides ``L^p_A ⊆ L^q_B`` without
complementing ``B``:

* both sides are lazily normalized (singleton child constraints);
* search states are pairs ``(a, S)`` meaning: some tree admits an
  ``A``-run reaching merged state ``a`` while the set of ``B`` merged
  states reachable on it is exactly ``S``;
* a counterexample is a pair with ``a`` containing the ``A``-start and
  ``S`` missing the ``B``-start;
* the antichain keeps only minimal ``S`` per ``a`` — a pair with a
  smaller ``S`` can counterfeit every context the larger one can, so
  pruning is sound and avoids materializing the subset lattice that
  complement-based inclusion (determinization) builds eagerly.

A witness (gap) tree is rebuilt from stored derivations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from ..obs import tracer as obs_tracer
from ..smt.minterms import minterms
from ..smt.solver import Solver
from ..smt.terms import Value
from ..trees.tree import Tree, format_tree
from .normalize import normalize
from .sta import STA, State

_OBS_INSERTED = obs_metrics.counter("antichain.pairs_inserted")
_OBS_SUBSUMED = obs_metrics.counter("antichain.pairs_subsumed")
_OBS_EVICTED = obs_metrics.counter("antichain.pairs_evicted")
_OBS_FRONTIER = obs_metrics.histogram("antichain.frontier_size")


@dataclass(frozen=True)
class _Pair:
    """An antichain element plus the witness tree that produced it."""

    a: State
    bs: frozenset
    witness: Tree


class _AntichainSearch:
    def __init__(
        self,
        left: STA,
        lstate: State,
        right: STA,
        rstate: State,
        solver: Solver,
    ) -> None:
        if left.tree_type != right.tree_type:
            raise ValueError("inclusion requires a common tree type")
        self.solver = solver
        self.tree_type = left.tree_type
        self.a_start = frozenset([lstate])
        self.b_start = frozenset([rstate])
        self.norm_a = normalize(left, [self.a_start], solver)
        self.norm_b = normalize(right, [self.b_start], solver)
        self.a_by_ctor: dict[str, list] = {}
        for r in self.norm_a.sta.rules:
            self.a_by_ctor.setdefault(r.ctor, []).append(r)
        self.b_by_ctor: dict[str, list] = {}
        for r in self.norm_b.sta.rules:
            self.b_by_ctor.setdefault(r.ctor, []).append(r)
        #: per A-state, the minimal-B-set pairs
        self.antichain: dict[State, list[_Pair]] = {}
        self.fresh: list[_Pair] = []

    # -- antichain maintenance --------------------------------------------

    def _insert(self, pair: _Pair) -> bool:
        bucket = self.antichain.setdefault(pair.a, [])
        for existing in bucket:
            if existing.bs <= pair.bs:
                if obs_config.ENABLED:
                    _OBS_SUBSUMED.inc()
                return False  # subsumed
        survivors = [e for e in bucket if not (pair.bs <= e.bs)]
        if obs_config.ENABLED:
            _OBS_EVICTED.inc(len(bucket) - len(survivors))
            _OBS_INSERTED.inc()
        bucket[:] = survivors
        bucket.append(pair)
        self.fresh.append(pair)
        return True

    def _attrs(self, guard) -> tuple[Value, ...]:
        model = self.solver.get_model(guard)
        assert model is not None
        defaults = self.tree_type.default_attrs()
        return tuple(
            model.get(f.name, d) for f, d in zip(self.tree_type.fields, defaults)
        )

    # -- the search ----------------------------------------------------------

    def run(self) -> Optional[Tree]:
        # Seed from nullary constructors.
        for ctor in self.tree_type.constructors:
            if ctor.rank == 0:
                gap = self._step(ctor, ())
                if gap is not None:
                    return gap
        frontier = self.fresh
        self.fresh = []
        while frontier:
            if obs_config.ENABLED:
                _OBS_FRONTIER.observe(len(frontier))
            for ctor in self.tree_type.constructors:
                if ctor.rank == 0:
                    continue
                pool = [p for b in self.antichain.values() for p in b]
                for kids in itertools.product(pool, repeat=ctor.rank):
                    if not any(k in frontier for k in kids):
                        continue  # only tuples touching new pairs
                    gap = self._step(ctor, kids)
                    if gap is not None:
                        return gap
            frontier = self.fresh
            self.fresh = []
        return None

    def _step(self, ctor, kids: tuple[_Pair, ...]) -> Optional[Tree]:
        _tick(kind="antichain.step")
        a_rules = [
            r
            for r in self.a_by_ctor.get(ctor.name, [])
            if all(next(iter(l)) == k.a for l, k in zip(r.lookahead, kids))
        ]
        if not a_rules:
            return None
        b_rules = [
            r
            for r in self.b_by_ctor.get(ctor.name, [])
            if all(next(iter(l)) in k.bs for l, k in zip(r.lookahead, kids))
        ]
        preds = [r.guard for r in a_rules] + [r.guard for r in b_rules]
        for signs, conj in minterms(preds, self.solver):
            a_signs = signs[: len(a_rules)]
            if not any(a_signs):
                continue
            b_signs = signs[len(a_rules) :]
            new_bs = frozenset(r.state for r, s in zip(b_rules, b_signs) if s)
            witness: Optional[Tree] = None
            for rule, sign in zip(a_rules, a_signs):
                if not sign:
                    continue
                if witness is None:
                    witness = Tree(
                        ctor.name, self._attrs(conj), tuple(k.witness for k in kids)
                    )
                if rule.state == self.a_start and self.b_start not in new_bs:
                    return witness
                self._insert(_Pair(rule.state, new_bs, witness))
        return None


def included_in_antichain(
    left: STA,
    lstate: State,
    right: STA,
    rstate: State,
    solver: Solver,
) -> Optional[Tree]:
    """None if ``L^lstate ⊆ L^rstate``; otherwise a tree in the gap."""
    search = _AntichainSearch(left, lstate, right, rstate, solver)
    with obs_tracer.span("antichain.inclusion") as sp:
        with prov.step(
            "inclusion",
            f"antichain inclusion L[{lstate}] <= L[{rstate}]",
        ) as st:
            gap = search.run()
            pairs = sum(len(b) for b in search.antichain.values())
            st.set(holds=gap is None, antichain_pairs=pairs)
            if gap is not None:
                prov.note(
                    "witness",
                    f"gap tree found outside L[{rstate}]: {format_tree(gap)}",
                )
        sp.set(pairs=pairs, included=gap is None)
    return gap


def universal_antichain(sta: STA, state: State, solver: Solver) -> Optional[Tree]:
    """None if ``L^state`` contains every tree of the type; else a gap tree.

    Universality = inclusion of the universal language, with the trivial
    one-state automaton on the left.
    """
    from ..smt import builders as smt
    from .sta import STARule

    univ_state = ("univ",)
    univ = STA(
        sta.tree_type,
        tuple(
            STARule(
                univ_state,
                c.name,
                smt.TRUE,
                tuple(frozenset([univ_state]) for _ in range(c.rank)),
            )
            for c in sta.tree_type.constructors
        ),
    )
    return included_in_antichain(univ, univ_state, sta, state, solver)
