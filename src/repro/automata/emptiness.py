"""Emptiness and witness generation (paper Proposition 1).

Emptiness of an alternating STA: normalize lazily, drop unsatisfiable
guards (the solver already did), then run the classical bottom-up
fixpoint for tree-automata non-emptiness over the merged states.  A
witness tree is assembled on the way: each newly non-empty state records
one rule plus a model of its guard.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..smt.terms import Value
from ..trees.tree import Tree
from .normalize import NormalizedSTA, normalize
from .sta import STA, State

_OBS_CHECKS = obs_metrics.counter("emptiness.checks")
_OBS_PASSES = obs_metrics.counter("emptiness.fixpoint_passes")
_OBS_NONEMPTY = obs_metrics.histogram("emptiness.nonempty_states")


def _attrs_from_model(norm: NormalizedSTA, guard, solver: Solver) -> tuple[Value, ...]:
    model = solver.get_model(guard)
    assert model is not None
    fields = norm.sta.tree_type.fields
    defaults = norm.sta.tree_type.default_attrs()
    return tuple(
        model.get(f.name, d) for f, d in zip(fields, defaults)
    )


def nonempty_witnesses(norm: NormalizedSTA, solver: Solver) -> dict:
    """Map every non-empty merged state to one witness tree (fixpoint)."""
    witness: dict = {}
    changed = True
    while changed:
        if obs_config.ENABLED:
            _OBS_PASSES.inc()
        changed = False
        for r in norm.sta.rules:
            if r.state in witness:
                continue
            _tick(kind="emptiness.rule")
            child_states = [next(iter(l)) for l in r.lookahead]
            kids: list[Tree] = []
            ok = True
            for cs in child_states:
                if cs in witness:
                    kids.append(witness[cs])
                elif not cs:  # empty merged state: any tree; build one lazily
                    kids.append(_any_tree(norm.sta, solver))
                else:
                    ok = False
                    break
            if not ok:
                continue
            attrs = _attrs_from_model(norm, r.guard, solver)
            witness[r.state] = Tree(r.ctor, attrs, tuple(kids))
            changed = True
    # The empty merged state is always non-empty (accepts everything).
    for s in norm.states:
        if not s and s not in witness:
            witness[s] = _any_tree(norm.sta, solver)
    if obs_config.ENABLED:
        _OBS_NONEMPTY.observe(len(witness))
    return witness


def _any_tree(sta: STA, solver: Solver) -> Tree:
    """Some tree of the type (nullary constructor with default attributes)."""
    c = sta.tree_type.nullary()
    return Tree(c.name, sta.tree_type.default_attrs(), ())


def witness(
    sta: STA, states: Iterable[State], solver: Solver
) -> Optional[Tree]:
    """A tree in the intersection language of ``states``, or None if empty.

    This is the engine behind Fast's ``get-witness`` and the
    counterexamples printed by failed assertions (Section 2).
    """
    start = frozenset(states)
    with obs_tracer.span("emptiness.witness") as sp:
        if obs_config.ENABLED:
            _OBS_CHECKS.inc()
        norm = normalize(sta, [start], solver)
        table = nonempty_witnesses(norm, solver)
        result = table.get(start)
        sp.set(merged_rules=len(norm.sta.rules), empty=result is None)
    return result


def is_empty(sta: STA, states: Iterable[State], solver: Solver) -> bool:
    """Is the intersection language of ``states`` empty? (Proposition 1)"""
    return witness(sta, states, solver) is None
