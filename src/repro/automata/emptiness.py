"""Emptiness and witness generation (paper Proposition 1).

Emptiness of an alternating STA: normalize lazily, drop unsatisfiable
guards (the solver already did), then run the classical bottom-up
fixpoint for tree-automata non-emptiness over the merged states.  A
witness tree is assembled on the way: each newly non-empty state records
one rule plus a model of its guard.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..smt.terms import Value
from ..trees.tree import Tree, format_tree
from .normalize import NormalizedSTA, normalize
from .sta import STA, State

_OBS_CHECKS = obs_metrics.counter("emptiness.checks")
_OBS_PASSES = obs_metrics.counter("emptiness.fixpoint_passes")
_OBS_NONEMPTY = obs_metrics.histogram("emptiness.nonempty_states")


def _attrs_from_model(norm: NormalizedSTA, guard, solver: Solver) -> tuple[Value, ...]:
    model = solver.get_model(guard)
    assert model is not None
    fields = norm.sta.tree_type.fields
    defaults = norm.sta.tree_type.default_attrs()
    return tuple(
        model.get(f.name, d) for f, d in zip(fields, defaults)
    )


def nonempty_witnesses(
    norm: NormalizedSTA, solver: Solver, derivation: dict | None = None
) -> dict:
    """Map every non-empty merged state to one witness tree (fixpoint).

    When ``derivation`` is given, it is filled with
    ``state -> (rule, attrs)`` recording which rule (and which model of
    its guard) first made each state non-empty — the raw material for
    provenance explanations.
    """
    witness: dict = {}
    changed = True
    while changed:
        if obs_config.ENABLED:
            _OBS_PASSES.inc()
        changed = False
        for r in norm.sta.rules:
            if r.state in witness:
                continue
            _tick(kind="emptiness.rule")
            child_states = [next(iter(l)) for l in r.lookahead]
            kids: list[Tree] = []
            ok = True
            for cs in child_states:
                if cs in witness:
                    kids.append(witness[cs])
                elif not cs:  # empty merged state: any tree; build one lazily
                    kids.append(_any_tree(norm.sta, solver))
                else:
                    ok = False
                    break
            if not ok:
                continue
            attrs = _attrs_from_model(norm, r.guard, solver)
            witness[r.state] = Tree(r.ctor, attrs, tuple(kids))
            if derivation is not None:
                derivation[r.state] = (r, attrs)
            changed = True
    # The empty merged state is always non-empty (accepts everything).
    for s in norm.states:
        if not s and s not in witness:
            witness[s] = _any_tree(norm.sta, solver)
    if obs_config.ENABLED:
        _OBS_NONEMPTY.observe(len(witness))
    return witness


def _any_tree(sta: STA, solver: Solver) -> Tree:
    """Some tree of the type (nullary constructor with default attributes)."""
    c = sta.tree_type.nullary()
    return Tree(c.name, sta.tree_type.default_attrs(), ())


#: Cap on "rule fired" provenance notes per witness derivation.
_MAX_DERIVATION_RULES = 100


def _fmt_state(state) -> str:
    if isinstance(state, frozenset):
        return "{" + ",".join(sorted(str(s) for s in state)) + "}"
    return str(state)  # pragma: no cover - merged states are frozensets


def _record_derivation(start, derivation: dict, from_tree) -> None:
    """Walk the rules that built the witness, noting each one fired.

    ``from_tree`` maps the empty merged state (no constraints) case:
    states reached only through "accept anything" need no rule.
    """
    with prov.step(
        "witness", f"witness derivation from state {_fmt_state(start)}"
    ) as st:
        first = derivation.get(start)
        if first is not None:
            r, attrs = first
            prov.note(
                "query",
                f"decisive query: guard {r.guard!r} satisfiable",
                model=attrs,
            )
        seen: set = set()
        stack = [start]
        fired = 0
        while stack:
            s = stack.pop()
            if s in seen or not s:
                continue
            seen.add(s)
            entry = derivation.get(s)
            if entry is None:
                continue
            if fired >= _MAX_DERIVATION_RULES:
                prov.note(
                    "truncated",
                    f"rule walk capped at {_MAX_DERIVATION_RULES} rules",
                )
                break
            r, attrs = entry
            fired += 1
            kids = [next(iter(l)) for l in r.lookahead]
            prov.note(
                "rule",
                f"rule fired: {_fmt_state(s)} --{r.ctor}"
                f"[{r.guard!r}]--> ({', '.join(_fmt_state(k) for k in kids)})",
                model=attrs,
            )
            stack.extend(kids)
        st.set(rules_fired=fired, witness=format_tree(from_tree))


def witness(
    sta: STA, states: Iterable[State], solver: Solver
) -> Optional[Tree]:
    """A tree in the intersection language of ``states``, or None if empty.

    This is the engine behind Fast's ``get-witness`` and the
    counterexamples printed by failed assertions (Section 2).
    """
    start = frozenset(states)
    collect = prov.is_active()
    with obs_tracer.span("emptiness.witness") as sp:
        if obs_config.ENABLED:
            _OBS_CHECKS.inc()
        norm = normalize(sta, [start], solver)
        derivation: dict | None = {} if collect else None
        table = nonempty_witnesses(norm, solver, derivation)
        result = table.get(start)
        sp.set(merged_rules=len(norm.sta.rules), empty=result is None)
        if collect:
            if result is not None:
                _record_derivation(start, derivation or {}, result)
            else:
                prov.note(
                    "fixpoint",
                    f"emptiness fixpoint closed: {len(table)} of "
                    f"{len(norm.states)} merged states non-empty; start "
                    f"state {_fmt_state(start)} stayed empty over "
                    f"{len(norm.sta.rules)} merged rules",
                )
    return result


def is_empty(sta: STA, states: Iterable[State], solver: Solver) -> bool:
    """Is the intersection language of ``states`` empty? (Proposition 1)"""
    return witness(sta, states, solver) is None
