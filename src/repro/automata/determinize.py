"""Bottom-up symbolic determinization, completion, and complementation.

A normalized STA read bottom-up is a nondeterministic symbolic tree
automaton; the subset construction with **minterms** of the local guards
yields a complete deterministic bottom-up automaton (every tree reaches
exactly one state).  Complement then flips acceptance, and the result is
converted back to a top-down alternating STA.  This is the engine behind
``complement``, ``difference``, language equivalence, and ``type-check``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..guard.budget import tick as _tick
from ..smt.minterms import minterms
from ..smt.solver import Solver
from ..smt.terms import Term
from ..trees.tree import Tree
from ..trees.types import TreeType
from .normalize import NormalizedSTA, NormState, normalize
from .sta import STA, STARule, State


@dataclass
class BottomUpDTA:
    """A complete deterministic bottom-up symbolic tree automaton.

    States are indices; ``meaning[i]`` is the set of merged (frozenset)
    states of the source STA that a tree reaching state ``i`` inhabits.
    ``transitions[(ctor, child_state_tuple)]`` is a list of
    ``(guard, target)`` pairs whose guards partition the label space.
    """

    tree_type: TreeType
    meaning: list[frozenset[NormState]]
    transitions: dict[tuple[str, tuple[int, ...]], list[tuple[Term, int]]]

    def state_count(self) -> int:
        return len(self.meaning)

    def run(self, tree: Tree) -> int:
        """The unique state a tree evaluates to (iterative, post-order)."""
        result: dict[int, int] = {}  # id(node) -> state
        order: list[Tree] = []
        stack = [tree]
        while stack:
            t = stack.pop()
            order.append(t)
            stack.extend(t.children)
        for t in reversed(order):
            kids = tuple(result[id(c)] for c in t.children)
            env = self.tree_type.attr_env(t.attrs)
            arms = self.transitions[(t.ctor, kids)]
            for guard, target in arms:
                if bool(guard.evaluate(env)):
                    result[id(t)] = target
                    break
            else:  # pragma: no cover - completeness guarantees a match
                raise AssertionError("incomplete DTA")
        return result[id(tree)]

    def accepting_states(self, start: NormState) -> set[int]:
        """Indices whose meaning contains ``start`` (tree in L^start)."""
        return {i for i, m in enumerate(self.meaning) if start in m}


def determinize(norm: NormalizedSTA, solver: Solver) -> BottomUpDTA:
    """Subset construction over merged states with minterm label splitting."""
    tree_type = norm.sta.tree_type
    # Index rules bottom-up: by constructor.
    by_ctor: dict[str, list[STARule]] = {}
    for r in norm.sta.rules:
        by_ctor.setdefault(r.ctor, []).append(r)

    state_index: dict[frozenset[NormState], int] = {}
    meaning: list[frozenset[NormState]] = []
    transitions: dict[tuple[str, tuple[int, ...]], list[tuple[Term, int]]] = {}

    def intern(m: frozenset[NormState]) -> int:
        if m not in state_index:
            state_index[m] = len(meaning)
            meaning.append(m)
        return state_index[m]

    def process(key: tuple[str, tuple[int, ...]]) -> None:
        _tick(kind="determinize.key")
        ctor_name, kids = key
        applicable = [
            r
            for r in by_ctor.get(ctor_name, [])
            if all(
                next(iter(l)) in meaning[k] for l, k in zip(r.lookahead, kids)
            )
        ]
        arms: list[tuple[Term, int]] = []
        preds = [r.guard for r in applicable]
        for signs, conj in minterms(preds, solver):
            target = frozenset(r.state for r, s in zip(applicable, signs) if s)
            arms.append((conj, intern(target)))
        transitions[key] = arms

    # Fixpoint: processing a key may intern new states, which creates new
    # keys.  Nullary constructors seed the state space on the first pass.
    while True:
        pending = [
            (c.name, kids)
            for c in tree_type.constructors
            for kids in itertools.product(range(len(meaning)), repeat=c.rank)
            if (c.name, kids) not in transitions
        ]
        if not pending:
            break
        for key in pending:
            process(key)

    return BottomUpDTA(tree_type, meaning, transitions)


def to_top_down(
    dta: BottomUpDTA, finals: set[int], root_state: State
) -> tuple[STA, State]:
    """Convert a bottom-up DTA to a top-down STA.

    Each DTA state ``i`` becomes top-down state ``("D", i)``; a fresh
    ``root_state`` unions the rules of all final states.
    """
    rules: list[STARule] = []
    for (ctor, kids), arms in dta.transitions.items():
        lookahead = tuple(frozenset([("D", k)]) for k in kids)
        for guard, target in arms:
            rules.append(STARule(("D", target), ctor, guard, lookahead))
            if target in finals:
                rules.append(STARule(root_state, ctor, guard, lookahead))
    return STA(dta.tree_type, tuple(rules)), root_state


def complement(
    sta: STA, state: State, solver: Solver
) -> tuple[STA, State]:
    """An STA/state pair accepting exactly the trees **not** in L^state."""
    start = frozenset([state])
    norm = normalize(sta, [start], solver)
    dta = determinize(norm, solver)
    finals = {
        i for i in range(dta.state_count()) if start not in dta.meaning[i]
    }
    return to_top_down(dta, finals, ("comp", state))
