"""Minimization of STA languages (paper Section 3.5, "minimize").

Pipeline: lazy normalization -> bottom-up determinization with minterms
-> Myhill-Nerode partition refinement on the complete DTA -> quotient ->
top-down STA.  Two DTA states are distinguishable when one is final and
the other is not, or when swapping them inside some one-step context
leads (on a jointly satisfiable label region) to states already known
distinguishable; the fixpoint of this refinement is the coarsest
congruence, so the quotient is the minimal complete DTA for the
language.
"""

from __future__ import annotations

import itertools

from ..guard.budget import tick as _tick
from ..smt import builders as smt
from ..smt.solver import Solver
from .determinize import BottomUpDTA, determinize, to_top_down
from .normalize import normalize
from .sta import STA, State


def minimize_dta(
    dta: BottomUpDTA, finals: set[int], solver: Solver
) -> tuple[BottomUpDTA, set[int]]:
    """Quotient a complete DTA by Myhill-Nerode equivalence."""
    n = dta.state_count()
    distinct = [[False] * n for _ in range(n)]
    for p in range(n):
        for q in range(n):
            if (p in finals) != (q in finals):
                distinct[p][q] = True

    def arms_conflict(key1, key2) -> bool:
        for g1, t1 in dta.transitions[key1]:
            for g2, t2 in dta.transitions[key2]:
                if distinct[t1][t2] and solver.is_sat(smt.mk_and(g1, g2)):
                    return True
        return False

    changed = True
    while changed:
        changed = False
        for p, q in itertools.combinations(range(n), 2):
            if distinct[p][q]:
                continue
            _tick(kind="minimize.pair")
            if _one_step_distinguishable(dta, p, q, arms_conflict):
                distinct[p][q] = distinct[q][p] = True
                changed = True

    # Build the quotient.
    block: dict[int, int] = {}
    blocks: list[list[int]] = []
    for s in range(n):
        for i, b in enumerate(blocks):
            if not distinct[s][b[0]]:
                block[s] = i
                b.append(s)
                break
        else:
            block[s] = len(blocks)
            blocks.append([s])

    new_meaning = [dta.meaning[b[0]] for b in blocks]
    new_transitions = {}
    for (ctor, kids), arms in dta.transitions.items():
        new_kids = tuple(block[k] for k in kids)
        key = (ctor, new_kids)
        if key not in new_transitions:
            new_transitions[key] = [(g, block[t]) for g, t in arms]
    quotient = BottomUpDTA(dta.tree_type, new_meaning, new_transitions)
    return quotient, {block[f] for f in finals}


def _one_step_distinguishable(dta: BottomUpDTA, p: int, q: int, arms_conflict) -> bool:
    n = dta.state_count()
    for ctor in dta.tree_type.constructors:
        rank = ctor.rank
        if rank == 0:
            continue
        for pos in range(rank):
            for rest in itertools.product(range(n), repeat=rank - 1):
                kids_p = rest[:pos] + (p,) + rest[pos:]
                kids_q = rest[:pos] + (q,) + rest[pos:]
                if arms_conflict((ctor.name, kids_p), (ctor.name, kids_q)):
                    return True
    return False


def minimize(sta: STA, state: State, solver: Solver) -> tuple[STA, State]:
    """A language-equivalent STA built from the minimal complete DTA."""
    start = frozenset([state])
    norm = normalize(sta, [start], solver)
    dta = determinize(norm, solver)
    finals = dta.accepting_states(start)
    quotient, qfinals = minimize_dta(dta, finals, solver)
    return to_top_down(quotient, qfinals, ("min", state))
