"""Alternating symbolic tree automata (STAs) and their algorithms."""

from .antichain import included_in_antichain, universal_antichain

from .cleanup import reachable_lookahead_rules, universal_states
from .boolean_ops import complement, difference, intersect, union
from .determinize import BottomUpDTA, determinize, to_top_down
from .emptiness import is_empty, witness
from .equivalence import equivalent, included_in
from .language import Language
from .minimize import minimize, minimize_dta
from .normalize import NormalizedSTA, normalize
from .semantics import accepts, accepts_all
from .sta import STA, AutomatonError, STARule, State, disjoint_union, rule

__all__ = [
    "AutomatonError",
    "BottomUpDTA",
    "Language",
    "NormalizedSTA",
    "STA",
    "STARule",
    "State",
    "accepts",
    "accepts_all",
    "complement",
    "determinize",
    "difference",
    "disjoint_union",
    "equivalent",
    "included_in",
    "included_in_antichain",
    "intersect",
    "is_empty",
    "minimize",
    "minimize_dta",
    "normalize",
    "rule",
    "to_top_down",
    "union",
    "universal_antichain",
    "universal_states",
    "reachable_lookahead_rules",
    "witness",
]
