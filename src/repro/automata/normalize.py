"""Normalization of alternating STAs (paper Section 3.2).

A normalized STA has singleton lookahead sets: child constraints are a
single state, which is what the bottom-up algorithms (emptiness,
determinization) need.  The paper's ``Normalize`` builds merged rules
over set-states via the merge operator on rules; as footnote 7 advises,
we compute merged rules **lazily** from the requested start sets,
eliminate unsatisfiable guards eagerly, and only materialize reachable
merged states.

A merged state is a ``frozenset`` of original states; the language of
``frozenset({q1, q2})`` is ``L^{q1}`` intersect ``L^{q2}``, and the empty
frozenset accepts every tree of the type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..guard.budget import tick as _tick
from ..smt import builders as smt
from ..smt.solver import Solver
from .sta import STA, STARule, State


#: Normalized states are frozensets of original states.
NormState = frozenset


@dataclass(frozen=True)
class NormalizedSTA:
    """A normalized STA together with its reachable merged state space."""

    sta: STA  # rules have singleton (or empty-set) lookahead per child
    start: tuple[NormState, ...]

    @property
    def states(self) -> frozenset[NormState]:
        out: set[NormState] = set(self.start)
        for r in self.sta.rules:
            out.add(r.state)
            for l in r.lookahead:
                (s,) = l
                out.add(s)
        return frozenset(out)


def normalize(
    sta: STA, starts: Iterable[Iterable[State]], solver: Solver
) -> NormalizedSTA:
    """Lazily normalize ``sta`` from the given start sets.

    Every rule of the result has lookahead entries that are singleton
    sets ``{S}`` where ``S`` is a merged (frozenset) state.  Rules with
    unsatisfiable guards are dropped eagerly.
    """
    start_states: list[NormState] = [frozenset(s) for s in starts]
    max_rank = sta.tree_type.max_rank()
    done: set[NormState] = set()
    work: list[NormState] = list(start_states)
    out_rules: list[STARule] = []

    while work:
        q = work.pop()
        if q in done:
            continue
        _tick(kind="normalize.state")
        done.add(q)
        for ctor in sta.tree_type.constructors:
            for guard, children in _merged_rules(sta, q, ctor.name, ctor.rank, solver):
                out_rules.append(
                    STARule(
                        q,
                        ctor.name,
                        guard,
                        tuple(frozenset([c]) for c in children),
                    )
                )
                for c in children:
                    if c not in done:
                        work.append(c)

    return NormalizedSTA(STA(sta.tree_type, tuple(out_rules)), tuple(start_states))


def _merged_rules(
    sta: STA, states: NormState, ctor: str, rank: int, solver: Solver
):
    """The merge ``!`` of one rule per state in ``states`` (delta^f)."""
    if not states:
        # L^emptyset accepts everything: one unconstrained rule.
        yield smt.TRUE, tuple(frozenset() for _ in range(rank))
        return
    rule_choices = [sta.rules_from(s, ctor) for s in sorted(states, key=repr)]
    if any(not rc for rc in rule_choices):
        return  # some state has no rule for this symbol: conjunction fails

    # DFS over the rule product with incremental conjunction: syntactic
    # contradictions (e.g. the complementary guards of a deterministic
    # split) prune whole subtrees before any solver call.
    empty_children = tuple(frozenset() for _ in range(rank))

    def rec(idx: int, guard, children):
        if idx == len(rule_choices):
            if solver.is_sat(guard):
                yield guard, children
            return
        for r in rule_choices[idx]:
            g2 = smt.mk_and(guard, r.guard)
            if g2 == smt.FALSE:
                continue
            merged = tuple(c | l for c, l in zip(children, r.lookahead))
            yield from rec(idx + 1, g2, merged)

    yield from rec(0, smt.TRUE, empty_children)
