"""Cleanup passes for automata: universality detection and pruning.

Composition accumulates lookahead constraints that are often *trivially
universal* — e.g. "the child lies in the domain of a total transducer".
Left in place they make every subsequent operation (and every execution)
pay for constraints that exclude nothing, so composed chains slow down
linearly with their history (exactly what Figure 7 requires not to
happen).

``universal_states`` computes a greatest fixpoint: start from all
states, and repeatedly discard states that, for some constructor, do not
cover the full label space with rules whose child constraints are
already-known-universal states.  The result is a sound under-
approximation of universality (a state in the result accepts every tree
of its type), which is all pruning needs.
"""

from __future__ import annotations

from typing import Iterable

from ..guard.budget import tick as _tick
from ..smt import builders as smt
from ..smt.solver import Solver
from .sta import STA, STARule, State


def universal_states(sta: STA, solver: Solver) -> frozenset[State]:
    """States provably accepting every tree of the type (sound, may miss)."""
    candidates: set[State] = {r.state for r in sta.rules}
    changed = True
    while changed:
        changed = False
        for state in list(candidates):
            _tick(kind="cleanup.state")
            if not _locally_universal(sta, state, candidates, solver):
                candidates.discard(state)
                changed = True
    return frozenset(candidates)


def _locally_universal(
    sta: STA, state: State, assumed: set[State], solver: Solver
) -> bool:
    for ctor in sta.tree_type.constructors:
        guards = [
            r.guard
            for r in sta.rules_from(state, ctor.name)
            if all(l <= assumed for l in r.lookahead)
        ]
        if not guards:
            return False
        disjunction = smt.mk_or(*guards)
        if disjunction == smt.TRUE:
            continue
        if not solver.is_valid(disjunction):
            return False
    return True


def prune_lookahead_sets(
    rules_lookahead: Iterable[tuple[frozenset[State], ...]],
    universal: frozenset[State],
) -> list[tuple[frozenset[State], ...]]:
    """Drop universal states from lookahead tuples."""
    return [
        tuple(l - universal for l in lookahead) for lookahead in rules_lookahead
    ]


def reachable_lookahead_rules(
    sta: STA, roots: Iterable[State]
) -> tuple[STARule, ...]:
    """Rules of states reachable (through lookahead sets) from ``roots``."""
    keep: set[State] = set()
    work = list(roots)
    while work:
        s = work.pop()
        if s in keep:
            continue
        keep.add(s)
        for r in sta.rules_from(s):
            for l in r.lookahead:
                work.extend(l - keep)
    return tuple(r for r in sta.rules if r.state in keep)
