"""Denotational semantics of STAs (paper Definition 2): membership.

Membership is computed with one bottom-up pass that annotates every
subtree with the set of **all** states accepting it; alternation is then
exact because ``L^{q}`` for a set ``q`` is the intersection of the
member languages by definition.  The pass is iterative — the evaluation
section runs automata over list-shaped trees thousands of nodes deep,
far beyond Python's recursion limit.

Note membership of a *concrete* tree never calls the solver: guards are
evaluated directly on the attribute values.
"""

from __future__ import annotations

from typing import Iterable

from ..smt.solver import Solver
from ..trees.tree import Tree, dag_post_order
from .sta import STA, State


def acceptance_table(sta: STA, tree: Tree) -> dict[int, frozenset[State]]:
    """Map ``id(node)`` to the set of states accepting that subtree.

    One bottom-up pass over distinct subtree objects (linear even for
    DAG-shaped trees with shared subtrees).
    """
    by_ctor: dict[str, list] = {}
    for r in sta.rules:
        by_ctor.setdefault(r.ctor, []).append(r)
    table: dict[int, frozenset[State]] = {}
    for t in dag_post_order(tree):
        env = sta.tree_type.attr_env(t.attrs)
        accepted: set[State] = set()
        for r in by_ctor.get(t.ctor, []):
            if r.state in accepted:
                continue
            if not bool(r.guard.evaluate(env)):
                continue
            if all(
                l <= table[id(c)] for l, c in zip(r.lookahead, t.children)
            ):
                accepted.add(r.state)
        table[id(t)] = frozenset(accepted)
    return table


def accepts(sta: STA, state: State, tree: Tree, solver: Solver | None = None) -> bool:
    """Is ``tree`` in ``L^state``?  (The solver is unused: membership of a
    concrete tree only evaluates guards; the parameter is kept for
    interface symmetry with the symbolic operations.)"""
    return state in acceptance_table(sta, tree)[id(tree)]


def accepts_all(
    sta: STA, states: Iterable[State], tree: Tree, solver: Solver | None = None
) -> bool:
    """Is ``tree`` in the intersection of the states' languages?

    Mirrors the paper's ``L^q`` for a set ``q``; the empty set accepts
    every tree.
    """
    return frozenset(states) <= acceptance_table(sta, tree)[id(tree)]
