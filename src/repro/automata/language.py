"""The user-facing ``Language`` facade: an STA paired with a state.

This is the value a Fast ``lang`` definition evaluates to, and the main
entry point for library users:

    >>> from repro.automata import Language
    >>> nodes = Language.build(HTML_E, "nodeTree", rules)
    >>> nodes.accepts(tree)
    >>> nodes.intersect(other).is_empty()

Every operation returns a new ``Language``; the solver rides along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..smt.solver import DEFAULT_SOLVER, Solver
from ..trees.tree import Tree
from ..trees.types import TreeType
from . import boolean_ops, emptiness, equivalence, semantics
from .minimize import minimize as _minimize
from .sta import STA, STARule, State


@dataclass(frozen=True)
class Language:
    """A regular tree language: the language of ``sta`` at ``state``."""

    sta: STA
    state: State
    solver: Solver = field(default_factory=lambda: DEFAULT_SOLVER, compare=False)

    # -- construction -----------------------------------------------------

    @staticmethod
    def build(
        tree_type: TreeType,
        state: State,
        rules: Iterable[STARule],
        solver: Solver | None = None,
    ) -> "Language":
        return Language(
            STA(tree_type, tuple(rules)), state, solver or DEFAULT_SOLVER
        )

    @staticmethod
    def universal(tree_type: TreeType, solver: Solver | None = None) -> "Language":
        """All trees of the type (a fresh state with one rule per symbol)."""
        from ..smt import builders as smt

        state = ("univ",)
        rules = [
            STARule(
                state,
                c.name,
                smt.TRUE,
                tuple(frozenset([state]) for _ in range(c.rank)),
            )
            for c in tree_type.constructors
        ]
        return Language.build(tree_type, state, rules, solver)

    @staticmethod
    def empty(tree_type: TreeType, solver: Solver | None = None) -> "Language":
        """The empty language (a state with no rules)."""
        return Language.build(tree_type, ("void",), [], solver)

    @property
    def tree_type(self) -> TreeType:
        return self.sta.tree_type

    # -- queries ------------------------------------------------------------

    def accepts(self, tree: Tree) -> bool:
        """Membership (Definition 2)."""
        return semantics.accepts(self.sta, self.state, tree, self.solver)

    def is_empty(self) -> bool:
        return emptiness.is_empty(self.sta, [self.state], self.solver)

    def witness(self) -> Optional[Tree]:
        """Some member tree, or None (Fast's ``get-witness``)."""
        return emptiness.witness(self.sta, [self.state], self.solver)

    def size(self) -> tuple[int, int]:
        """(states, rules) of the underlying automaton."""
        return self.sta.size()

    # -- governed (three-valued) queries ------------------------------------

    def is_empty_verdict(self, budget=None):
        """:meth:`is_empty` under a resource budget.

        Returns a :class:`repro.guard.Verdict`: PROVED when the language
        is empty, REFUTED with a member-tree witness, UNKNOWN when the
        budget (deadline / solver queries / steps) ran out first.
        """
        from ..guard import governed

        return governed(
            self.witness,
            budget,
            proved="language is empty",
            refuted="member tree found",
        )

    def equals_verdict(self, other: "Language", budget=None):
        """:meth:`equals` under a resource budget (REFUTED carries a
        separating tree)."""
        from ..guard import governed

        return governed(
            lambda: self.separating_tree(other),
            budget,
            proved="languages are equal",
            refuted="separating tree found",
        )

    def included_in_verdict(self, other: "Language", budget=None):
        """:meth:`included_in` under a resource budget (REFUTED carries
        a tree in ``self`` but not ``other``)."""
        from ..guard import governed

        return governed(
            lambda: self.included_in(other),
            budget,
            proved="inclusion holds",
            refuted="gap witness found",
        )

    # -- boolean algebra -----------------------------------------------------

    def intersect(self, other: "Language") -> "Language":
        sta, state = boolean_ops.intersect(self.sta, self.state, other.sta, other.state)
        return Language(sta, state, self.solver)

    def union(self, other: "Language") -> "Language":
        sta, state = boolean_ops.union(self.sta, self.state, other.sta, other.state)
        return Language(sta, state, self.solver)

    def complement(self) -> "Language":
        sta, state = boolean_ops.complement(self.sta, self.state, self.solver)
        return Language(sta, state, self.solver)

    def difference(self, other: "Language") -> "Language":
        sta, state = boolean_ops.difference(
            self.sta, self.state, other.sta, other.state, self.solver
        )
        return Language(sta, state, self.solver)

    def minimize(self) -> "Language":
        sta, state = _minimize(self.sta, self.state, self.solver)
        return Language(sta, state, self.solver)

    # -- comparisons -----------------------------------------------------------

    def included_in(self, other: "Language") -> Optional[Tree]:
        """None when subset; otherwise a tree witnessing the gap."""
        return equivalence.included_in(
            self.sta, self.state, other.sta, other.state, self.solver
        )

    def equals(self, other: "Language") -> bool:
        return (
            equivalence.equivalent(
                self.sta, self.state, other.sta, other.state, self.solver
            )
            is None
        )

    def separating_tree(self, other: "Language") -> Optional[Tree]:
        return equivalence.equivalent(
            self.sta, self.state, other.sta, other.state, self.solver
        )
