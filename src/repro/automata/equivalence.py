"""Language equivalence and inclusion for STAs.

``L1 == L2`` reduces to emptiness of the two symmetric differences
(complement + intersect + Proposition 1 emptiness), exactly the
decidability argument of Section 1: STAs are closed under Boolean
operations modulo a decidable label theory, so equivalence is decidable.
A counterexample tree is returned when the languages differ.
"""

from __future__ import annotations

from typing import Optional

from ..obs import provenance as prov
from ..smt.solver import Solver
from ..trees.tree import Tree
from .boolean_ops import difference
from .emptiness import witness
from .sta import STA, State


def included_in(
    left: STA, lstate: State, right: STA, rstate: State, solver: Solver
) -> Optional[Tree]:
    """None if ``L^lstate`` is a subset of ``L^rstate``; else a tree in the gap."""
    with prov.step(
        "inclusion",
        f"inclusion L[{lstate}] <= L[{rstate}] via difference + emptiness",
    ) as st:
        diff_sta, diff_state = difference(left, lstate, right, rstate, solver)
        gap = witness(diff_sta, [diff_state], solver)
        st.set(holds=gap is None)
    return gap


def equivalent(
    left: STA, lstate: State, right: STA, rstate: State, solver: Solver
) -> Optional[Tree]:
    """None if the two languages are equal; else a separating tree."""
    with prov.step(
        "equivalence", f"equivalence L[{lstate}] == L[{rstate}]"
    ) as st:
        gap = included_in(left, lstate, right, rstate, solver)
        if gap is not None:
            st.set(separating_direction="left minus right")
            return gap
        gap = included_in(right, rstate, left, lstate, solver)
        if gap is not None:
            st.set(separating_direction="right minus left")
    return gap
