"""Boolean operations on STA languages (paper Section 3.5).

Alternation makes intersection and union cheap: a fresh root state either
merges one rule per operand (conjoining guards, uniting lookahead — the
paper's ``!`` operator applied at the root) or simply copies both rule
sets.  Complement goes through bottom-up determinization
(:mod:`repro.automata.determinize`); difference composes the two.
"""

from __future__ import annotations

import itertools

from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..smt import builders as smt
from ..smt.solver import Solver
from .determinize import complement as _complement
from .sta import STA, STARule, State, disjoint_union

_OBS_PRODUCT = obs_metrics.counter("boolean.product_rules")
_OBS_PRUNED = obs_metrics.counter("boolean.product_rules_pruned")
_OBS_UNION = obs_metrics.counter("boolean.union_rules")


def intersect(
    left: STA, lstate: State, right: STA, rstate: State
) -> tuple[STA, State]:
    """A state accepting ``L^lstate`` intersect ``L^rstate``.

    Uses the rule-merge operator at the root; below the root the
    alternating lookahead keeps both constraint sets alive.
    """
    combined, lmap, rmap = disjoint_union(left, right)
    root: State = ("and", lmap(lstate), rmap(rstate))
    rules: list[STARule] = []
    for ctor in combined.tree_type.constructors:
        lrules = combined.rules_from(lmap(lstate), ctor.name)
        rrules = combined.rules_from(rmap(rstate), ctor.name)
        for a, b in itertools.product(lrules, rrules):
            _tick(kind="boolean.product_rule")
            guard = smt.mk_and(a.guard, b.guard)
            if guard == smt.FALSE:
                if obs_config.ENABLED:
                    _OBS_PRUNED.inc()
                continue
            if obs_config.ENABLED:
                _OBS_PRODUCT.inc()
            lookahead = tuple(
                la | lb for la, lb in zip(a.lookahead, b.lookahead)
            )
            rules.append(STARule(root, ctor.name, guard, lookahead))
    return combined.with_rules(rules), root


def union(
    left: STA, lstate: State, right: STA, rstate: State
) -> tuple[STA, State]:
    """A state accepting ``L^lstate`` union ``L^rstate``."""
    combined, lmap, rmap = disjoint_union(left, right)
    root: State = ("or", lmap(lstate), rmap(rstate))
    rules = [
        STARule(root, r.ctor, r.guard, r.lookahead)
        for r in combined.rules_from(lmap(lstate))
    ] + [
        STARule(root, r.ctor, r.guard, r.lookahead)
        for r in combined.rules_from(rmap(rstate))
    ]
    if obs_config.ENABLED:
        _OBS_UNION.inc(len(rules))
    return combined.with_rules(rules), root


def complement(sta: STA, state: State, solver: Solver) -> tuple[STA, State]:
    """A state accepting the complement of ``L^state`` (within the type)."""
    return _complement(sta, state, solver)


def difference(
    left: STA, lstate: State, right: STA, rstate: State, solver: Solver
) -> tuple[STA, State]:
    """A state accepting ``L^lstate`` minus ``L^rstate``."""
    comp_sta, comp_state = complement(right, rstate, solver)
    return intersect(left, lstate, comp_sta, comp_state)
