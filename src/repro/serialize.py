"""JSON serialization for the core objects.

A library users adopt needs persistence: automata and transducers built
by expensive compositions should be storable and reloadable.  The format
is a plain-JSON encoding of terms, tree types, STAs, and STTRs; states
(arbitrary hashable tuples/strings produced by the algebra) are encoded
structurally.

Round-trip guarantee (tested): ``load(dump(x))`` is structurally equal
to ``x`` for every supported object.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from .automata.sta import STA, STARule
from .smt import builders as smt
from .smt.sorts import BASIC_SORTS, Sort
from .smt.terms import (
    Add,
    And,
    Const,
    Eq,
    Le,
    Lt,
    Mod,
    Mul,
    Neg,
    Not,
    Or,
    Term,
    Var,
    interned,
)
from .transducers.output_terms import OutApply, OutNode, OutputTerm
from .transducers.sttr import STTR, STTRRule
from .trees.tree import Tree
from .trees.types import TreeType, make_tree_type


class SerializationError(Exception):
    """Unknown tags or malformed payloads."""


# ---------------------------------------------------------------------------
# Values and states
# ---------------------------------------------------------------------------


def _value_to_json(v) -> Any:
    if isinstance(v, Fraction):
        return {"fraction": [v.numerator, v.denominator]}
    return v


def _value_from_json(v) -> Any:
    if isinstance(v, dict) and "fraction" in v:
        n, d = v["fraction"]
        return Fraction(n, d)
    return v


def _state_to_json(state) -> Any:
    if isinstance(state, tuple):
        return {"tuple": [_state_to_json(s) for s in state]}
    if isinstance(state, frozenset):
        return {"set": sorted((_state_to_json(s) for s in state), key=json.dumps)}
    if isinstance(state, (str, int, bool)) or state is None:
        return {"atom": state}
    raise SerializationError(f"unsupported state component: {state!r}")


def _state_from_json(data) -> Any:
    if "tuple" in data:
        return tuple(_state_from_json(s) for s in data["tuple"])
    if "set" in data:
        return frozenset(_state_from_json(s) for s in data["set"])
    if "atom" in data:
        return data["atom"]
    raise SerializationError(f"bad state payload: {data!r}")


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

_BINOPS = {Lt: "lt", Le: "le", Eq: "eq"}
_NARY = {Add: "add", Mul: "mul", And: "and", Or: "or"}


def term_to_json(term: Term) -> Any:
    if isinstance(term, Var):
        return {"var": term.name, "sort": term.var_sort.name}
    if isinstance(term, Const):
        return {"const": _value_to_json(term.value), "sort": term.const_sort.name}
    if isinstance(term, Neg):
        return {"neg": term_to_json(term.arg)}
    if isinstance(term, Not):
        return {"not": term_to_json(term.arg)}
    if isinstance(term, Mod):
        return {"mod": term_to_json(term.arg), "by": term.modulus}
    for cls, tag in _BINOPS.items():
        if isinstance(term, cls):
            return {tag: [term_to_json(term.left), term_to_json(term.right)]}
    for cls, tag in _NARY.items():
        if isinstance(term, cls):
            return {tag: [term_to_json(a) for a in term.args]}
    raise SerializationError(f"unsupported term: {term!r}")


def term_from_json(data: Any) -> Term:
    if "var" in data:
        return smt.mk_var(data["var"], _sort(data["sort"]))
    if "const" in data:
        value = _value_from_json(data["const"])
        sort = _sort(data["sort"])
        if sort.name == "Real" and isinstance(value, int):
            value = Fraction(value)
        return smt.mk_const(value, sort)
    if "neg" in data:
        return smt.mk_neg(term_from_json(data["neg"]))
    if "not" in data:
        return smt.mk_not(term_from_json(data["not"]))
    if "mod" in data:
        return smt.mk_mod(term_from_json(data["mod"]), data["by"])
    if "lt" in data:
        left, right = data["lt"]
        return smt.mk_lt(term_from_json(left), term_from_json(right))
    if "le" in data:
        left, right = data["le"]
        return smt.mk_le(term_from_json(left), term_from_json(right))
    if "eq" in data:
        left, right = data["eq"]
        # A raw (interned) Eq node, not mk_eq: Bool equalities must
        # round-trip structurally instead of being desugared.
        return interned(Eq, term_from_json(left), term_from_json(right))
    if "add" in data:
        return smt.mk_add(*(term_from_json(a) for a in data["add"]))
    if "mul" in data:
        return smt.mk_mul(*(term_from_json(a) for a in data["mul"]))
    if "and" in data:
        return smt.mk_and(*(term_from_json(a) for a in data["and"]))
    if "or" in data:
        return smt.mk_or(*(term_from_json(a) for a in data["or"]))
    raise SerializationError(f"bad term payload: {data!r}")


def _sort(name: str) -> Sort:
    if name not in BASIC_SORTS:
        raise SerializationError(f"unknown sort {name}")
    return BASIC_SORTS[name]


# ---------------------------------------------------------------------------
# Tree types and trees
# ---------------------------------------------------------------------------


def tree_type_to_json(tt: TreeType) -> Any:
    return {
        "name": tt.name,
        "fields": [[f.name, f.sort.name] for f in tt.fields],
        "constructors": [[c.name, c.rank] for c in tt.constructors],
    }


def tree_type_from_json(data: Any) -> TreeType:
    return make_tree_type(
        data["name"],
        [(n, _sort(s)) for n, s in data["fields"]],
        dict(data["constructors"]),
    )


def tree_to_json(tree: Tree) -> Any:
    return {
        "ctor": tree.ctor,
        "attrs": [_value_to_json(a) for a in tree.attrs],
        "children": [tree_to_json(c) for c in tree.children],
    }


def tree_from_json(data: Any) -> Tree:
    return Tree(
        data["ctor"],
        tuple(_value_from_json(a) for a in data["attrs"]),
        tuple(tree_from_json(c) for c in data["children"]),
    )


# ---------------------------------------------------------------------------
# Automata
# ---------------------------------------------------------------------------


def sta_to_json(sta: STA) -> Any:
    return {
        "tree_type": tree_type_to_json(sta.tree_type),
        "rules": [
            {
                "state": _state_to_json(r.state),
                "ctor": r.ctor,
                "guard": term_to_json(r.guard),
                "lookahead": [
                    [_state_to_json(s) for s in l] for l in r.lookahead
                ],
            }
            for r in sta.rules
        ],
    }


def sta_from_json(data: Any) -> STA:
    tt = tree_type_from_json(data["tree_type"])
    rules = tuple(
        STARule(
            _state_from_json(r["state"]),
            r["ctor"],
            term_from_json(r["guard"]),
            tuple(
                frozenset(_state_from_json(s) for s in l) for l in r["lookahead"]
            ),
        )
        for r in data["rules"]
    )
    return STA(tt, rules)


# ---------------------------------------------------------------------------
# Transducers
# ---------------------------------------------------------------------------


def _output_to_json(term: OutputTerm) -> Any:
    if isinstance(term, OutApply):
        return {"apply": _state_to_json(term.state), "child": term.index}
    if isinstance(term, OutNode):
        return {
            "node": term.ctor,
            "attrs": [term_to_json(e) for e in term.attr_exprs],
            "children": [_output_to_json(c) for c in term.children],
        }
    raise SerializationError(f"unsupported output term: {term!r}")


def _output_from_json(data: Any) -> OutputTerm:
    if "apply" in data:
        return OutApply(_state_from_json(data["apply"]), data["child"])
    if "node" in data:
        return OutNode(
            data["node"],
            tuple(term_from_json(e) for e in data["attrs"]),
            tuple(_output_from_json(c) for c in data["children"]),
        )
    raise SerializationError(f"bad output payload: {data!r}")


def sttr_to_json(sttr: STTR) -> Any:
    return {
        "name": sttr.name,
        "input_type": tree_type_to_json(sttr.input_type),
        "output_type": tree_type_to_json(sttr.output_type),
        "initial": _state_to_json(sttr.initial),
        "rules": [
            {
                "state": _state_to_json(r.state),
                "ctor": r.ctor,
                "guard": term_to_json(r.guard),
                "lookahead": [
                    [_state_to_json(s) for s in l] for l in r.lookahead
                ],
                "output": _output_to_json(r.output),
            }
            for r in sttr.rules
        ],
        "lookahead_sta": sta_to_json(sttr.lookahead_sta),
    }


def sttr_from_json(data: Any) -> STTR:
    rules = tuple(
        STTRRule(
            _state_from_json(r["state"]),
            r["ctor"],
            term_from_json(r["guard"]),
            tuple(
                frozenset(_state_from_json(s) for s in l) for l in r["lookahead"]
            ),
            _output_from_json(r["output"]),
        )
        for r in data["rules"]
    )
    return STTR(
        data["name"],
        tree_type_from_json(data["input_type"]),
        tree_type_from_json(data["output_type"]),
        _state_from_json(data["initial"]),
        rules,
        sta_from_json(data["lookahead_sta"]),
    )


# ---------------------------------------------------------------------------
# Top-level convenience
# ---------------------------------------------------------------------------

_DUMPERS = {
    Tree: ("tree", tree_to_json),
    STA: ("sta", sta_to_json),
    STTR: ("sttr", sttr_to_json),
    TreeType: ("tree_type", tree_type_to_json),
}

_LOADERS = {
    "tree": tree_from_json,
    "sta": sta_from_json,
    "sttr": sttr_from_json,
    "tree_type": tree_type_from_json,
    "term": term_from_json,
}


def register(kind: str, cls: type, dump, load) -> None:
    """Plug an extra object kind into :func:`dumps` / :func:`loads`.

    Extension point for layers above the core (e.g. the compiled
    program artifacts of :mod:`repro.exec.artifact`): ``dump(obj)``
    must return a JSON-able payload, ``load(payload)`` its inverse.
    Re-registering a kind with the same class is idempotent; rebinding
    a kind to a different class is a programming error.
    """
    existing = _LOADERS.get(kind)
    if existing is not None and _DUMPERS.get(cls, (None,))[0] != kind:
        raise SerializationError(f"payload kind {kind!r} already registered")
    _DUMPERS[cls] = (kind, dump)
    _LOADERS[kind] = load


def dumps(obj) -> str:
    """Serialize a supported object (core or registered) to JSON."""
    for cls, (tag, fn) in _DUMPERS.items():
        if isinstance(obj, cls):
            return json.dumps({"kind": tag, "data": fn(obj)})
    if isinstance(obj, Term):
        return json.dumps({"kind": "term", "data": term_to_json(obj)})
    raise SerializationError(f"cannot serialize {type(obj).__name__}")


def loads(text: str):
    """Inverse of :func:`dumps`."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind not in _LOADERS:
        raise SerializationError(f"unknown payload kind {kind!r}")
    return _LOADERS[kind](payload["data"])
