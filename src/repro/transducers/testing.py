"""Bounded equivalence testing for STTRs.

Deciding equivalence of STTRs is open even for single-valued ones
(paper Sections 3.3 and 7: "We are currently investigating the problem
of checking equivalence of single-valued STTRs").  This module provides
the pragmatic tool the paper's implementation would want meanwhile: a
*bounded-exhaustive* comparator that is a complete refuter up to a depth
bound.

Attribute values are sampled by **guard-boundary analysis**: every
constant appearing in either transducer's guards (and lookahead guards)
contributes itself and its neighbors, so equivalence bugs hiding behind
off-by-one guards are found at the bound where they occur.  For string
attributes the sample is the mentioned constants plus a fresh string;
for reals the constants plus midpoints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Optional

from ..smt.sorts import BOOL, INT, REAL, STRING
from ..smt.terms import Const, Term
from ..trees.tree import Tree
from ..trees.types import TreeType
from .run import run
from .sttr import STTR


@dataclass(frozen=True)
class Inequivalence:
    """A refutation: an input where the output sets differ."""

    input: Tree
    first_outputs: frozenset[Tree]
    second_outputs: frozenset[Tree]

    def render(self) -> str:
        return (
            f"input: {self.input}\n"
            f"  first : {sorted(map(repr, self.first_outputs))}\n"
            f"  second: {sorted(map(repr, self.second_outputs))}"
        )


def guard_constants(sttr: STTR) -> dict:
    """All constants in guards/outputs, per sort (boundary analysis pool)."""
    pools: dict = {INT: set(), REAL: set(), STRING: set(), BOOL: set()}
    terms: list[Term] = []
    for r in sttr.rules:
        terms.append(r.guard)
        for t in r.output.iter_terms():
            from .output_terms import OutNode

            if isinstance(t, OutNode):
                terms.extend(t.attr_exprs)
    for r in sttr.lookahead_sta.rules:
        terms.append(r.guard)
    for term in terms:
        for sub in term.iter_subterms():
            if isinstance(sub, Const) and sub.const_sort in pools:
                pools[sub.const_sort].add(sub.value)
            from ..smt.terms import Mod

            if isinstance(sub, Mod):
                pools[INT].add(sub.modulus)
    return pools


def attribute_samples(first: STTR, second: STTR) -> dict:
    """Representative attribute values per sort for both transducers."""
    pools = guard_constants(first)
    for sort, values in guard_constants(second).items():
        pools[sort] |= values

    ints = {0, 1, -1}
    for c in pools[INT]:
        ints |= {c - 1, c, c + 1}
    reals = {Fraction(0)}
    for c in pools[REAL]:
        reals |= {Fraction(c) - 1, Fraction(c), Fraction(c) + Fraction(1, 2)}
    strings = {"", "_fresh"} | {s for s in pools[STRING]}
    bools = {True, False}
    return {INT: sorted(ints), REAL: sorted(reals), STRING: sorted(strings), BOOL: [False, True]}


def enumerate_trees(
    tree_type: TreeType,
    max_depth: int,
    samples: dict,
    pool_cap: int | None = None,
) -> Iterator[Tree]:
    """All trees of the type up to the depth bound over the sample values.

    ``pool_cap`` bounds how many trees of each level feed the next level's
    child tuples: with rank-k constructors the product grows as
    ``pool^k`` per level, so wide types need a cap to stay tractable
    (completeness then holds only relative to the kept pool).
    """
    attr_tuples = list(
        itertools.product(*(samples[f.sort] for f in tree_type.fields))
    )
    by_depth: list[list[Tree]] = []
    for depth in range(max_depth):
        level: list[Tree] = []
        shallower = [t for lvl in by_depth for t in lvl]
        prev_set = set(by_depth[depth - 1]) if depth > 0 else set()
        for ctor in tree_type.constructors:
            if ctor.rank == 0:
                if depth == 0:
                    for attrs in attr_tuples:
                        level.append(Tree(ctor.name, attrs, ()))
                continue
            if depth == 0:
                continue
            for kids in itertools.product(shallower, repeat=ctor.rank):
                # at least one child from the previous level => new depth
                if not any(k in prev_set for k in kids):
                    continue
                for attrs in attr_tuples:
                    level.append(Tree(ctor.name, attrs, kids))
        yield from level
        if pool_cap is not None and len(level) > pool_cap:
            level = level[:pool_cap]
        by_depth.append(level)


def find_inequivalence(
    first: STTR,
    second: STTR,
    max_depth: int = 3,
    max_trees: int = 20_000,
    input_filter=None,
) -> Optional[Inequivalence]:
    """Search for an input where the two transductions differ.

    Complete refutation up to the depth bound over the guard-boundary
    sample values; ``None`` means "no difference found within the
    bound", not a proof of equivalence (which is an open problem).
    ``input_filter`` restricts the comparison to inputs satisfying the
    predicate — e.g. a well-formedness :class:`Language`'s ``accepts``
    when the transducers only promise agreement on valid encodings.
    """
    if first.input_type != second.input_type:
        raise ValueError("transducers read different tree types")
    samples = attribute_samples(first, second)
    checked = 0
    for tree in enumerate_trees(first.input_type, max_depth, samples, pool_cap=50):
        if checked >= max_trees:
            break
        if input_filter is not None and not input_filter(tree):
            continue
        checked += 1
        out1 = frozenset(run(first, tree))
        out2 = frozenset(run(second, tree))
        if out1 != out2:
            return Inequivalence(tree, out1, out2)
    return None


def equivalent_up_to(
    first: STTR,
    second: STTR,
    max_depth: int = 3,
    max_trees: int = 20_000,
    input_filter=None,
) -> bool:
    """True when no difference was found within the bound."""
    return (
        find_inequivalence(first, second, max_depth, max_trees, input_filter)
        is None
    )
