"""Composition of STTRs — the paper's Section 4 algorithm.

``compose(S, T)`` builds an STTR computing ``T_T . T_S`` (first ``S``,
then ``T``).  Correctness (paper Theorem 4): the construction is exact
when ``S`` is single-valued or ``T`` is linear, and an over-approximation
otherwise (Example 9 exhibits the gap; the tests reproduce it).

Structure, mirroring the paper:

* ``Compose(p, q, f)``: for every ``S``-rule from ``p`` on ``f``, run
  ``Reduce`` on ``q~(u)`` where ``u`` is the rule's output; each
  reduction yields a composed rule ``p.q --f, guard, lookahead--> t``.
* ``Reduce``: rewrites extended terms.  ``q~(p~(yi))`` becomes the pair
  state ``p.q`` applied to ``yi`` (rule outputs stay pure).  For
  ``q~(g[e(x)](u1..un))`` it picks a ``T``-rule for ``(q, g)``, conjoins
  its guard instantiated at the output labels ``e(x)``, runs ``Look``
  over **all** children against the rule's domain-automaton lookahead
  (``lookahead[i] ∪ St(i, t_out)`` — this is what keeps constraints on
  *deleted* subtrees, the whole point of regular lookahead, Section 3.4),
  then substitutes and keeps reducing.
* ``Look`` is shared with the pre-image construction
  (:class:`~repro.transducers.preimage.PreimageBuilder`) instantiated at
  ``M = d(T)``: the composed transducer's lookahead automaton consists of
  ``S``'s own lookahead plus pre-image states ``("pre", p', R)`` with
  ``R`` a set of ``d(T)`` states.
"""

from __future__ import annotations

from typing import Iterator

from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from ..obs import tracer as obs_tracer
from ..smt import builders as smt
from ..smt.solver import Solver
from ..smt.terms import Term
from .domain import domain_sta
from .output_terms import OutApply, OutNode, OutputTerm, TApp, states_at
from .preimage import LookTuple, PreimageBuilder
from .sttr import STTR, STTRRule, State, TransducerError

#: Cap on per-rule provenance notes recorded by one compose() call.
_MAX_RULE_NOTES = 25

_OBS_STATES = obs_metrics.histogram("compose.states_explored")
_OBS_RULES = obs_metrics.histogram("compose.rules_emitted")
_OBS_LA_RULES = obs_metrics.histogram("compose.lookahead_rules")
_OBS_PAIR_STATES = obs_metrics.counter("compose.pair_states")
_OBS_PRUNED_LA = obs_metrics.counter("compose.lookahead_states_pruned")


def compose(
    first: STTR, second: STTR, solver: Solver, name: str | None = None
) -> STTR:
    """The composed STTR ``first ; second`` (apply ``first``, then ``second``)."""
    if first.output_type != second.input_type:
        raise TransducerError(
            f"cannot compose: {first.name} outputs {first.output_type.name}, "
            f"{second.name} reads {second.input_type.name}"
        )
    with obs_tracer.span("compose", t1=first.name, t2=second.name) as sp:
        with prov.step(
            "compose",
            f"compose {first.name} ; {second.name} "
            "(Compose/Reduce/Look, paper Section 4)",
        ) as st:
            dt_sta, _ = domain_sta(second)
            builder = PreimageBuilder(first, dt_sta, solver)
            composer = _Composer(first, second, builder, solver)
            composer.run()
            builder.ensure()
            lookahead_sta = builder.sta()
            composed = STTR(
                name or f"({first.name} ; {second.name})",
                first.input_type,
                second.output_type,
                ("pair", first.initial, second.initial),
                tuple(composer.rules),
                lookahead_sta,
            )
            st.set(
                pair_states=composer.states_explored,
                rules=len(composer.rules),
                lookahead_rules=len(lookahead_sta.rules),
            )
            if prov.is_active():
                for r in composer.rules[:_MAX_RULE_NOTES]:
                    prov.note(
                        "rule",
                        f"composed rule fired: {r.state} "
                        f"--{r.ctor}[{r.guard!r}]--> {r.output!r}",
                    )
                if len(composer.rules) > _MAX_RULE_NOTES:
                    prov.note(
                        "truncated",
                        f"... and {len(composer.rules) - _MAX_RULE_NOTES} "
                        "more composed rules",
                    )
        if obs_config.ENABLED:
            _OBS_PAIR_STATES.inc(composer.states_explored)
            _OBS_STATES.observe(composer.states_explored)
            _OBS_RULES.observe(len(composer.rules))
            _OBS_LA_RULES.observe(len(lookahead_sta.rules))
            sp.set(
                states=composer.states_explored,
                rules=len(composer.rules),
                lookahead_rules=len(lookahead_sta.rules),
            )
        return prune_trivial_lookahead(composed, solver)


def prune_trivial_lookahead(sttr: STTR, solver: Solver) -> STTR:
    """Drop lookahead constraints that provably accept every tree.

    Composition chains accumulate constraints like "the child lies in
    the domain of a total transducer"; without this pass every further
    composition and every execution pays for them (the flat line of
    Figure 7 depends on it).
    """
    from ..automata.cleanup import reachable_lookahead_rules, universal_states

    universal = universal_states(sttr.lookahead_sta, solver)
    if not universal:
        return sttr
    if obs_config.ENABLED:
        _OBS_PRUNED_LA.inc(len(universal))
    new_rules = tuple(
        STTRRule(
            r.state,
            r.ctor,
            r.guard,
            tuple(l - universal for l in r.lookahead),
            r.output,
        )
        for r in sttr.rules
    )
    roots = {s for r in new_rules for l in r.lookahead for s in l}
    la_rules = reachable_lookahead_rules(sttr.lookahead_sta, roots)
    from ..automata.sta import STA

    return STTR(
        sttr.name,
        sttr.input_type,
        sttr.output_type,
        sttr.initial,
        new_rules,
        STA(sttr.input_type, la_rules),
    )


class _Composer:
    def __init__(
        self, first: STTR, second: STTR, builder: PreimageBuilder, solver: Solver
    ) -> None:
        self.S = first
        self.T = second
        self.builder = builder
        self.solver = solver
        self.rules: list[STTRRule] = []
        self.states_explored = 0
        self._t_in_fields = [f.name for f in second.input_type.fields]

    def run(self) -> None:
        done: set[tuple[State, State]] = set()
        work: list[tuple[State, State]] = [(self.S.initial, self.T.initial)]
        while work:
            p, q = work.pop()
            if (p, q) in done:
                continue
            _tick(kind="compose.pair")
            done.add((p, q))
            self.states_explored = len(done)
            for new_rule in self._compose_state(p, q):
                self.rules.append(new_rule)
                for term in new_rule.output.iter_terms():
                    if isinstance(term, OutApply):
                        tag, p2, q2 = term.state
                        assert tag == "pair"
                        if (p2, q2) not in done:
                            work.append((p2, q2))

    def _compose_state(self, p: State, q: State) -> Iterator[STTRRule]:
        """The paper's ``Compose(p, q, f)`` over all symbols ``f``."""
        for s_rule in self.S.rules_from(p):
            rank = len(s_rule.lookahead)
            empty: LookTuple = tuple(frozenset() for _ in range(rank))
            start = TApp(q, s_rule.output)
            for guard, extra, out in self._reduce(s_rule.guard, empty, start):
                lookahead = tuple(
                    frozenset(("la", s) for s in l) | e
                    for l, e in zip(s_rule.lookahead, extra)
                )
                yield STTRRule(("pair", p, q), s_rule.ctor, guard, lookahead, out)

    # -- Reduce -----------------------------------------------------------------

    def _reduce(
        self, guard: Term, lookahead: LookTuple, term: OutputTerm
    ) -> Iterator[tuple[Term, LookTuple, OutputTerm]]:
        if isinstance(term, TApp):
            q = term.state
            arg = term.arg
            if isinstance(arg, OutApply):
                # Reduce line 1: q~(p~(yi)) -> (p.q)~(yi).
                yield guard, lookahead, OutApply(("pair", arg.state, q), arg.index)
                return
            if isinstance(arg, OutNode):
                yield from self._reduce_node(guard, lookahead, q, arg)
                return
            if isinstance(arg, TApp):  # pragma: no cover - cannot arise
                raise TransducerError("nested TApp during reduction")
            raise TransducerError(f"bad extended term {term!r}")
        if isinstance(term, OutNode):
            # Reduce line 3: an already-output node; reduce children in order.
            yield from self._reduce_children(
                guard, lookahead, term, list(term.children), 0, []
            )
            return
        if isinstance(term, OutApply):
            # Already fully reduced (pair state).
            yield guard, lookahead, term
            return
        raise TransducerError(f"bad term {term!r}")

    def _reduce_node(
        self, guard: Term, lookahead: LookTuple, q: State, node: OutNode
    ) -> Iterator[tuple[Term, LookTuple, OutputTerm]]:
        """Reduce line 2: ``q~(g[e(x)](u1..un))`` — apply a ``T``-rule."""
        attr_map = dict(zip(self._t_in_fields, node.attr_exprs))
        for t_rule in self.T.rules_from(q, node.ctor):
            g1 = smt.mk_and(guard, t_rule.guard.substitute(attr_map))
            if g1 == smt.FALSE or not self.solver.is_sat(g1):
                continue
            # Domain-automaton lookahead of this T-rule (Definition 6):
            # explicit lookahead plus the states its output applies to
            # each child — run Look over *all* children of the consumed
            # node so deleted subtrees keep their constraints.
            dom_targets = [
                frozenset(("la", s) for s in t_rule.lookahead[i])
                | frozenset(("q", s) for s in states_at(t_rule.output, i))
                for i in range(len(node.children))
            ]

            def fold(idx: int, g: Term, la: LookTuple) -> Iterator:
                if idx == len(node.children):
                    instantiated = self._instantiate(
                        t_rule.output, attr_map, node.children
                    )
                    yield from self._reduce(g, la, instantiated)
                    return
                for g2, la2 in self.builder.look(
                    g, la, dom_targets[idx], node.children[idx]
                ):
                    yield from fold(idx + 1, g2, la2)

            yield from fold(0, g1, lookahead)

    def _reduce_children(
        self,
        guard: Term,
        lookahead: LookTuple,
        node: OutNode,
        children: list[OutputTerm],
        idx: int,
        acc: list[OutputTerm],
    ) -> Iterator[tuple[Term, LookTuple, OutputTerm]]:
        if idx == len(children):
            yield guard, lookahead, OutNode(node.ctor, node.attr_exprs, tuple(acc))
            return
        for g2, la2, reduced in self._reduce(guard, lookahead, children[idx]):
            acc.append(reduced)
            yield from self._reduce_children(g2, la2, node, children, idx + 1, acc)
            acc.pop()

    def _instantiate(
        self,
        term: OutputTerm,
        attr_map: dict[str, Term],
        kids: tuple[OutputTerm, ...],
    ) -> OutputTerm:
        """``t_out(e(x), u_bar)``: substitute labels and child terms."""
        if isinstance(term, OutApply):
            return TApp(term.state, kids[term.index])
        if isinstance(term, OutNode):
            return OutNode(
                term.ctor,
                tuple(e.substitute(attr_map) for e in term.attr_exprs),
                tuple(self._instantiate(c, attr_map, kids) for c in term.children),
            )
        raise TransducerError(f"bad T output term {term!r}")
