"""Execution semantics of STTRs (paper Definition 7).

``run`` computes the *set* ``T_q(t)`` of output trees.  The engine is
task-based and iterative: a task is a pair ``(state, subtree)``; tasks
are discovered top-down (duplication may visit a subtree in several
states, deletion may skip it entirely) and evaluated bottom-up, so trees
thousands of nodes deep — the deforestation workloads of Section 5.3 —
run without recursion.

Nondeterministic rules multiply outputs via cross products; ``limit``
caps the set to keep pathological products bounded.
"""

from __future__ import annotations

from typing import Optional

from ..automata.semantics import acceptance_table
from ..trees.tree import Tree, dag_post_order
from .output_terms import OutApply, OutNode, OutputTerm
from .sttr import STTR, STTRRule, State


class TransductionError(Exception):
    """Raised when an output cannot be assembled (internal invariant)."""




def _discover_tasks(
    sttr: STTR, tree: Tree, state: State, la_table: dict
) -> list[tuple[State, Tree, list[STTRRule]]]:
    """All (state, node) tasks reachable from the root, discovery order."""
    tasks: list[tuple[State, Tree, list[STTRRule]]] = []
    seen: set[tuple[State, int]] = set()
    work: list[tuple[State, Tree]] = [(state, tree)]
    while work:
        q, t = work.pop()
        key = (q, id(t))
        if key in seen:
            continue
        seen.add(key)
        env = sttr.input_type.attr_env(t.attrs)
        applicable = [
            r
            for r in sttr.rules_from(q, t.ctor)
            if bool(r.guard.evaluate(env))
            and all(l <= la_table[id(c)] for l, c in zip(r.lookahead, t.children))
        ]
        tasks.append((q, t, applicable))
        for r in applicable:
            for term in r.output.iter_terms():
                if isinstance(term, OutApply):
                    work.append((term.state, t.children[term.index]))
    return tasks


def run(
    sttr: STTR,
    tree: Tree,
    state: State | None = None,
    limit: Optional[int] = None,
) -> list[Tree]:
    """All outputs ``T_state(tree)`` (default: the initial state).

    ``limit`` bounds the number of outputs kept per task (None = all).
    """
    root_state = sttr.initial if state is None else state
    la_table = acceptance_table(sttr.lookahead_sta, tree)
    tasks = _discover_tasks(sttr, tree, root_state, la_table)

    # Dependencies always point at strict subtrees.  Subtree *objects* can
    # be shared (e.g. a single nil leaf), so discovery order is not
    # topological; sorting by subtree height is, since height strictly
    # decreases along every dependency edge.
    heights: dict[int, int] = {}
    for n in dag_post_order(tree):
        heights[id(n)] = 1 + max((heights[id(c)] for c in n.children), default=0)
    tasks.sort(key=lambda task: heights[id(task[1])])

    results: dict[tuple[State, int], list[Tree]] = {}
    for q, t, applicable in tasks:
        env = sttr.input_type.attr_env(t.attrs)
        outputs: dict[Tree, None] = {}
        for r in applicable:
            for out in _eval_output(r.output, t, env, results, limit):
                outputs.setdefault(out)
                if limit is not None and len(outputs) >= limit:
                    break
            if limit is not None and len(outputs) >= limit:
                break
        results[(q, id(t))] = list(outputs)
    return results[(root_state, id(tree))]


def _eval_output(
    term: OutputTerm,
    node: Tree,
    env: dict,
    results: dict,
    limit: Optional[int],
) -> list[Tree]:
    if isinstance(term, OutApply):
        return results[(term.state, id(node.children[term.index]))]
    if isinstance(term, OutNode):
        attrs = tuple(e.evaluate(env) for e in term.attr_exprs)
        kid_lists = [
            _eval_output(c, node, env, results, limit) for c in term.children
        ]
        out: list[Tree] = []
        _cross(kid_lists, 0, [], attrs, term.ctor, out, limit)
        return out
    raise TransductionError(f"cannot evaluate extended term {term!r}")


def _cross(
    kid_lists: list[list[Tree]],
    idx: int,
    acc: list[Tree],
    attrs: tuple,
    ctor: str,
    out: list[Tree],
    limit: Optional[int],
) -> None:
    if limit is not None and len(out) >= limit:
        return
    if idx == len(kid_lists):
        out.append(Tree(ctor, attrs, tuple(acc)))
        return
    for k in kid_lists[idx]:
        acc.append(k)
        _cross(kid_lists, idx + 1, acc, attrs, ctor, out, limit)
        acc.pop()


def run_one(sttr: STTR, tree: Tree, state: State | None = None) -> Optional[Tree]:
    """One output, or None if the input is outside the domain.

    Complete: truncating each task's output set to one element preserves
    non-emptiness bottom-up, so this returns an output exactly when
    ``T_state(tree)`` is non-empty.
    """
    outputs = run(sttr, tree, state=state, limit=1)
    return outputs[0] if outputs else None
