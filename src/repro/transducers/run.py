"""Execution semantics of STTRs (paper Definition 7).

``run`` computes the *set* ``T_q(t)`` of output trees.  The engine is
task-based and iterative: a task is a pair ``(state, subtree)``; tasks
are discovered top-down (duplication may visit a subtree in several
states, deletion may skip it entirely) and evaluated bottom-up, so trees
thousands of nodes deep — the deforestation workloads of Section 5.3 —
run without recursion.

Nondeterministic rules multiply outputs via cross products; ``limit``
caps the set to keep pathological products bounded.  Truncation is
**tracked, not silent**: :func:`run_checked` additionally reports
whether the cap cut the enumeration anywhere the root result depends
on, and ``Transducer.apply`` turns that flag into a typed
:class:`OutputTruncated` signal.
"""

from __future__ import annotations

from typing import Optional

from ..automata.semantics import acceptance_table
from ..guard.budget import tick as _tick
from ..obs import provenance as prov
from ..trees.tree import Tree, dag_post_order
from .output_terms import OutApply, OutNode, OutputTerm
from .sttr import STTR, STTRRule, State, TransducerError


class TransductionError(TransducerError):
    """Raised when an output cannot be assembled (internal invariant)."""


class OutputTruncated(TransducerError):
    """The output enumeration was cut off by ``limit``.

    ``outputs`` holds the (complete up to ``limit``) partial result, so
    callers that *want* best-effort truncation can still recover it::

        try:
            outs = trans.apply(tree, limit=16)
        except OutputTruncated as exc:
            outs = exc.outputs          # explicit opt-in to the cut
    """

    def __init__(self, message: str, outputs: list[Tree], limit: int) -> None:
        super().__init__(message)
        self.outputs = outputs
        self.limit = limit


def _discover_tasks(
    sttr: STTR, tree: Tree, state: State, la_table: dict
) -> list[tuple[State, Tree, list[STTRRule]]]:
    """All (state, node) tasks reachable from the root, discovery order."""
    tasks: list[tuple[State, Tree, list[STTRRule]]] = []
    seen: set[tuple[State, int]] = set()
    work: list[tuple[State, Tree]] = [(state, tree)]
    while work:
        q, t = work.pop()
        key = (q, id(t))
        if key in seen:
            continue
        seen.add(key)
        env = sttr.input_type.attr_env(t.attrs)
        applicable = [
            r
            for r in sttr.rules_from(q, t.ctor)
            if bool(r.guard.evaluate(env))
            and all(l <= la_table[id(c)] for l, c in zip(r.lookahead, t.children))
        ]
        tasks.append((q, t, applicable))
        for r in applicable:
            for term in r.output.iter_terms():
                if isinstance(term, OutApply):
                    work.append((term.state, t.children[term.index]))
    return tasks


def run_checked(
    sttr: STTR,
    tree: Tree,
    state: State | None = None,
    limit: Optional[int] = None,
) -> tuple[list[Tree], bool]:
    """``T_state(tree)`` plus a truncation flag.

    The flag is True when the ``limit`` cap cut an enumeration that the
    root result (transitively) depends on — i.e. the returned list may
    be a strict subset of the true output set.  Detection enumerates up
    to ``limit + 1`` distinct outputs per task before trimming, so a
    task with *exactly* ``limit`` outputs is not falsely flagged; a cut
    inside a deep cross product is propagated through the task
    dependency graph as a taint.
    """
    root_state = sttr.initial if state is None else state
    la_table = acceptance_table(sttr.lookahead_sta, tree)
    tasks = _discover_tasks(sttr, tree, root_state, la_table)

    # Dependencies always point at strict subtrees.  Subtree *objects* can
    # be shared (e.g. a single nil leaf), so discovery order is not
    # topological; sorting by subtree height is, since height strictly
    # decreases along every dependency edge.
    heights: dict[int, int] = {}
    for n in dag_post_order(tree):
        heights[id(n)] = 1 + max((heights[id(c)] for c in n.children), default=0)
    tasks.sort(key=lambda task: heights[id(task[1])])

    probe = None if limit is None else limit + 1
    results: dict[tuple[State, int], list[Tree]] = {}
    tainted: set[tuple[State, int]] = set()
    for q, t, applicable in tasks:
        _tick(kind="transducer.task")
        env = sttr.input_type.attr_env(t.attrs)
        outputs: dict[Tree, None] = {}
        cut = False
        for r in applicable:
            produced, capped = _eval_output(r.output, t, env, results, probe)
            cut = cut or capped
            for out in produced:
                outputs.setdefault(out)
            if limit is not None and len(outputs) > limit:
                cut = True
                break
        kept = list(outputs)
        if limit is not None and len(kept) > limit:
            cut = True
            kept = kept[:limit]
        key = (q, id(t))
        if cut or any(
            (term.state, id(t.children[term.index])) in tainted
            for r in applicable
            for term in r.output.iter_terms()
            if isinstance(term, OutApply)
        ):
            tainted.add(key)
        results[key] = kept
    root_key = (root_state, id(tree))
    if prov.is_active():
        prov.note(
            "run",
            f"ran {sttr.name} from state {root_state}: {len(tasks)} tasks, "
            f"{len(results[root_key])} output(s)",
        )
    return results[root_key], root_key in tainted


def run(
    sttr: STTR,
    tree: Tree,
    state: State | None = None,
    limit: Optional[int] = None,
) -> list[Tree]:
    """All outputs ``T_state(tree)`` (default: the initial state).

    ``limit`` bounds the number of outputs kept per task (None = all),
    silently truncating — use :func:`run_checked` (or
    ``Transducer.apply``, which raises :class:`OutputTruncated`) when
    the cut must be observable.
    """
    outputs, _ = run_checked(sttr, tree, state=state, limit=limit)
    return outputs


def _eval_output(
    term: OutputTerm,
    node: Tree,
    env: dict,
    results: dict,
    probe: Optional[int],
) -> tuple[list[Tree], bool]:
    """Evaluate one output term: (outputs, hit-the-probe-cap?)."""
    if isinstance(term, OutApply):
        return results[(term.state, id(node.children[term.index]))], False
    if isinstance(term, OutNode):
        attrs = tuple(e.evaluate(env) for e in term.attr_exprs)
        kid_lists: list[list[Tree]] = []
        capped = False
        for c in term.children:
            kids, kid_capped = _eval_output(c, node, env, results, probe)
            capped = capped or kid_capped
            kid_lists.append(kids)
        out: list[Tree] = []
        cross_capped = _cross(kid_lists, 0, [], attrs, term.ctor, out, probe)
        return out, capped or cross_capped
    raise TransductionError(f"cannot evaluate extended term {term!r}")


def _cross(
    kid_lists: list[list[Tree]],
    idx: int,
    acc: list[Tree],
    attrs: tuple,
    ctor: str,
    out: list[Tree],
    probe: Optional[int],
) -> bool:
    """Cross product into ``out``; True when the probe cap stopped it."""
    if probe is not None and len(out) >= probe:
        return True
    if idx == len(kid_lists):
        out.append(Tree(ctor, attrs, tuple(acc)))
        return False
    capped = False
    for k in kid_lists[idx]:
        acc.append(k)
        capped = _cross(kid_lists, idx + 1, acc, attrs, ctor, out, probe) or capped
        acc.pop()
        if capped:
            break
    return capped


def run_one(sttr: STTR, tree: Tree, state: State | None = None) -> Optional[Tree]:
    """One output, or None if the input is outside the domain.

    Complete: truncating each task's output set to one element preserves
    non-emptiness bottom-up, so this returns an output exactly when
    ``T_state(tree)`` is non-empty.
    """
    outputs = run(sttr, tree, state=state, limit=1)
    return outputs[0] if outputs else None
