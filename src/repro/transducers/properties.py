"""Decidable structural properties of STTRs.

* ``is_linear`` — no rule copies a child (Definition 5).
* ``is_deterministic`` — paper Definition 9: no two distinct rules from
  the same state/symbol are jointly enabled (overlapping guards *and*
  pairwise non-disjoint lookahead languages) with different outputs.
  Determinism implies single-valuedness; single-valuedness itself is an
  open problem for STTRs (Section 3.3), so ``assume_single_valued``
  reports the decidable sufficient condition.
"""

from __future__ import annotations

import itertools

from ..automata.emptiness import is_empty
from ..smt import builders as smt
from ..smt.solver import Solver
from .sttr import STTR


def is_linear(sttr: STTR) -> bool:
    """Does every rule use each child at most once?"""
    return sttr.is_linear()


def is_deterministic(sttr: STTR, solver: Solver) -> bool:
    """Paper Definition 9 (decidable, implies single-valued)."""
    by_key: dict = {}
    for r in sttr.rules:
        by_key.setdefault((r.state, r.ctor), []).append(r)
    for rules in by_key.values():
        for r1, r2 in itertools.combinations(rules, 2):
            if r1.output == r2.output and r1.lookahead == r2.lookahead:
                continue
            if not solver.is_sat(smt.mk_and(r1.guard, r2.guard)):
                continue
            lookaheads_overlap = all(
                not is_empty(sttr.lookahead_sta, l1 | l2, solver)
                for l1, l2 in zip(r1.lookahead, r2.lookahead)
            )
            if lookaheads_overlap and r1.output != r2.output:
                return False
    return True


def single_valued(sttr: STTR, solver: Solver) -> bool:
    """A decidable *sufficient* condition for single-valuedness.

    Deciding single-valuedness exactly is open (paper Section 3.3);
    determinism is the sufficient condition the paper relies on.
    """
    return is_deterministic(sttr, solver)


def composition_is_exact(first: STTR, second: STTR, solver: Solver) -> bool:
    """Do the Theorem 4 preconditions hold for ``compose(first, second)``?

    True when ``second`` is linear or ``first`` is (provably)
    single-valued; when False the composition may over-approximate.
    """
    return is_linear(second) or single_valued(first, solver)
