"""Symbolic tree transducers with regular lookahead (STTRs)."""

from .compose import compose
from .domain import domain, domain_sta
from .facade import Transducer
from .output_terms import (
    OutApply,
    OutNode,
    OutputTerm,
    TApp,
    identity_output,
    is_linear as output_is_linear,
    states_at,
    substitute_attrs,
)
from .preimage import PreimageBuilder, preimage
from .properties import composition_is_exact, is_deterministic, is_linear, single_valued
from .restrict import identity_sttr, restrict_input, restrict_output, restricted_identity
from .run import OutputTruncated, TransductionError, run, run_checked, run_one
from .sttr import STTR, STTRRule, TransducerError, trule
from .testing import Inequivalence, equivalent_up_to, find_inequivalence
from .typecheck import type_check

__all__ = [
    "OutApply",
    "OutNode",
    "OutputTerm",
    "PreimageBuilder",
    "STTR",
    "STTRRule",
    "TApp",
    "OutputTruncated",
    "TransducerError",
    "Transducer",
    "TransductionError",
    "compose",
    "composition_is_exact",
    "Inequivalence",
    "domain",
    "domain_sta",
    "identity_output",
    "identity_sttr",
    "is_deterministic",
    "is_linear",
    "output_is_linear",
    "preimage",
    "restrict_input",
    "equivalent_up_to",
    "find_inequivalence",
    "restrict_output",
    "restricted_identity",
    "run",
    "run_checked",
    "run_one",
    "single_valued",
    "states_at",
    "substitute_attrs",
    "trule",
    "type_check",
]
