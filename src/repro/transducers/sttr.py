"""Symbolic tree transducers with regular lookahead (paper Definition 5).

An STTR rule ``(q, f, phi, lbar, t)`` fires at ``f[a](t1..tk)`` when the
guard ``phi(a)`` holds and every child ``ti`` is accepted by every state
in the lookahead set ``lbar[i]``; it then emits the output term ``t``
instantiated with ``x := a`` and the recursive transductions of the
children.

Design note (DESIGN.md): the paper's lookahead states live in the
transducer's own state space with semantics through the domain automaton
``d(T)``.  We carry an explicit *lookahead STA* instead: rule lookahead
sets reference its states, and :func:`repro.transducers.domain.domain_sta`
recombines both state spaces into the paper's ``d(T)``.  This keeps the
lookahead algebra of the composition algorithm (``lbar ⊎ Pbar``)
first-class and is semantically equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..errors import ReproError
from ..smt import builders as smt
from ..smt.terms import Term
from ..trees.types import TreeType
from ..automata.sta import STA
from .output_terms import (
    OutApply,
    OutNode,
    OutputTerm,
    TApp,
    is_linear as output_is_linear,
)

State = Hashable


class TransducerError(ReproError):
    """Structural errors in transducer construction."""


@dataclass(frozen=True)
class STTRRule:
    """``(state, ctor, guard, lookahead, output)`` — see Definition 5."""

    state: State
    ctor: str
    guard: Term
    lookahead: tuple[frozenset[State], ...]
    output: OutputTerm

    def is_linear(self) -> bool:
        return output_is_linear(self.output)

    def __repr__(self) -> str:
        las = ", ".join("{" + ",".join(map(str, l)) + "}" for l in self.lookahead)
        return (
            f"{self.state} --{self.ctor}[{self.guard!r}] given ({las})"
            f"--> {self.output!r}"
        )


def trule(
    state: State,
    ctor: str,
    output: OutputTerm,
    guard: Term | None = None,
    lookahead: Iterable[Iterable[State]] | None = None,
    rank: int | None = None,
) -> STTRRule:
    """Rule builder; lookahead defaults to no constraints."""
    if lookahead is None:
        if rank is None:
            raise TransducerError("trule needs either lookahead or rank")
        lookahead = [() for _ in range(rank)]
    return STTRRule(
        state,
        ctor,
        smt.TRUE if guard is None else guard,
        tuple(frozenset(l) for l in lookahead),
        output,
    )


@dataclass(frozen=True)
class STTR:
    """A symbolic tree transducer with regular lookahead.

    ``lookahead_sta`` interprets the states occurring in rule lookahead
    sets; it runs over the *input* tree type.
    """

    name: str
    input_type: TreeType
    output_type: TreeType
    initial: State
    rules: tuple[STTRRule, ...]
    lookahead_sta: STA = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.lookahead_sta is None:
            object.__setattr__(
                self, "lookahead_sta", STA(self.input_type, ())
            )
        if self.lookahead_sta.tree_type != self.input_type:
            raise TransducerError(
                f"lookahead automaton of {self.name} runs over "
                f"{self.lookahead_sta.tree_type.name}, expected "
                f"{self.input_type.name}"
            )
        for r in self.rules:
            self._check_rule(r)
        index: dict[tuple[State, str], list[STTRRule]] = {}
        for r in self.rules:
            index.setdefault((r.state, r.ctor), []).append(r)
        object.__setattr__(self, "_index", index)

    def _check_rule(self, r: STTRRule) -> None:
        ctor = self.input_type.constructor(r.ctor)
        if len(r.lookahead) != ctor.rank:
            raise TransducerError(
                f"{self.name}: rule {r!r} lookahead length mismatch "
                f"(rank {ctor.rank})"
            )
        # Lookahead states need not have rules in the lookahead automaton:
        # a rule-less state simply accepts no tree (its language is empty),
        # which arises naturally for pre-image states built by composition.
        self._check_output(r.output, ctor.rank)

    def _check_output(self, term: OutputTerm, rank: int) -> None:
        if isinstance(term, OutApply):
            if not 0 <= term.index < rank:
                raise TransducerError(
                    f"{self.name}: output references child y{term.index} "
                    f"but the input has rank {rank}"
                )
            return
        if isinstance(term, OutNode):
            out_ctor = self.output_type.constructor(term.ctor)
            if len(term.children) != out_ctor.rank:
                raise TransducerError(
                    f"{self.name}: output node {term.ctor} has rank "
                    f"{out_ctor.rank}, got {len(term.children)} children"
                )
            fields = self.output_type.fields
            if len(term.attr_exprs) != len(fields):
                raise TransducerError(
                    f"{self.name}: output node {term.ctor} needs "
                    f"{len(fields)} attribute expression(s)"
                )
            in_fields = {f.name: f.sort for f in self.input_type.fields}
            for f, e in zip(fields, term.attr_exprs):
                if e.sort != f.sort:
                    raise TransducerError(
                        f"{self.name}: attribute {f.name} of {term.ctor} "
                        f"expects sort {f.sort}, expression has {e.sort}"
                    )
                for v in e.free_vars():
                    if in_fields.get(v.name) != v.var_sort:
                        raise TransducerError(
                            f"{self.name}: output attribute expression "
                            f"{e!r} references {v.name}, which is not an "
                            f"input attribute field"
                        )
            for c in term.children:
                self._check_output(c, rank)
            return
        if isinstance(term, TApp):
            raise TransducerError(
                f"{self.name}: extended term {term!r} cannot appear in a "
                f"final transducer rule"
            )
        raise TransducerError(f"{self.name}: bad output term {term!r}")

    # -- queries ------------------------------------------------------------

    @property
    def states(self) -> frozenset[State]:
        out: set[State] = {self.initial}
        for r in self.rules:
            out.add(r.state)
            for t in r.output.iter_terms():
                if isinstance(t, OutApply):
                    out.add(t.state)
        return frozenset(out)

    def rules_from(self, state: State, ctor: str | None = None) -> list[STTRRule]:
        if ctor is not None:
            return self._index.get((state, ctor), [])  # type: ignore[attr-defined]
        return [r for r in self.rules if r.state == state]

    def size(self) -> tuple[int, int]:
        """(states, rules) — the measure used in the paper's Section 5.2."""
        return len(self.states), len(self.rules)

    def is_linear(self) -> bool:
        """No rule duplicates a child (Definition 5)."""
        return all(r.is_linear() for r in self.rules)
