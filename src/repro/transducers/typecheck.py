"""Type checking of transductions (Fast's ``type-check l1 t l2``).

``type_check(l1, t, l2)`` holds when every input in ``l1`` only produces
outputs in ``l2``.  It reduces to Boolean algebra plus pre-image:
the inputs that can produce an output *outside* ``l2`` are
``pre-image(t, complement l2)``; the check fails exactly on
``l1 intersect pre-image(t, complement l2)``, and a witness of that
intersection is a counterexample input.
"""

from __future__ import annotations

from typing import Optional

from ..automata.language import Language
from ..obs import provenance as prov
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..trees.tree import Tree, format_tree
from .preimage import preimage
from .sttr import STTR


def type_check(
    input_lang: Language,
    sttr: STTR,
    output_lang: Language,
    solver: Solver | None = None,
) -> Optional[Tree]:
    """None when the transduction type-checks; else a counterexample input."""
    solver = solver or input_lang.solver
    with obs_tracer.span("typecheck", trans=sttr.name) as sp:
        with prov.step(
            "typecheck",
            f"type-check {sttr.name}: complement output, pre-image, "
            "intersect with input, decide emptiness",
        ) as st:
            with obs_tracer.span("typecheck.complement"):
                bad_outputs = output_lang.complement()
            with obs_tracer.span("typecheck.preimage"):
                bad_inputs = preimage(sttr, bad_outputs, solver)
            with obs_tracer.span("typecheck.emptiness"):
                cex = input_lang.intersect(bad_inputs).witness()
            st.set(ok=cex is None)
            if cex is not None:
                prov.note(
                    "witness",
                    "offending input region: input-language tree whose "
                    f"image escapes the output language: {format_tree(cex)}",
                )
        sp.set(ok=cex is None)
    return cex
