"""The domain automaton ``d(S)`` of an STTR (paper Definition 6).

For each transducer rule the domain rule constrains child ``i`` with the
rule's lookahead **plus** the states ``St(i, t)`` that the output applies
to that child — a child that the output transforms must itself have a
successful transduction.  Because our STTRs carry an explicit lookahead
STA, ``d(S)`` lives over a tagged union of the two state spaces:
``("q", p)`` for transduction states and ``("la", s)`` for lookahead
states.
"""

from __future__ import annotations

from ..automata.language import Language
from ..automata.sta import STA, STARule, State
from ..guard.budget import tick as _tick
from ..obs import provenance as prov
from ..smt.solver import Solver
from .output_terms import states_at
from .sttr import STTR


def domain_sta(sttr: STTR) -> tuple[STA, State]:
    """``d(S)`` as an STA plus the state denoting ``dom(T_S)``."""
    rules: list[STARule] = []
    for r in sttr.lookahead_sta.rules:
        rules.append(
            STARule(
                ("la", r.state),
                r.ctor,
                r.guard,
                tuple(frozenset(("la", s) for s in l) for l in r.lookahead),
            )
        )
    for r in sttr.rules:
        _tick(kind="domain.rule")
        lookahead = tuple(
            frozenset(("la", s) for s in l)
            | frozenset(("q", q) for q in states_at(r.output, i))
            for i, l in enumerate(r.lookahead)
        )
        rules.append(STARule(("q", r.state), r.ctor, r.guard, lookahead))
    return STA(sttr.input_type, tuple(rules)), ("q", sttr.initial)


def domain(sttr: STTR, solver: Solver) -> Language:
    """The domain of the transduction as a :class:`Language` (Fast's
    ``domain t``)."""
    sta, state = domain_sta(sttr)
    prov.note(
        "domain",
        f"domain automaton d({sttr.name}) built: {len(sta.rules)} rules",
    )
    return Language(sta, state, solver)
