"""Inverse images of tree languages under STTRs — the ``Look`` procedure.

This module is the shared engine behind three operations:

* the user-facing ``pre-image t l`` of Fast (Section 3.5);
* the lookahead-language construction inside STTR composition
  (Section 4): the composed rule's lookahead entries ``p.q`` are states
  of the automaton built here with the target ``M = d(T)``;
* ``domain`` constraints for deleted subtrees (``R = {}`` degenerates to
  the domain automaton of ``S`` at ``p``).

A *pre-image state* ``("pre", p, R)`` (``p`` a state of the transducer
``S``, ``R`` a set of states of the target STA ``M`` over ``S``'s output
type) accepts the trees ``t`` such that some output in ``T^p_S(t)`` is
accepted by every state in ``R`` — with the caveat of paper Lemma 3:
when ``S`` duplicates subtrees *and* is not single-valued the copies are
constrained independently, yielding the same over-approximation as
``T_{S.T}`` in Theorem 4.

``look`` walks an output term of ``S`` (paper procedure ``Look``),
simultaneously simulating every ``M``-state in ``R``:

* at ``q~(y_i)`` it records the pre-image state ``("pre", q, R)`` as a
  lookahead constraint on child ``i`` (Look line 1);
* at ``g[e(x)](u1..un)`` it picks one ``M``-rule per state in ``R``
  (this inlines the paper's normalization of ``d(T)``), conjoins the
  rule guards *instantiated with the output attribute expressions*
  ``e(x)`` — this is where cross-level label dependencies such as paper
  Example 8 become unsatisfiable — and folds over the children
  (Look lines 2a-2d).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..automata.language import Language
from ..automata.sta import STA, STARule, State
from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from ..obs import tracer as obs_tracer
from ..smt import builders as smt
from ..smt.solver import Solver
from ..smt.terms import Term
from .output_terms import OutApply, OutNode, OutputTerm
from .sttr import STTR

_OBS_STATES = obs_metrics.counter("preimage.states_built")
_OBS_RULES = obs_metrics.counter("preimage.rules_built")

#: Lookahead tuples: one frozenset of result-automaton states per child.
LookTuple = tuple[frozenset, ...]


class PreimageBuilder:
    """Lazily builds the pre-image automaton of ``S`` against target ``M``.

    The result automaton's states are ``("la", s)`` for states of ``S``'s
    own lookahead STA (embedded unchanged) and ``("pre", p, R)`` for
    pre-image states; rules are created on demand by :meth:`state` /
    :meth:`ensure`.
    """

    def __init__(self, sttr: STTR, target: STA, solver: Solver) -> None:
        if target.tree_type != sttr.output_type:
            raise ValueError(
                f"target automaton runs over {target.tree_type.name}, "
                f"expected the transducer's output type {sttr.output_type.name}"
            )
        self.sttr = sttr
        self.target = target
        self.solver = solver
        self._rules: list[STARule] = [
            STARule(
                ("la", r.state),
                r.ctor,
                r.guard,
                tuple(frozenset(("la", s) for s in l) for l in r.lookahead),
            )
            for r in sttr.lookahead_sta.rules
        ]
        self._built: set[State] = set()
        self._pending: list[tuple[State, frozenset]] = []
        # Output attribute fields of S = attribute fields of M's tree type.
        self._out_fields = [f.name for f in sttr.output_type.fields]

    # -- state management ------------------------------------------------------

    def state(self, p: State, targets: Iterable[State]) -> State:
        """Intern the pre-image state ``("pre", p, frozenset(targets))``."""
        s = ("pre", p, frozenset(targets))
        if s not in self._built:
            self._built.add(s)
            self._pending.append((p, s[2]))
            if obs_config.ENABLED:
                _OBS_STATES.inc()
        return s

    def ensure(self) -> None:
        """Build rules for all pending pre-image states (to a fixpoint)."""
        while self._pending:
            p, targets = self._pending.pop()
            _tick(kind="preimage.state")
            source = ("pre", p, targets)
            for rule in self.sttr.rules_from(p):
                rank = len(rule.lookahead)
                empty: LookTuple = tuple(frozenset() for _ in range(rank))
                for guard, extra in self.look(rule.guard, empty, targets, rule.output):
                    lookahead = tuple(
                        frozenset(("la", s) for s in l) | e
                        for l, e in zip(rule.lookahead, extra)
                    )
                    self._rules.append(STARule(source, rule.ctor, guard, lookahead))
                    if obs_config.ENABLED:
                        _OBS_RULES.inc()

    def sta(self) -> STA:
        """The automaton built so far (call :meth:`ensure` first)."""
        return STA(self.sttr.input_type, tuple(self._rules))

    # -- the Look procedure ------------------------------------------------------

    def look(
        self,
        guard: Term,
        lookahead: LookTuple,
        targets: frozenset,
        term: OutputTerm,
    ) -> Iterator[tuple[Term, LookTuple]]:
        """All ways the ``M``-states in ``targets`` can accept ``term``.

        Yields ``(guard', lookahead')`` pairs: the accumulated label
        constraint and the child lookahead extended with pre-image states.
        """
        if isinstance(term, OutApply):
            s = self.state(term.state, targets)
            i = term.index
            extended = lookahead[:i] + (lookahead[i] | {s},) + lookahead[i + 1 :]
            yield guard, extended
            return
        if not isinstance(term, OutNode):
            raise TypeError(f"look expects a pure output term, got {term!r}")

        attr_map = dict(zip(self._out_fields, term.attr_exprs))
        choices = [
            self.target.rules_from(q, term.ctor)
            for q in sorted(targets, key=repr)
        ]
        if any(not c for c in choices):
            return  # some target state cannot read this constructor
        for combo in itertools.product(*choices):
            conj = guard
            ok = True
            for m_rule in combo:
                conj = smt.mk_and(conj, m_rule.guard.substitute(attr_map))
                if conj == smt.FALSE:
                    ok = False
                    break
            if not ok or not self.solver.is_sat(conj):
                continue
            child_targets = [
                frozenset().union(*(m.lookahead[i] for m in combo))
                if combo
                else frozenset()
                for i in range(len(term.children))
            ]
            yield from self._fold_children(
                conj, lookahead, term.children, child_targets, 0
            )

    def _fold_children(
        self,
        guard: Term,
        lookahead: LookTuple,
        children: tuple[OutputTerm, ...],
        child_targets: list[frozenset],
        idx: int,
    ) -> Iterator[tuple[Term, LookTuple]]:
        if idx == len(children):
            yield guard, lookahead
            return
        for g2, l2 in self.look(guard, lookahead, child_targets[idx], children[idx]):
            yield from self._fold_children(g2, l2, children, child_targets, idx + 1)


def preimage(sttr: STTR, lang: Language, solver: Solver | None = None) -> Language:
    """Fast's ``pre-image t l``: inputs whose output can land in ``lang``.

    Exact when ``sttr`` is single-valued or never duplicates children
    feeding a nondeterministic choice; an over-approximation otherwise
    (paper Theorem 4, since pre-image factors through composition).
    """
    solver = solver or lang.solver
    with obs_tracer.span("preimage", trans=sttr.name) as sp:
        with prov.step("preimage", f"pre-image of {sttr.name}") as st:
            builder = PreimageBuilder(sttr, lang.sta, solver)
            root = builder.state(sttr.initial, [lang.state])
            builder.ensure()
            sta = builder.sta()
            st.set(states=len(builder._built), rules=len(sta.rules))
        sp.set(states=len(builder._built), rules=len(sta.rules))
    return Language(sta, root, solver)
