"""Input/output restriction of STTRs (paper Section 3.5).

Both are "special applications of composition", exactly as the paper
notes: ``restrict t l = compose (restrict I l) t`` and
``restrict-out t l = compose t (restrict I l)``, where ``I`` is the
identity STTR.  The identity restricted to ``l`` is built from the
*normalized* automaton of ``l`` so each child constraint is a single
state; it is single-valued (every run copies the input) and linear, so
the two compositions fall into the exact cases of Theorem 4.
"""

from __future__ import annotations

from ..automata.language import Language
from ..automata.normalize import normalize
from ..smt.builders import mk_var
from ..smt.solver import Solver
from .compose import compose
from .output_terms import OutApply, OutNode
from .sttr import STTR, STTRRule, TransducerError


def identity_sttr(tree_type, name: str = "I") -> STTR:
    """The identity transducer on a tree type."""
    state = ("id",)
    rules = []
    for c in tree_type.constructors:
        out = OutNode(
            c.name,
            tuple(mk_var(f.name, f.sort) for f in tree_type.fields),
            tuple(OutApply(state, i) for i in range(c.rank)),
        )
        from ..smt import builders as smt

        rules.append(
            STTRRule(state, c.name, smt.TRUE, tuple(frozenset() for _ in range(c.rank)), out)
        )
    return STTR(name, tree_type, tree_type, state, tuple(rules))


def restricted_identity(lang: Language, solver: Solver, name: str = "I|L") -> STTR:
    """The identity transducer defined exactly on ``lang``.

    States mirror the merged states of the normalized automaton of
    ``lang``; every rule copies the node, so the transducer is both
    single-valued and linear.
    """
    start = frozenset([lang.state])
    norm = normalize(lang.sta, [start], solver)
    tree_type = lang.tree_type
    attr_vars = tuple(mk_var(f.name, f.sort) for f in tree_type.fields)
    rules = []
    for r in norm.sta.rules:
        child_states = [next(iter(l)) for l in r.lookahead]
        out = OutNode(
            r.ctor,
            attr_vars,
            tuple(OutApply(("id", cs), i) for i, cs in enumerate(child_states)),
        )
        rules.append(
            STTRRule(
                ("id", r.state),
                r.ctor,
                r.guard,
                tuple(frozenset() for _ in r.lookahead),
                out,
            )
        )
    return STTR(name, tree_type, tree_type, ("id", start), tuple(rules))


def restrict_input(sttr: STTR, lang: Language, solver: Solver) -> STTR:
    """``restrict t l``: behave like ``t`` but only on inputs in ``l``."""
    if lang.tree_type != sttr.input_type:
        raise TransducerError(
            f"restrict: language over {lang.tree_type.name}, transducer "
            f"reads {sttr.input_type.name}"
        )
    ident = restricted_identity(lang, solver)
    return compose(ident, sttr, solver, name=f"({sttr.name}|{lang.state})")


def restrict_output(sttr: STTR, lang: Language, solver: Solver) -> STTR:
    """``restrict-out t l``: defined only where some output lands in ``l``."""
    if lang.tree_type != sttr.output_type:
        raise TransducerError(
            f"restrict-out: language over {lang.tree_type.name}, transducer "
            f"writes {sttr.output_type.name}"
        )
    ident = restricted_identity(lang, solver)
    return compose(sttr, ident, solver, name=f"({sttr.name}|out:{lang.state})")
