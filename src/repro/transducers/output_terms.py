"""Output terms of STTR rules (paper Definition 4: k-rank tree transformers).

An output term describes, for a rule reading ``f[x](y1..yk)``, how the
output tree is assembled:

* ``OutApply(q, i)`` — apply the transducer at state ``q`` to child
  ``yi`` (the paper's ``q~(yi)``; every child reference is state-wrapped);
* ``OutNode(g, exprs, children)`` — emit constructor ``g`` whose
  attributes are label-theory expressions ``e(x)`` over the *input*
  node's attribute fields.

During composition, intermediate *extended* terms additionally contain
``TApp(q, t)`` — a state of the second transducer applied to a not yet
reduced term (the paper's ``State[q](t)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from ..smt.terms import Term
from ..trees.types import TreeType

State = object  # states are arbitrary hashables


@dataclass(frozen=True)
class OutputTerm:
    """Base class for output terms."""

    def iter_terms(self) -> Iterator["OutputTerm"]:
        yield self


@dataclass(frozen=True)
class OutApply(OutputTerm):
    """``q~(y_index)``: run state ``q`` on the ``index``-th child (0-based)."""

    state: object
    index: int

    def __repr__(self) -> str:
        return f"{self.state}~(y{self.index})"


@dataclass(frozen=True)
class OutNode(OutputTerm):
    """``g[e1(x) .. em(x)](t1 .. tn)``: emit a node."""

    ctor: str
    attr_exprs: tuple[Term, ...]
    children: tuple[OutputTerm, ...]

    def iter_terms(self) -> Iterator[OutputTerm]:
        yield self
        for c in self.children:
            yield from c.iter_terms()

    def __repr__(self) -> str:
        attrs = " ".join(repr(e) for e in self.attr_exprs)
        kids = ", ".join(repr(c) for c in self.children)
        return f"{self.ctor}[{attrs}]({kids})"


@dataclass(frozen=True)
class TApp(OutputTerm):
    """Extended term ``q~(t)`` used only inside the composition algorithm."""

    state: object
    arg: OutputTerm

    def iter_terms(self) -> Iterator[OutputTerm]:
        yield self
        yield from self.arg.iter_terms()

    def __repr__(self) -> str:
        return f"{self.state}~({self.arg!r})"


def states_at(term: OutputTerm, index: int) -> frozenset:
    """``St(i, t)``: states applied to child ``index`` in ``term``."""
    return frozenset(
        t.state
        for t in term.iter_terms()
        if isinstance(t, OutApply) and t.index == index
    )


def child_occurrences(term: OutputTerm) -> list[int]:
    """Indices of child references, one entry per occurrence."""
    return [t.index for t in term.iter_terms() if isinstance(t, OutApply)]


def is_linear(term: OutputTerm) -> bool:
    """Does every child occur at most once (paper Definition 5)?"""
    occ = child_occurrences(term)
    return len(occ) == len(set(occ))


def substitute_attrs(term: OutputTerm, mapping: Mapping[str, Term]) -> OutputTerm:
    """Substitute attribute expressions through the term (composition)."""
    if isinstance(term, OutApply):
        return term
    if isinstance(term, OutNode):
        return OutNode(
            term.ctor,
            tuple(e.substitute(mapping) for e in term.attr_exprs),
            tuple(substitute_attrs(c, mapping) for c in term.children),
        )
    if isinstance(term, TApp):
        return TApp(term.state, substitute_attrs(term.arg, mapping))
    raise TypeError(f"not an output term: {term!r}")


def map_states(term: OutputTerm, fn: Callable) -> OutputTerm:
    """Rename the states inside ``OutApply`` nodes."""
    if isinstance(term, OutApply):
        return OutApply(fn(term.state), term.index)
    if isinstance(term, OutNode):
        return OutNode(
            term.ctor,
            term.attr_exprs,
            tuple(map_states(c, fn) for c in term.children),
        )
    if isinstance(term, TApp):
        return TApp(term.state, map_states(term.arg, fn))
    raise TypeError(f"not an output term: {term!r}")


def identity_output(tree_type: TreeType, ctor_name: str, state: object) -> OutNode:
    """The copying output ``f[x](q~(y1) .. q~(yk))`` for one constructor."""
    from ..smt.builders import mk_var

    ctor = tree_type.constructor(ctor_name)
    return OutNode(
        ctor_name,
        tuple(mk_var(f.name, f.sort) for f in tree_type.fields),
        tuple(OutApply(state, i) for i in range(ctor.rank)),
    )
