"""The user-facing ``Transducer`` facade: an STTR plus a solver.

This is the value a Fast ``trans`` definition evaluates to.  All of
Section 3.5's operations are methods:

    >>> sani = rem_script.compose(esc).restrict(node_tree)
    >>> sani.apply_one(dom_tree)
    >>> sani.pre_image(bad_output).is_empty()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..automata.language import Language
from ..smt.solver import DEFAULT_SOLVER, Solver
from ..trees.tree import Tree
from . import properties
from .compose import compose as _compose
from .domain import domain as _domain
from .preimage import preimage as _preimage
from .restrict import restrict_input, restrict_output
from .run import OutputTruncated, run_checked as _run_checked, run_one as _run_one
from .sttr import STTR
from .typecheck import type_check as _type_check


@dataclass(frozen=True)
class Transducer:
    """A tree transformation backed by an STTR."""

    sttr: STTR
    solver: Solver = field(default_factory=lambda: DEFAULT_SOLVER, compare=False)

    @property
    def name(self) -> str:
        return self.sttr.name

    @property
    def input_type(self):
        return self.sttr.input_type

    @property
    def output_type(self):
        return self.sttr.output_type

    # -- execution -----------------------------------------------------------

    def _compiled(self):
        """The closure-lowered form, built once per transducer.

        Lowering failures are remembered as None (fall back to the
        interpreter forever) — the compiled tier is an optimization,
        never a new way to fail.  The slot lives in ``__dict__`` so the
        frozen dataclass stays frozen for its declared fields.
        """
        if "_compiled_sttr" not in self.__dict__:
            try:
                from ..exec.compiled import CompiledSTTR

                compiled = CompiledSTTR(self.sttr)
            except Exception:
                compiled = None
            object.__setattr__(self, "_compiled_sttr", compiled)
        return self.__dict__["_compiled_sttr"]

    def _checked(
        self, tree: Tree, limit: Optional[int]
    ) -> tuple[list[Tree], bool]:
        """``run_checked`` via the compiled tier when enabled."""
        from ..exec import config as exec_config

        if exec_config.compiled_enabled():
            compiled = self._compiled()
            if compiled is not None:
                from ..exec.compiled import run_compiled_checked

                return run_compiled_checked(compiled, tree, limit=limit)
        return _run_checked(self.sttr, tree, limit=limit)

    def apply(
        self,
        tree: Tree,
        limit: Optional[int] = None,
        on_truncate: str = "raise",
    ) -> list[Tree]:
        """All outputs on ``tree`` (Definition 7), optionally capped.

        When ``limit`` actually cuts the enumeration the cut is not
        silent: with ``on_truncate="raise"`` (the default) a
        :class:`~repro.transducers.run.OutputTruncated` is raised
        carrying the partial result; ``on_truncate="truncate"`` opts
        back into the plain shortened list.
        """
        if on_truncate not in ("raise", "truncate"):
            raise ValueError(
                f"on_truncate must be 'raise' or 'truncate', got {on_truncate!r}"
            )
        outputs, truncated = self._checked(tree, limit)
        if truncated and on_truncate == "raise":
            raise OutputTruncated(
                f"{self.name}: output enumeration cut off at limit={limit} "
                f"({len(outputs)} outputs kept; pass on_truncate='truncate' "
                f"to accept partial results)",
                outputs,
                limit,
            )
        return outputs

    def apply_one(self, tree: Tree) -> Optional[Tree]:
        """One output, or None when ``tree`` is outside the domain."""
        from ..exec import config as exec_config

        if exec_config.compiled_enabled():
            compiled = self._compiled()
            if compiled is not None:
                from ..exec.compiled import run_compiled_checked

                outputs, _ = run_compiled_checked(compiled, tree, limit=1)
                return outputs[0] if outputs else None
        return _run_one(self.sttr, tree)

    def __call__(self, tree: Tree) -> Optional[Tree]:
        return self.apply_one(tree)

    # -- operations (paper Section 3.5) -----------------------------------------

    def compose(self, other: "Transducer", name: str | None = None) -> "Transducer":
        """``compose t1 t2``: first self, then other (Section 4 algorithm)."""
        return Transducer(_compose(self.sttr, other.sttr, self.solver, name), self.solver)

    def restrict(self, lang: Language) -> "Transducer":
        """``restrict t l``: only accept inputs in ``l``."""
        return Transducer(restrict_input(self.sttr, lang, self.solver), self.solver)

    def restrict_out(self, lang: Language) -> "Transducer":
        """``restrict-out t l``: only inputs whose output can be in ``l``."""
        return Transducer(restrict_output(self.sttr, lang, self.solver), self.solver)

    def domain(self) -> Language:
        """``domain t`` (Definition 6)."""
        return _domain(self.sttr, self.solver)

    def pre_image(self, lang: Language) -> Language:
        """``pre-image t l``: inputs that can produce an output in ``l``."""
        return _preimage(self.sttr, lang, self.solver)

    def type_check(
        self, input_lang: Language, output_lang: Language
    ) -> Optional[Tree]:
        """None when every input in ``input_lang`` maps into
        ``output_lang``; else a counterexample input."""
        return _type_check(input_lang, self.sttr, output_lang, self.solver)

    def is_empty(self) -> bool:
        """Fast's ``is-empty`` on transductions: is the domain empty?"""
        return self.domain().is_empty()

    # -- governed (three-valued) variants -----------------------------------------

    def type_check_verdict(
        self, input_lang: Language, output_lang: Language, budget=None
    ):
        """:meth:`type_check` under a resource budget.

        Returns a :class:`repro.guard.Verdict`: PROVED when every input
        in ``input_lang`` maps into ``output_lang``, REFUTED with a
        counterexample witness, UNKNOWN when the budget ran out first.
        """
        from ..guard import governed

        return governed(
            lambda: self.type_check(input_lang, output_lang),
            budget,
            proved="transduction type-checks",
            refuted="counterexample input found",
        )

    def is_empty_verdict(self, budget=None):
        """:meth:`is_empty` under a resource budget (PROVED = domain empty)."""
        from ..guard import governed

        return governed(
            lambda: self.domain().witness(),
            budget,
            proved="transduction domain is empty",
            refuted="domain witness found",
        )

    # -- properties ---------------------------------------------------------------

    def is_linear(self) -> bool:
        return properties.is_linear(self.sttr)

    def is_deterministic(self) -> bool:
        return properties.is_deterministic(self.sttr, self.solver)

    def size(self) -> tuple[int, int]:
        """(states, rules) — the measure reported in Section 5.2."""
        return self.sttr.size()
