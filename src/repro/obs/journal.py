"""The structured event journal: a low-overhead append-only event stream.

While the tracer (:mod:`repro.obs.tracer`) keeps an in-memory span
*tree* per thread, the journal records a flat, time-ordered stream of
events — span begins/ends, counter deltas, guard charges, chaos
injections — that standard tooling can consume:

* :func:`repro.obs.export.chrome_trace` renders it in Chrome
  trace-event format, loadable by Perfetto (``ui.perfetto.dev``) and
  ``chrome://tracing``;
* :func:`repro.obs.export.collapsed_stacks` folds it into the
  collapsed-stack format flamegraph tools consume.

Each event is a plain tuple ``(ts, tid, ph, name, data)``:

* ``ts``   — ``time.perf_counter()`` seconds;
* ``tid``  — ``threading.get_ident()`` of the emitting thread;
* ``ph``   — the phase: ``"B"``/``"E"`` span begin/end, ``"C"`` counter
  value (post-increment), ``"G"`` guard charge, ``"I"`` instant
  (chaos injection, budget abort);
* ``name`` — span/counter/charge name;
* ``data`` — span attrs, counter value, charge amount, or detail dict.

Two storage modes:

* **ring** (default): a ``collections.deque(maxlen=capacity)`` — the
  newest ``capacity`` events are kept, older ones are dropped.  Append
  is lock-free (atomic under the GIL), which keeps the enabled-mode
  overhead within a few percent of the un-journaled run (enforced by
  ``benchmarks/bench_obs_journal_overhead.py``).
* **spill**: events accumulate in a buffer and are flushed to a JSONL
  file every ``capacity`` events, so arbitrarily long runs keep their
  full history on disk.

Everything is off by default.  Enable with :func:`enable` /
:func:`journaled`, or set ``REPRO_OBS_JOURNAL=1`` (ring mode) or
``REPRO_OBS_JOURNAL=spill:/path/to/events.jsonl`` in the environment.
Enabling the journal also enables :mod:`repro.obs` recording — the
span/counter call sites the journal listens to only fire while
``obs.enabled``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from . import config

#: One journal event: (ts, tid, ph, name, data).
Event = tuple[float, int, str, str, Any]

#: Default in-memory capacity (events); ~tens of MB at worst.
DEFAULT_CAPACITY = 1 << 18


class Journal:
    """An append-only event stream (ring buffer or JSONL spill)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        spill_path: str | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.spill_path = spill_path
        self.t0 = time.perf_counter()
        self.emitted = 0
        self.spilled = 0
        self._lock = threading.Lock()
        if spill_path is None:
            self._ring: deque[Event] = deque(maxlen=capacity)
            self._buffer: list[Event] | None = None
        else:
            self._ring = deque()  # unused in spill mode
            self._buffer = []

    # -- the hot path ------------------------------------------------------

    def emit(self, ph: str, name: str, data: Any = None) -> None:
        """Append one event.  Cheap: two clock/ident calls and an append."""
        event = (time.perf_counter(), threading.get_ident(), ph, name, data)
        self.emitted += 1
        if self._buffer is None:
            # Ring mode: deque.append with maxlen is atomic under the GIL.
            self._ring.append(event)
        else:
            with self._lock:
                self._buffer.append(event)
                if len(self._buffer) >= self.capacity:
                    self._flush_locked()

    def extend(self, events: list[Event]) -> None:
        """Append pre-built events (already ``(ts, tid, ph, name, data)``).

        Used by :mod:`repro.svc.telemetry` to merge worker-side journal
        fragments — with timestamps already aligned to this process's
        ``perf_counter`` timeline and ``tid`` set to the worker's track
        id — into the supervisor's journal.
        """
        if not events:
            return
        self.emitted += len(events)
        if self._buffer is None:
            self._ring.extend(events)
        else:
            with self._lock:
                self._buffer.extend(events)
                if len(self._buffer) >= self.capacity:
                    self._flush_locked()

    # -- spill handling ----------------------------------------------------

    def _flush_locked(self) -> None:
        assert self._buffer is not None and self.spill_path is not None
        if not self._buffer:
            return
        with open(self.spill_path, "a") as f:
            for ts, tid, ph, name, data in self._buffer:
                f.write(
                    json.dumps(
                        {"ts": ts, "tid": tid, "ph": ph, "name": name, "data": data},
                        default=str,
                    )
                )
                f.write("\n")
        self.spilled += len(self._buffer)
        self._buffer.clear()

    def flush(self) -> None:
        """Spill mode: force buffered events to the JSONL file."""
        if self._buffer is not None:
            with self._lock:
                self._flush_locked()

    # -- inspection --------------------------------------------------------

    def events(self) -> list[Event]:
        """The in-memory events, oldest first (spilled events excluded)."""
        if self._buffer is not None:
            with self._lock:
                return list(self._buffer)
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Ring mode: how many events the ring has overwritten."""
        if self._buffer is not None:
            return 0
        return max(0, self.emitted - len(self._ring))

    def stats(self) -> dict[str, Any]:
        """JSON-able summary, embedded in obs snapshots."""
        return {
            "mode": "spill" if self._buffer is not None else "ring",
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "spilled": self.spilled,
            "in_memory": len(self._buffer if self._buffer is not None else self._ring),
        }

    def clear(self) -> None:
        """Drop all in-memory events and reset the clock origin."""
        if self._buffer is not None:
            with self._lock:
                self._buffer.clear()
        else:
            self._ring.clear()
        self.emitted = 0
        self.spilled = 0
        self.t0 = time.perf_counter()


#: The process-wide active journal, or None.  Instrumented call sites
#: (tracer spans, registry counters, guard charges, chaos injections)
#: check this directly: ``j = journal.ACTIVE; j and j.emit(...)``.
ACTIVE: Optional[Journal] = None


def enable(
    capacity: int = DEFAULT_CAPACITY, spill_path: str | None = None
) -> Journal:
    """Install a fresh journal as the process-wide active one.

    Also turns :mod:`repro.obs` recording on — the journal hears events
    only from instrumented call sites that run while obs is enabled.
    """
    global ACTIVE
    ACTIVE = Journal(capacity=capacity, spill_path=spill_path)
    config.enabled(True)
    return ACTIVE


def disable() -> Optional[Journal]:
    """Deactivate and return the journal (flushed); obs stays enabled."""
    global ACTIVE
    j = ACTIVE
    ACTIVE = None
    if j is not None:
        j.flush()
    return j


def active() -> Optional[Journal]:
    return ACTIVE


@contextmanager
def journaled(
    capacity: int = DEFAULT_CAPACITY, spill_path: str | None = None
) -> Iterator[Journal]:
    """A journal (and obs recording) for the extent of a ``with`` block."""
    global ACTIVE
    previous = ACTIVE
    was_enabled = config.ENABLED
    j = Journal(capacity=capacity, spill_path=spill_path)
    ACTIVE = j
    config.enabled(True)
    try:
        yield j
    finally:
        j.flush()
        ACTIVE = previous
        config.enabled(was_enabled)


def _install_from_env() -> None:
    spec = os.environ.get("REPRO_OBS_JOURNAL", "")
    if not spec or spec in ("0", "false", "no"):
        return
    try:
        capacity = int(os.environ.get("REPRO_OBS_JOURNAL_CAPACITY", DEFAULT_CAPACITY))
    except ValueError:
        capacity = DEFAULT_CAPACITY
    spill = spec[len("spill:"):] if spec.startswith("spill:") else None
    enable(capacity=capacity, spill_path=spill)


_install_from_env()
