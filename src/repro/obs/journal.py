"""The structured event journal: a low-overhead append-only event stream.

While the tracer (:mod:`repro.obs.tracer`) keeps an in-memory span
*tree* per thread, the journal records a flat, time-ordered stream of
events — span begins/ends, counter deltas, guard charges, chaos
injections — that standard tooling can consume:

* :func:`repro.obs.export.chrome_trace` renders it in Chrome
  trace-event format, loadable by Perfetto (``ui.perfetto.dev``) and
  ``chrome://tracing``;
* :func:`repro.obs.export.collapsed_stacks` folds it into the
  collapsed-stack format flamegraph tools consume.

Each event is a plain tuple ``(ts, tid, ph, name, data)``:

* ``ts``   — ``time.perf_counter()`` seconds;
* ``tid``  — ``threading.get_ident()`` of the emitting thread;
* ``ph``   — the phase: ``"B"``/``"E"`` span begin/end, ``"C"`` counter
  value (post-increment), ``"G"`` guard charge, ``"I"`` instant
  (chaos injection, budget abort);
* ``name`` — span/counter/charge name;
* ``data`` — span attrs, counter value, charge amount, or detail dict.

Two storage modes:

* **ring** (default): a ``collections.deque(maxlen=capacity)`` — the
  newest ``capacity`` events are kept, older ones are dropped.  Append
  is lock-free (atomic under the GIL), which keeps the enabled-mode
  overhead within a few percent of the un-journaled run (enforced by
  ``benchmarks/bench_obs_journal_overhead.py``).
* **spill**: events accumulate in a buffer and are flushed to a JSONL
  file every ``capacity`` events, so arbitrarily long runs keep their
  full history on disk.

Everything is off by default.  Enable with :func:`enable` /
:func:`journaled`, or set ``REPRO_OBS_JOURNAL=1`` (ring mode) or
``REPRO_OBS_JOURNAL=spill:/path/to/events.jsonl`` in the environment.
Enabling the journal also enables :mod:`repro.obs` recording — the
span/counter call sites the journal listens to only fire while
``obs.enabled``.

**Spill rotation.**  A long-lived ``fast serve`` process would grow the
spill file without bound; setting ``max_bytes`` (env
``REPRO_OBS_JOURNAL_MAX_BYTES``, with ``REPRO_OBS_JOURNAL_KEEP``
rotated generations, default 3) caps it.  When a flush pushes the file
past the cap, the journal *closes every open span* in the outgoing file
with synthetic ``E`` events (data ``{"rotated": true}``), shifts
``path`` → ``path.1`` → … → ``path.N`` (dropping beyond N), and
*re-opens* the same spans with synthetic ``B`` events at the head of
the fresh file — so every file on disk, current or rotated, has
balanced B/E nesting per thread and loads into Perfetto on its own.
The check runs at flush granularity, so a file may overshoot the cap
by up to one buffered batch of lines.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from . import config

#: One journal event: (ts, tid, ph, name, data).
Event = tuple[float, int, str, str, Any]

#: Default in-memory capacity (events); ~tens of MB at worst.
DEFAULT_CAPACITY = 1 << 18


class Journal:
    """An append-only event stream (ring buffer or JSONL spill)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        spill_path: str | None = None,
        max_bytes: int | None = None,
        keep: int = 3,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.spill_path = spill_path
        self.max_bytes = max_bytes
        self.keep = max(1, keep)
        self.t0 = time.perf_counter()
        self.emitted = 0
        self.spilled = 0
        self.rotations = 0
        self._lock = threading.Lock()
        #: Spill mode: per-tid stacks of open span names, so rotation
        #: can close and re-open them at the file boundary.
        self._open_spans: dict[int, list[str]] = {}
        if spill_path is None:
            self._ring: deque[Event] = deque(maxlen=capacity)
            self._buffer: list[Event] | None = None
            self._spill_bytes = 0
        else:
            self._ring = deque()  # unused in spill mode
            self._buffer = []
            try:
                self._spill_bytes = os.path.getsize(spill_path)
            except OSError:
                self._spill_bytes = 0

    # -- the hot path ------------------------------------------------------

    def emit(self, ph: str, name: str, data: Any = None) -> None:
        """Append one event.  Cheap: two clock/ident calls and an append."""
        event = (time.perf_counter(), threading.get_ident(), ph, name, data)
        self.emitted += 1
        if self._buffer is None:
            # Ring mode: deque.append with maxlen is atomic under the GIL.
            self._ring.append(event)
        else:
            with self._lock:
                self._buffer.append(event)
                if len(self._buffer) >= self.capacity:
                    self._flush_locked()

    def extend(self, events: list[Event]) -> None:
        """Append pre-built events (already ``(ts, tid, ph, name, data)``).

        Used by :mod:`repro.svc.telemetry` to merge worker-side journal
        fragments — with timestamps already aligned to this process's
        ``perf_counter`` timeline and ``tid`` set to the worker's track
        id — into the supervisor's journal.
        """
        if not events:
            return
        self.emitted += len(events)
        if self._buffer is None:
            self._ring.extend(events)
        else:
            with self._lock:
                self._buffer.extend(events)
                if len(self._buffer) >= self.capacity:
                    self._flush_locked()

    # -- spill handling ----------------------------------------------------

    @staticmethod
    def _line(ts: float, tid: int, ph: str, name: str, data: Any) -> str:
        return json.dumps(
            {"ts": ts, "tid": tid, "ph": ph, "name": name, "data": data},
            default=str,
        ) + "\n"

    def _track_locked(self, tid: int, ph: str, name: str) -> None:
        """Maintain the per-tid open-span stacks rotation relies on."""
        if ph == "B":
            self._open_spans.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = self._open_spans.get(tid)
            if stack:
                stack.pop()

    def _flush_locked(self) -> None:
        assert self._buffer is not None and self.spill_path is not None
        if not self._buffer:
            return
        with open(self.spill_path, "a") as f:
            for ts, tid, ph, name, data in self._buffer:
                written = f.write(self._line(ts, tid, ph, name, data))
                self._spill_bytes += written
                self._track_locked(tid, ph, name)
        self.spilled += len(self._buffer)
        self._buffer.clear()
        if self.max_bytes is not None and self._spill_bytes >= self.max_bytes:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Close the current spill file balanced, shift, start fresh.

        Every span still open at the boundary gets a synthetic ``E``
        (innermost first) into the outgoing file and a synthetic ``B``
        (outermost first) into the fresh one, both tagged
        ``{"rotated": true}`` — per-file B/E nesting stays balanced on
        both sides of the cut.
        """
        assert self.spill_path is not None
        now = time.perf_counter()
        with open(self.spill_path, "a") as f:
            for tid, stack in self._open_spans.items():
                for name in reversed(stack):
                    f.write(self._line(now, tid, "E", name, {"rotated": True}))
        # Shift path.N-1 -> path.N ... path -> path.1; drop beyond keep.
        for i in range(self.keep, 0, -1):
            src = self.spill_path if i == 1 else f"{self.spill_path}.{i - 1}"
            dst = f"{self.spill_path}.{i}"
            try:
                os.replace(src, dst)
            except OSError:
                pass
        self._spill_bytes = 0
        with open(self.spill_path, "w") as f:
            for tid, stack in self._open_spans.items():
                for name in stack:
                    written = f.write(
                        self._line(now, tid, "B", name, {"rotated": True})
                    )
                    self._spill_bytes += written
        self.rotations += 1

    def flush(self) -> None:
        """Spill mode: force buffered events to the JSONL file."""
        if self._buffer is not None:
            with self._lock:
                self._flush_locked()

    # -- inspection --------------------------------------------------------

    def events(self) -> list[Event]:
        """The in-memory events, oldest first (spilled events excluded)."""
        if self._buffer is not None:
            with self._lock:
                return list(self._buffer)
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Ring mode: how many events the ring has overwritten."""
        if self._buffer is not None:
            return 0
        return max(0, self.emitted - len(self._ring))

    def stats(self) -> dict[str, Any]:
        """JSON-able summary, embedded in obs snapshots."""
        doc: dict[str, Any] = {
            "mode": "spill" if self._buffer is not None else "ring",
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "spilled": self.spilled,
            "in_memory": len(self._buffer if self._buffer is not None else self._ring),
        }
        if self._buffer is not None:
            doc["spill_bytes"] = self._spill_bytes
            doc["rotations"] = self.rotations
            if self.max_bytes is not None:
                doc["max_bytes"] = self.max_bytes
        return doc

    def clear(self) -> None:
        """Drop all in-memory events and reset the clock origin."""
        if self._buffer is not None:
            with self._lock:
                self._buffer.clear()
        else:
            self._ring.clear()
        self.emitted = 0
        self.spilled = 0
        self.t0 = time.perf_counter()


#: The process-wide active journal, or None.  Instrumented call sites
#: (tracer spans, registry counters, guard charges, chaos injections)
#: check this directly: ``j = journal.ACTIVE; j and j.emit(...)``.
ACTIVE: Optional[Journal] = None


def enable(
    capacity: int = DEFAULT_CAPACITY,
    spill_path: str | None = None,
    max_bytes: int | None = None,
    keep: int = 3,
) -> Journal:
    """Install a fresh journal as the process-wide active one.

    Also turns :mod:`repro.obs` recording on — the journal hears events
    only from instrumented call sites that run while obs is enabled.
    """
    global ACTIVE
    ACTIVE = Journal(
        capacity=capacity, spill_path=spill_path, max_bytes=max_bytes, keep=keep
    )
    config.enabled(True)
    return ACTIVE


def disable() -> Optional[Journal]:
    """Deactivate and return the journal (flushed); obs stays enabled."""
    global ACTIVE
    j = ACTIVE
    ACTIVE = None
    if j is not None:
        j.flush()
    return j


def active() -> Optional[Journal]:
    return ACTIVE


@contextmanager
def journaled(
    capacity: int = DEFAULT_CAPACITY,
    spill_path: str | None = None,
    max_bytes: int | None = None,
    keep: int = 3,
) -> Iterator[Journal]:
    """A journal (and obs recording) for the extent of a ``with`` block."""
    global ACTIVE
    previous = ACTIVE
    was_enabled = config.ENABLED
    j = Journal(
        capacity=capacity, spill_path=spill_path, max_bytes=max_bytes, keep=keep
    )
    ACTIVE = j
    config.enabled(True)
    try:
        yield j
    finally:
        j.flush()
        ACTIVE = previous
        config.enabled(was_enabled)


def _env_int(name: str, default: int | None) -> int | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _install_from_env() -> None:
    spec = os.environ.get("REPRO_OBS_JOURNAL", "")
    if not spec or spec in ("0", "false", "no"):
        return
    capacity = _env_int("REPRO_OBS_JOURNAL_CAPACITY", DEFAULT_CAPACITY)
    assert capacity is not None
    spill = spec[len("spill:"):] if spec.startswith("spill:") else None
    max_bytes = _env_int("REPRO_OBS_JOURNAL_MAX_BYTES", None)
    if max_bytes is not None and max_bytes <= 0:
        max_bytes = None
    keep = _env_int("REPRO_OBS_JOURNAL_KEEP", 3) or 3
    enable(capacity=capacity, spill_path=spill, max_bytes=max_bytes, keep=keep)


_install_from_env()
