"""Observability for the reproduction: spans, metrics, reports.

Usage::

    from repro import obs

    obs.enabled(True)                 # or REPRO_OBS=1, or `with obs.observed():`
    with obs.span("compose", t1="a", t2="b") as sp:
        ...
        sp.set(states=42)
    obs.counter("solver.sat_queries").inc()

    print(obs.render_text())          # span tree + metric table
    doc = obs.snapshot()              # schema-versioned dict (JSON-able)

Everything is **off by default**; when disabled, :func:`span` returns a
shared no-op object and instrumented call sites skip recording behind a
single flag check (see :mod:`repro.obs.config`), so the instrumented
hot loops stay within noise of un-instrumented timings.

Submodules: :mod:`~repro.obs.config` (the switch),
:mod:`~repro.obs.tracer` (thread-local span trees),
:mod:`~repro.obs.metrics` (counter/gauge/histogram registry),
:mod:`~repro.obs.report` (text/JSON emitters),
:mod:`~repro.obs.journal` (structured event stream),
:mod:`~repro.obs.export` (Chrome/Perfetto traces & flamegraphs),
:mod:`~repro.obs.diff` (snapshot diffing & the CI regression gate),
:mod:`~repro.obs.provenance` (derivation recording for verdicts).
"""

from __future__ import annotations

# NB: `diff` is deliberately not imported here — it doubles as the
# `python -m repro.obs.diff` CLI, and importing it from the package
# would trigger the runpy double-import warning in that mode.
from . import export, journal, live, provenance
from .config import enabled, is_enabled, observed
from .export import chrome_trace, collapsed_stacks, write_chrome_trace, write_flamegraph
from .journal import Journal, journaled
from .live import LiveStats, RollingWindow, render_prometheus
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    counter,
    gauge,
    histogram,
)
from .report import (
    SCHEMA,
    render_json,
    render_metrics,
    render_text,
    render_trace,
    snapshot,
)
from .tracer import (
    NULL_SPAN,
    Span,
    current,
    current_trace_id,
    instant,
    reset_trace,
    span,
    trace,
    trace_context,
)


def reset() -> None:
    """Zero all registered metrics, drop this thread's trace, and clear
    the active journal (if any)."""
    REGISTRY.reset()
    reset_trace()
    j = journal.ACTIVE
    if j is not None:
        j.clear()


__all__ = [
    "journal",
    "export",
    "provenance",
    "Journal",
    "journaled",
    "chrome_trace",
    "collapsed_stacks",
    "write_chrome_trace",
    "write_flamegraph",
    "enabled",
    "is_enabled",
    "observed",
    "span",
    "current",
    "current_trace_id",
    "trace_context",
    "instant",
    "trace",
    "reset_trace",
    "Span",
    "NULL_SPAN",
    "live",
    "LiveStats",
    "RollingWindow",
    "render_prometheus",
    "counter",
    "gauge",
    "histogram",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "SCHEMA",
    "snapshot",
    "render_json",
    "render_text",
    "render_trace",
    "render_metrics",
    "reset",
]
