"""Observability for the reproduction: spans, metrics, reports.

Usage::

    from repro import obs

    obs.enabled(True)                 # or REPRO_OBS=1, or `with obs.observed():`
    with obs.span("compose", t1="a", t2="b") as sp:
        ...
        sp.set(states=42)
    obs.counter("solver.sat_queries").inc()

    print(obs.render_text())          # span tree + metric table
    doc = obs.snapshot()              # schema-versioned dict (JSON-able)

Everything is **off by default**; when disabled, :func:`span` returns a
shared no-op object and instrumented call sites skip recording behind a
single flag check (see :mod:`repro.obs.config`), so the instrumented
hot loops stay within noise of un-instrumented timings.

Submodules: :mod:`~repro.obs.config` (the switch),
:mod:`~repro.obs.tracer` (thread-local span trees),
:mod:`~repro.obs.metrics` (counter/gauge/histogram registry),
:mod:`~repro.obs.report` (text/JSON emitters).
"""

from __future__ import annotations

from .config import enabled, is_enabled, observed
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    counter,
    gauge,
    histogram,
)
from .report import (
    SCHEMA,
    render_json,
    render_metrics,
    render_text,
    render_trace,
    snapshot,
)
from .tracer import NULL_SPAN, Span, current, reset_trace, span, trace


def reset() -> None:
    """Zero all registered metrics and drop this thread's trace."""
    REGISTRY.reset()
    reset_trace()


__all__ = [
    "enabled",
    "is_enabled",
    "observed",
    "span",
    "current",
    "trace",
    "reset_trace",
    "Span",
    "NULL_SPAN",
    "counter",
    "gauge",
    "histogram",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "SCHEMA",
    "snapshot",
    "render_json",
    "render_text",
    "render_trace",
    "render_metrics",
    "reset",
]
