"""``repro.obs.live``: rolling-window telemetry for long-running servers.

Everything else in :mod:`repro.obs` describes a *run*: counters that
grow forever, histograms over every observation since process start,
journals you export after the fact.  A serving process has no "after
the fact" — and once workloads stream unboundedly, whole-run aggregates
stop meaning anything (a p95 over six hours of traffic says nothing
about the last minute's brownout).  This module keeps *recent* truth:

* :class:`RollingWindow` — a ring of fixed-width time buckets, each
  holding counter deltas and a bounded latency sample.  Advancing the
  clock lazily retires expired buckets, so a window's totals, rates,
  and quantiles always describe exactly the last ``span`` seconds, in
  O(buckets) with no background thread.

* :class:`LiveStats` — the serving aggregator: one set of windows
  (default 10 s / 1 min / 5 min) per dimension value, where dimensions
  are the overall stream, the job *kind*, and the *tenant*.  Records
  served/shed/error events with latencies; snapshots to a JSON-able
  dict (the ``stats`` request kind and ``fast serve --stats``) and to
  flat gauge samples for the ``/metrics`` exposition.

* :func:`render_prometheus` — Prometheus text exposition (version
  0.0.4) over the pieces a server holds: its admission-gate ledger,
  breaker states, live windows, and (optionally) the process-wide
  metric registry.  The gate ledger — not the obs registry — feeds the
  ``svc_gate_*`` families, so the exposition agrees exactly with the
  wire-level served/shed partition even with observability off.

**Bucket math.**  A window of ``span`` seconds uses ``buckets`` ring
slots of width ``span / buckets``.  An event at time ``t`` lands in
absolute slot ``i = floor(t / width)``, stored at ``i % buckets``; the
slot remembers ``i`` so a later reader can tell a live bucket from a
stale one left by a previous lap of the ring.  Reads sum only slots
whose absolute index is within the last ``buckets`` slots of *now* —
expired buckets are skipped (and reused on write), so totals decay in
steps of one bucket width.  The reported window therefore covers
between ``span - width`` and ``span`` seconds; finer decay is bought
with more buckets, not more bookkeeping.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Any, Callable, Iterable, Optional

from .metrics import percentile

#: Default windows: (label, span seconds).  Ten buckets each — totals
#: decay in 1 s / 6 s / 30 s steps respectively.
DEFAULT_WINDOWS: tuple[tuple[str, float], ...] = (
    ("10s", 10.0),
    ("1m", 60.0),
    ("5m", 300.0),
)

#: Latency samples kept per bucket (a bounded everything-else-dropped
#: prefix; with 10 buckets a window quantile sees up to 640 samples).
BUCKET_SAMPLES = 64


class _Bucket:
    """One ring slot: counter deltas + a bounded latency sample."""

    __slots__ = ("index", "counts", "samples", "observed")

    def __init__(self) -> None:
        self.index = -1  # absolute slot index; -1 = never used
        self.counts: dict[str, int] = {}
        self.samples: list[float] = []
        self.observed = 0

    def reset(self, index: int) -> None:
        self.index = index
        self.counts.clear()
        self.samples.clear()
        self.observed = 0


class RollingWindow:
    """Counters + latency quantiles over the trailing ``span`` seconds.

    Thread-safe; all operations are O(buckets).  The clock is
    injectable so tests can march time deterministically.
    """

    def __init__(
        self,
        span: float,
        buckets: int = 10,
        clock: Callable[[], float] = time.monotonic,
        bucket_samples: int = BUCKET_SAMPLES,
    ) -> None:
        if span <= 0:
            raise ValueError(f"span must be > 0, got {span}")
        if buckets < 2:
            raise ValueError(f"need >= 2 buckets, got {buckets}")
        self.span = float(span)
        self.buckets = buckets
        self.width = self.span / buckets
        self.clock = clock
        self.bucket_samples = bucket_samples
        self._ring = [_Bucket() for _ in range(buckets)]
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------

    def _bucket_now(self) -> _Bucket:
        index = int(self.clock() / self.width)
        bucket = self._ring[index % self.buckets]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    def inc(self, key: str, n: int = 1) -> None:
        with self._lock:
            bucket = self._bucket_now()
            bucket.counts[key] = bucket.counts.get(key, 0) + n

    def observe(self, value: float) -> None:
        """Record one latency sample into the current bucket."""
        with self._lock:
            bucket = self._bucket_now()
            bucket.observed += 1
            if len(bucket.samples) < self.bucket_samples:
                bucket.samples.append(value)

    # -- reads -------------------------------------------------------------

    def _live(self) -> Iterable[_Bucket]:
        floor = int(self.clock() / self.width) - self.buckets + 1
        for bucket in self._ring:
            if bucket.index >= floor:
                yield bucket

    def total(self, key: str) -> int:
        with self._lock:
            return sum(b.counts.get(key, 0) for b in self._live())

    def totals(self) -> dict[str, int]:
        out: dict[str, int] = {}
        with self._lock:
            for bucket in self._live():
                for key, n in bucket.counts.items():
                    out[key] = out.get(key, 0) + n
        return out

    def rate(self, key: str) -> float:
        """Events per second for ``key`` over the window span."""
        return self.total(key) / self.span

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        with self._lock:
            samples = sorted(
                v for b in self._live() for v in b.samples
            )
        return {f"p{int(q * 100)}": percentile(samples, q) for q in qs}

    def sample_count(self) -> int:
        with self._lock:
            return sum(b.observed for b in self._live())

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view: totals, per-second rates, latency quantiles."""
        totals = self.totals()
        doc: dict[str, Any] = {
            "span_s": self.span,
            "counts": totals,
            "rates": {k: round(v / self.span, 4) for k, v in totals.items()},
        }
        doc.update(
            {k: round(v, 6) for k, v in self.quantiles().items()}
        )
        return doc


class LiveStats:
    """Per-kind / per-tenant rolling serving statistics.

    One :class:`RollingWindow` per (window label, dimension value);
    dimensions come into existence on first use, so idle tenants cost
    nothing.  The special dimension value ``"all"`` aggregates the
    whole stream.  Event keys: ``served``, ``error`` (served with
    outcome ERROR), ``shed`` plus ``shed.<reason>``.
    """

    def __init__(
        self,
        windows: tuple[tuple[str, float], ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        buckets: int = 10,
    ) -> None:
        self.windows = windows
        self.clock = clock
        self.buckets = buckets
        self._lock = threading.Lock()
        # (window label) -> (dimension key like "all" / "kind:run" /
        # "tenant:team-a") -> RollingWindow
        self._wins: dict[str, dict[str, RollingWindow]] = {
            label: {} for label, _ in windows
        }

    def _window(self, label: str, span: float, dim: str) -> RollingWindow:
        wins = self._wins[label]
        win = wins.get(dim)
        if win is None:
            with self._lock:
                win = wins.setdefault(
                    dim, RollingWindow(span, self.buckets, self.clock)
                )
        return win

    def _each(self, dims: Iterable[str]):
        for label, span in self.windows:
            for dim in dims:
                yield self._window(label, span, dim)

    @staticmethod
    def _dims(kind: Optional[str], tenant: Optional[str]) -> list[str]:
        dims = ["all"]
        if kind:
            dims.append(f"kind:{kind}")
        if tenant:
            dims.append(f"tenant:{tenant}")
        return dims

    # -- recording ---------------------------------------------------------

    def record_served(
        self,
        kind: str,
        tenant: str,
        duration: float,
        outcome: str = "",
    ) -> None:
        """One answered job (any verdict; ERROR also counts ``error``)."""
        for win in self._each(self._dims(kind, tenant)):
            win.inc("served")
            if outcome == "ERROR":
                win.inc("error")
            win.observe(duration)

    def record_shed(
        self, reason: str, tenant: str = "", kind: str = ""
    ) -> None:
        for win in self._each(self._dims(kind, tenant)):
            win.inc("shed")
            win.inc(f"shed.{reason}")

    # -- reading -----------------------------------------------------------

    def tenants(self) -> list[str]:
        seen: set[str] = set()
        for wins in self._wins.values():
            seen.update(
                d[len("tenant:"):] for d in wins if d.startswith("tenant:")
            )
        return sorted(seen)

    def kinds(self) -> list[str]:
        seen: set[str] = set()
        for wins in self._wins.values():
            seen.update(
                d[len("kind:"):] for d in wins if d.startswith("kind:")
            )
        return sorted(seen)

    def window(self, label: str, dim: str = "all") -> Optional[RollingWindow]:
        return self._wins.get(label, {}).get(dim)

    def snapshot(self) -> dict[str, Any]:
        """The JSON payload of the ``stats`` request kind.

        ``{"windows": {label: {dim: window-snapshot}}}`` with dims
        grouped as ``all`` / ``kind`` / ``tenant`` maps.
        """
        out: dict[str, Any] = {"windows": {}}
        for label, _span in self.windows:
            wins = self._wins[label]
            grouped: dict[str, Any] = {"all": None, "kind": {}, "tenant": {}}
            for dim, win in sorted(wins.items()):
                snap = win.snapshot()
                if dim == "all":
                    grouped["all"] = snap
                elif dim.startswith("kind:"):
                    grouped["kind"][dim[len("kind:"):]] = snap
                elif dim.startswith("tenant:"):
                    grouped["tenant"][dim[len("tenant:"):]] = snap
            out["windows"][label] = grouped
        return out

    def gauge_samples(self) -> list[tuple[str, dict[str, str], float]]:
        """Flat ``(name, labels, value)`` samples for the exposition."""
        samples: list[tuple[str, dict[str, str], float]] = []
        for label, _span in self.windows:
            for dim, win in sorted(self._wins[label].items()):
                labels = {"window": label}
                if dim.startswith("kind:"):
                    labels["kind"] = dim[len("kind:"):]
                elif dim.startswith("tenant:"):
                    labels["tenant"] = dim[len("tenant:"):]
                elif dim != "all":
                    continue
                for key, total in sorted(win.totals().items()):
                    if key.startswith("shed."):
                        continue  # per-reason totals ride the gate ledger
                    samples.append(
                        (f"svc_window_{key}", dict(labels), float(total))
                    )
                if win.sample_count():
                    for q, value in win.quantiles().items():
                        qlabels = dict(labels)
                        qlabels["quantile"] = f"0.{q[1:]}"
                        samples.append(
                            ("svc_window_latency_seconds", qlabels, value)
                        )
        return samples


# -- Prometheus text exposition ----------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "") -> str:
    """A registry metric name as a legal Prometheus metric name."""
    out = _NAME_FIX.sub("_", prefix + name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


class _Exposition:
    """Accumulates samples; renders TYPE lines once per family."""

    def __init__(self) -> None:
        self._families: dict[str, tuple[str, list[str]]] = {}
        self._order: list[str] = []

    def add(
        self,
        name: str,
        kind: str,
        value: float,
        labels: Optional[dict[str, str]] = None,
        help_text: Optional[str] = None,
    ) -> None:
        family = self._families.get(name)
        if family is None:
            lines: list[str] = []
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            family = (kind, lines)
            self._families[name] = family
            self._order.append(name)
        _kind, lines = family
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            lines.append(f"{name}{{{rendered}}} {_fmt_value(value)}")
        else:
            lines.append(f"{name} {_fmt_value(value)}")

    def render(self) -> str:
        out: list[str] = []
        for name in self._order:
            out.extend(self._families[name][1])
        return "\n".join(out) + "\n"


#: Circuit-breaker states, encoded as the value of a one-hot gauge.
_BREAKER_STATES = ("closed", "open", "half-open")


def render_prometheus(
    *,
    gate: Any = None,
    breakers: Any = None,
    live: Optional[LiveStats] = None,
    registry: Any = None,
    extra: Optional[dict[str, float]] = None,
    pool: Any = None,
) -> str:
    """The server's state in Prometheus text exposition format.

    * ``gate`` — an :class:`~repro.svc.gate.AdmissionGate`; its own
      ledger feeds ``svc_gate_*`` so the exposition matches the wire
      exactly, independent of the obs flag.
    * ``breakers`` — a :class:`~repro.svc.breaker.BreakerRegistry`;
      one-hot ``svc_breaker_state{kind=...,state=...}`` gauges.
    * ``live`` — a :class:`LiveStats`; window totals and latency
      quantile gauges.
    * ``registry`` — an :class:`~repro.obs.metrics.Registry`; every
      registered counter/gauge/histogram, name-sanitized under the
      ``repro_`` prefix (histograms as quantile gauges + _count/_sum).
    * ``extra`` — flat name -> value gauges (uptime, build info).
    * ``pool`` — a :class:`~repro.svc.pool.WorkerPool`; per-worker
      lifecycle gauges (``svc_worker_rss_bytes``,
      ``svc_worker_generation``, ``svc_worker_jobs_served``, labelled
      by worker id) and ``svc_recycles_total{reason=...}`` from the
      pool's own ledger — like the gate, valid with obs off.
    """
    exp = _Exposition()
    if pool is not None:
        snapshot = pool.lifecycle_snapshot()
        for row in snapshot["workers"]:
            labels = {"worker": str(row["worker"])}
            exp.add(
                "svc_worker_generation", "gauge",
                float(row["generation"]), labels=labels,
                help_text="never-reused generation number per worker slot",
            )
            exp.add(
                "svc_worker_jobs_served", "gauge",
                float(row["jobs_served"]), labels=labels,
                help_text="jobs served by the current generation",
            )
            if row["rss_bytes"] is not None:
                exp.add(
                    "svc_worker_rss_bytes", "gauge",
                    float(row["rss_bytes"]), labels=labels,
                    help_text="worker-self-reported resident set size",
                )
            if row["prewarm_ms"] is not None:
                exp.add(
                    "svc_worker_prewarm_ms", "gauge",
                    float(row["prewarm_ms"]), labels=labels,
                    help_text="artifact-cache prewarm time of the "
                    "current generation",
                )
        for reason, count in sorted(snapshot["recycles"].items()):
            exp.add(
                "svc_recycles_total", "counter", float(count),
                labels={"reason": reason},
                help_text="proactive worker recycles by threshold",
            )
    if gate is not None:
        health = gate.health(breakers)
        counters = health["counters"]
        exp.add(
            "svc_gate_ready", "gauge", 1.0 if health["ready"] else 0.0,
            help_text="1 while the gate admits new requests",
        )
        exp.add("svc_gate_uptime_seconds", "gauge", health["uptime"])
        exp.add("svc_gate_queue_depth", "gauge", health["queue_depth"])
        exp.add("svc_gate_inflight", "gauge", health["inflight"])
        exp.add(
            "svc_gate_admitted_total", "counter", counters["admitted"],
            help_text="requests past admission control",
        )
        exp.add(
            "svc_gate_served_total", "counter", counters["served"],
            help_text="requests answered by a worker (any outcome)",
        )
        for reason, count in sorted(counters["shed"].items()):
            exp.add(
                "svc_gate_shed_total", "counter", count,
                labels={"reason": reason},
                help_text="requests refused with a shed response",
            )
    if breakers is not None:
        for kind, breaker in sorted(
            getattr(breakers, "breakers", {}).items()
        ):
            for state in _BREAKER_STATES:
                exp.add(
                    "svc_breaker_state", "gauge",
                    1.0 if breaker.state == state else 0.0,
                    labels={"kind": kind, "state": state},
                    help_text="one-hot circuit-breaker state per job kind",
                )
    if live is not None:
        for name, labels, value in live.gauge_samples():
            exp.add(name, "gauge", value, labels=labels)
    if registry is not None:
        from .metrics import Counter, Gauge, Histogram

        for name in sorted(registry._metrics):
            metric = registry._metrics[name]
            pname = metric_name(name, prefix="repro_")
            if isinstance(metric, Counter):
                exp.add(pname, "counter", metric.value)
            elif isinstance(metric, Gauge):
                exp.add(pname, "gauge", metric.value)
            elif isinstance(metric, Histogram):
                snap = metric.snapshot()
                for q in ("p50", "p95", "p99"):
                    exp.add(
                        pname, "gauge", snap[q],
                        labels={"quantile": f"0.{q[1:]}"},
                    )
                exp.add(f"{pname}_count", "counter", snap["count"])
                exp.add(f"{pname}_sum", "counter", snap["sum"])
    for name, value in sorted((extra or {}).items()):
        exp.add(metric_name(name), "gauge", value)
    return exp.render()


def parse_exposition(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """A tiny exposition-format parser (tests and CI validation).

    Returns ``{metric_name: {labels-as-sorted-tuple: value}}``.  Raises
    ``ValueError`` on malformed lines, duplicate ``TYPE`` declarations,
    or samples for a family declared after its samples started — enough
    rigor to catch a broken renderer, not a full Prometheus parser.
    """
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    typed: set[str] = set()
    sampled: set[str] = set()
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$"
    )
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: bad TYPE line: {line!r}")
            name = parts[2]
            if name in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            if name in sampled:
                raise ValueError(
                    f"line {lineno}: TYPE for {name} after its samples"
                )
            typed.add(name)
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if not m:
            raise ValueError(f"line {lineno}: bad sample line: {line!r}")
        name, _braced, raw_labels, raw_value = m.groups()
        labels: dict[str, str] = {}
        if raw_labels:
            pos = 0
            while pos < len(raw_labels):
                lm = label_re.match(raw_labels, pos)
                if not lm:
                    raise ValueError(
                        f"line {lineno}: bad labels: {raw_labels!r}"
                    )
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                pos = lm.end()
                if pos < len(raw_labels):
                    if raw_labels[pos] != ",":
                        raise ValueError(
                            f"line {lineno}: bad labels: {raw_labels!r}"
                        )
                    pos += 1
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {raw_value!r}"
            ) from exc
        sampled.add(name)
        key = tuple(sorted(labels.items()))
        family = out.setdefault(name, {})
        if key in family:
            raise ValueError(
                f"line {lineno}: duplicate sample {name}{dict(key)}"
            )
        family[key] = value
    return out
