"""Journal exporters: Chrome/Perfetto trace-event JSON and flamegraphs.

* :func:`chrome_trace` renders a :class:`~repro.obs.journal.Journal`
  into the Chrome trace-event format — a ``{"traceEvents": [...]}``
  document with ``B``/``E`` duration events, ``C`` counter events, and
  ``i`` instant events — loadable in Perfetto (``ui.perfetto.dev``)
  and ``chrome://tracing``.
* :func:`collapsed_stacks` folds the same journal into collapsed-stack
  lines (``root;child;leaf <self-time-us>``) consumed by flamegraph
  tools (``flamegraph.pl``, speedscope, inferno).

Both exporters sanitize the stream: a ring buffer may have overwritten
the ``B`` of a recorded ``E`` (or vice versa at the tail), so unmatched
``E`` events are dropped and still-open ``B`` events are synthetically
closed at the last observed timestamp.  The output therefore always has
balanced nesting and per-thread monotonic timestamps, whatever the ring
truncated.

**Worker tracks.**  :mod:`repro.svc.telemetry` merges subprocess-worker
journal fragments into the supervisor's journal with ``tid`` set to the
worker's pid and one ``M``-phase track-registration event per merged
blob (``data = {"pid": ..., "name": ...}``).  :func:`chrome_trace`
turns those registrations into Chrome ``process_name``/``thread_name``
metadata events and routes the registered tids to their own ``pid`` in
the output, so every worker appears as its own process track in
Perfetto — with its ``svc.job`` spans enclosing the worker-side
solver/automata spans.  Balancing is per track, so a worker killed
mid-job can never corrupt the supervisor's own track.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .journal import Event, Journal, ACTIVE

#: Synthetic process id for trace events (single-process system).
PID = 1


def _resolve_events(
    journal: Optional[Journal], events: Optional[list[Event]]
) -> tuple[list[Event], float]:
    if events is None:
        j = journal if journal is not None else ACTIVE
        if j is None:
            return [], 0.0
        events = j.events()
        t0 = j.t0
    else:
        t0 = events[0][0] if events else 0.0
    if events:
        # Merged worker events may carry (aligned) timestamps earlier
        # than anything the host emitted; scan so no event goes negative.
        t0 = min(t0, min(ev[0] for ev in events))
    return events, t0


def _sanitize(events: list[Event]) -> dict[int, list[Event]]:
    """Split by thread and balance B/E pairs per thread.

    Unmatched ``E`` events (their ``B`` was overwritten by the ring) are
    dropped; unmatched ``B`` events get a synthetic ``E`` at the last
    timestamp seen on that thread.
    """
    by_tid: dict[int, list[Event]] = {}
    stacks: dict[int, list[Event]] = {}
    last_ts: dict[int, float] = {}
    for ev in events:
        ts, tid, ph, name, data = ev
        out = by_tid.setdefault(tid, [])
        last_ts[tid] = max(last_ts.get(tid, ts), ts)
        if ph == "B":
            stacks.setdefault(tid, []).append(ev)
            out.append(ev)
        elif ph == "E":
            stack = stacks.get(tid)
            if stack:
                stack.pop()
                out.append(ev)
            # else: orphan E (B lost to the ring) -> drop
        else:
            out.append(ev)
    # Close any span still open at the end of the stream.
    for tid, stack in stacks.items():
        ts = last_ts.get(tid, 0.0)
        for open_b in reversed(stack):
            by_tid[tid].append((ts, tid, "E", open_b[3], {"synthetic": True}))
    return by_tid


def _us(ts: float, t0: float) -> float:
    return round((ts - t0) * 1e6, 3)


def chrome_trace(
    journal: Optional[Journal] = None,
    *,
    events: Optional[list[Event]] = None,
) -> dict[str, Any]:
    """The journal as a Chrome trace-event document (a JSON-able dict).

    Defaults to the active journal; pass ``journal=`` or raw
    ``events=`` to export something else.
    """
    events, t0 = _resolve_events(journal, events)
    out: list[dict[str, Any]] = []
    # Worker-track registrations ("M" events): tid -> {"pid", "name"}.
    tracks: dict[int, dict[str, Any]] = {}
    for _ts, tid, ph, _name, data in events:
        if ph == "M" and isinstance(data, dict) and "pid" in data:
            tracks[tid] = data
    if tracks:
        out.append(
            {"name": "process_name", "ph": "M", "pid": PID,
             "args": {"name": "fast supervisor"}}
        )
        for tid, meta in sorted(tracks.items()):
            wpid = int(meta["pid"])
            label = str(meta.get("name", f"svc-worker {wpid}"))
            out.append(
                {"name": "process_name", "ph": "M", "pid": wpid,
                 "args": {"name": label}}
            )
            out.append(
                {"name": "thread_name", "ph": "M", "pid": wpid, "tid": tid,
                 "args": {"name": label}}
            )
    guard_totals: dict[tuple[int, str], float] = {}
    for tid, evs in sorted(_sanitize(events).items()):
        track_pid = int(tracks[tid]["pid"]) if tid in tracks else PID
        for ts, _tid, ph, name, data in evs:
            if ph == "M":  # consumed by the registration pre-scan
                continue
            e: dict[str, Any] = {
                "name": name,
                "ph": ph,
                "ts": _us(ts, t0),
                "pid": track_pid,
                "tid": tid,
            }
            if ph in ("B", "E"):
                if isinstance(data, dict) and data:
                    e["args"] = {k: _jsonable(v) for k, v in data.items()}
            elif ph == "C":
                e["args"] = {"value": data}
            elif ph == "G":
                # Guard charges are deltas; accumulate them into a
                # running total so budget consumption is visible as a
                # counter track in the viewer.
                key = (tid, name)
                guard_totals[key] = guard_totals.get(key, 0) + (data or 1)
                e["ph"] = "C"
                e["name"] = f"guard.{name}"
                e["args"] = {"value": guard_totals[key]}
            else:  # "I" and anything future -> instant event
                e["ph"] = "i"
                e["s"] = "t"
                if isinstance(data, dict) and data:
                    e["args"] = {k: _jsonable(v) for k, v in data.items()}
            out.append(e)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def events_for_trace(
    trace_id: str,
    journal: Optional[Journal] = None,
    *,
    events: Optional[list[Event]] = None,
) -> list[Event]:
    """The journal events belonging to one request, by ``trace_id``.

    A span/instant belongs to the request when its data dict carries
    the id (the tracer's trace context stamps it); an ``E`` event whose
    matching ``B`` was stamped belongs too, because B/E share the live
    attrs dict.  Feed the result back to :func:`chrome_trace` via
    ``events=`` to export a single request's merged track::

        doc = chrome_trace(events=events_for_trace("req-7"))
    """
    events, _t0 = _resolve_events(journal, events)
    return [
        ev
        for ev in events
        if isinstance(ev[4], dict) and ev[4].get("trace_id") == trace_id
    ]


def write_chrome_trace(path: str, journal: Optional[Journal] = None) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(chrome_trace(journal), f)
        f.write("\n")


def collapsed_stacks(
    journal: Optional[Journal] = None,
    *,
    events: Optional[list[Event]] = None,
) -> list[str]:
    """The journal folded into collapsed-stack flamegraph lines.

    Each line is ``frame;frame;frame <self-time-us>``: the *self* time
    of that stack (span time minus child-span time), in integer
    microseconds.  Identical stacks across threads merge.
    """
    events, _t0 = _resolve_events(journal, events)
    totals: dict[tuple[str, ...], float] = {}
    for _tid, evs in sorted(_sanitize(events).items()):
        # stack of [name, begin_ts, child_time]
        stack: list[list[Any]] = []
        for ts, _t, ph, name, _data in evs:
            if ph == "B":
                stack.append([name, ts, 0.0])
            elif ph == "E" and stack:
                frame_name, begin, child_time = stack.pop()
                total = max(0.0, ts - begin)
                self_time = max(0.0, total - child_time)
                if stack:
                    stack[-1][2] += total
                path = tuple(f[0] for f in stack) + (frame_name,)
                totals[path] = totals.get(path, 0.0) + self_time
    return [
        ";".join(path) + f" {int(round(seconds * 1e6))}"
        for path, seconds in sorted(totals.items())
    ]


def write_flamegraph(path: str, journal: Optional[Journal] = None) -> None:
    """Write :func:`collapsed_stacks` lines to ``path``."""
    with open(path, "w") as f:
        for line in collapsed_stacks(journal):
            f.write(line)
            f.write("\n")
