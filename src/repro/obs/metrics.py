"""Named counters, gauges, and histograms.

The module-level registry maps metric names (dotted, e.g.
``solver.sat_queries``) to metric objects.  Instrumented modules obtain
their handles once at import time::

    _SAT = metrics.counter("solver.sat_queries")
    ...
    if config.ENABLED:
        _SAT.inc()

:func:`reset` zeroes every registered metric **in place**, so handles
held by instrumented modules stay valid across resets.

Updates are thread-safe: each metric carries its own lock, so worker
threads hammering the same counter cannot lose increments or corrupt a
histogram's aggregates (``tests/obs/test_thread_safety.py``).

Registered metrics know their ``name`` and, while a journal
(:mod:`repro.obs.journal`) is active, counter increments emit ``C``
events carrying the post-increment value — that is how counter tracks
appear in exported Chrome/Perfetto traces.  Stand-alone metrics (e.g.
the private per-solver counters in
:class:`~repro.smt.solver.SolverStats`) have ``name=None`` and stay out
of the journal.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Optional, Sequence, Union

from . import journal

Number = Union[int, float]


def percentile(sorted_values: Sequence[Number], q: float) -> float:
    """The ``q``-quantile (0..1) of an already-sorted sequence.

    Linear interpolation between closest ranks; 0.0 for an empty
    sequence.  Shared by :class:`Histogram` quantiles and the per-kind
    latency summaries in :mod:`repro.svc`.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    idx = q * (len(sorted_values) - 1)
    lo = int(idx)
    frac = idx - lo
    if lo + 1 >= len(sorted_values):
        return float(sorted_values[-1])
    return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "name", "_lock")

    def __init__(self, name: Optional[str] = None) -> None:
        self.value: int = 0
        self.name = name
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n
            value = self.value
        if self.name is not None:
            j = journal.ACTIVE
            if j is not None:
                j.emit("C", self.name, value)

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins value (sizes, rates, levels)."""

    __slots__ = ("value", "name", "_lock")

    def __init__(self, name: Optional[str] = None) -> None:
        self.value: Number = 0
        self.name = name
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        """Atomic relative update (queue depths, in-flight counts).

        Unlike :meth:`set`, concurrent adders must not lose updates —
        the serving gate's queue-depth gauge is bumped from many
        connection threads and decremented by the dispatcher.  Journal
        ``C`` events carry the post-update level, so the depth shows up
        as a counter track in Perfetto exports.
        """
        with self._lock:
            self.value += delta
            value = self.value
        if self.name is not None:
            j = journal.ACTIVE
            if j is not None:
                j.emit("C", self.name, value)

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Streaming aggregate of observed values, with quantiles.

    Besides the running count/sum/min/max, a fixed-size **reservoir**
    (Vitter's algorithm R, seeded deterministically) keeps a uniform
    sample of everything observed, so :meth:`quantile` can report
    p50/p95/p99 without storing the full stream.  While ``count`` is at
    most :data:`RESERVOIR_SIZE` the sample is the whole population and
    the quantiles are exact.
    """

    RESERVOIR_SIZE = 512

    __slots__ = (
        "count", "total", "min", "max", "name",
        "reservoir_size", "_samples", "_rng", "_lock",
    )

    def __init__(
        self,
        name: Optional[str] = None,
        reservoir_size: int = RESERVOIR_SIZE,
    ) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Number | None = None
        self.max: Number | None = None
        self.name = name
        self.reservoir_size = reservoir_size
        self._samples: list[Number] = []
        self._rng = random.Random(0x5EED)
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._sample_locked(value)

    def _sample_locked(self, value: Number) -> None:
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
        else:
            i = self._rng.randrange(self.count)
            if i < self.reservoir_size:
                self._samples[i] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (exact while count <= reservoir)."""
        with self._lock:
            samples = sorted(self._samples)
        return percentile(samples, q)

    def merge(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Used by the supervisor to absorb worker-side histograms shipped
        in telemetry blobs: aggregates add up exactly; the shipped
        sample list is folded into this reservoir (weighted by the
        merged count), keeping the quantiles approximately right.
        """
        count = state.get("count", 0)
        if not isinstance(count, int) or count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += state.get("sum", 0)
            for bound, better in (("min", min), ("max", max)):
                v = state.get(bound)
                if isinstance(v, (int, float)):
                    mine = getattr(self, bound)
                    setattr(self, bound, v if mine is None else better(mine, v))
            for value in state.get("samples", ())[: self.reservoir_size]:
                if isinstance(value, (int, float)):
                    self._sample_locked(value)

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0
            self.min = None
            self.max = None
            self._samples.clear()

    def snapshot(self) -> dict[str, Number]:
        with self._lock:
            samples = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "mean": self.mean,
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
            "p99": percentile(samples, 0.99),
        }

    def state(self) -> dict[str, Any]:
        """:meth:`snapshot` plus the raw reservoir, for :meth:`merge`.

        This is what telemetry blobs carry across the process boundary;
        ``snapshot()`` deliberately excludes the sample list so JSON
        reports stay small.
        """
        doc = self.snapshot()
        with self._lock:
            doc["samples"] = list(self._samples)
        return doc


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """A named collection of metrics; creation is thread-safe."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.setdefault(name, cls(name))
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        for m in self._metrics.values():
            m.reset()

    def snapshot(self) -> dict[str, object]:
        """Name -> plain-value snapshot, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: The process-wide default registry.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)
