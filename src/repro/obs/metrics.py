"""Named counters, gauges, and histograms.

The module-level registry maps metric names (dotted, e.g.
``solver.sat_queries``) to metric objects.  Instrumented modules obtain
their handles once at import time::

    _SAT = metrics.counter("solver.sat_queries")
    ...
    if config.ENABLED:
        _SAT.inc()

:func:`reset` zeroes every registered metric **in place**, so handles
held by instrumented modules stay valid across resets.

Updates are thread-safe: each metric carries its own lock, so worker
threads hammering the same counter cannot lose increments or corrupt a
histogram's aggregates (``tests/obs/test_thread_safety.py``).

Registered metrics know their ``name`` and, while a journal
(:mod:`repro.obs.journal`) is active, counter increments emit ``C``
events carrying the post-increment value — that is how counter tracks
appear in exported Chrome/Perfetto traces.  Stand-alone metrics (e.g.
the private per-solver counters in
:class:`~repro.smt.solver.SolverStats`) have ``name=None`` and stay out
of the journal.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from . import journal

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "name", "_lock")

    def __init__(self, name: Optional[str] = None) -> None:
        self.value: int = 0
        self.name = name
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n
            value = self.value
        if self.name is not None:
            j = journal.ACTIVE
            if j is not None:
                j.emit("C", self.name, value)

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins value (sizes, rates, levels)."""

    __slots__ = ("value", "name", "_lock")

    def __init__(self, name: Optional[str] = None) -> None:
        self.value: Number = 0
        self.name = name
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Streaming aggregate of observed values (count/sum/min/max/mean)."""

    __slots__ = ("count", "total", "min", "max", "name", "_lock")

    def __init__(self, name: Optional[str] = None) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Number | None = None
        self.max: Number | None = None
        self.name = name
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0
            self.min = None
            self.max = None

    def snapshot(self) -> dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "mean": self.mean,
        }


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """A named collection of metrics; creation is thread-safe."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.setdefault(name, cls(name))
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        for m in self._metrics.values():
            m.reset()

    def snapshot(self) -> dict[str, object]:
        """Name -> plain-value snapshot, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: The process-wide default registry.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)
