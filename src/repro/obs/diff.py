"""Compare two obs snapshots, and gate CI on counter regressions.

Two modes, one CLI (``python -m repro.obs.diff``):

* **pairwise diff** — ``python -m repro.obs.diff before.json after.json``
  prints a table of counter deltas and aggregated span-timing deltas
  between two snapshots written by ``obs.render_json()`` /
  ``fast --profile-json`` / ``pytest benchmarks --obs-json``.

* **regression gate** — ``python -m repro.obs.diff --baseline
  BENCH_baseline.json --bench fig7_max_n_32 --snapshot fresh.json``
  checks the fresh snapshot's counters against the named benchmark's
  ``guard`` mapping in the baseline file.  A counter regresses when
  ``actual > expected * (1 + tolerance) + slack``; the per-counter
  ``tolerances`` mapping in the baseline overrides the default
  tolerance for individual counters.  Exit 1 on regression — this is
  what CI's bench-regression job runs (``benchmarks/check_regression.py``
  is a thin wrapper kept for compatibility).

  Timing-derived guards are only comparable between *like* hosts, so
  when the baseline entry records the core count it was measured on
  (``container_cpus``) and the snapshot carries the candidate host's
  (the ``bench.host_cpus`` gauge the serving benchmarks set), a
  mismatch demotes regressions to annotations: the deltas are printed,
  the exit code stays 0.  A 4-core laptop must not "regress" numbers
  measured on a 1-core CI container.

Histograms are flattened to ``name.count`` / ``name.sum`` /
``name.mean`` scalars; span trees are aggregated per span name into
``(count, total_ms)`` so two runs with different tree shapes still
compare.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, TextIO

#: Default relative tolerance for the regression gate.
DEFAULT_TOLERANCE = 0.2
#: Default absolute slack (keeps zero-valued baselines from tripping).
DEFAULT_SLACK = 10


def load(path: str) -> dict[str, Any]:
    with open(path) as f:
        return json.load(f)


def flatten_counters(doc: dict[str, Any]) -> dict[str, float]:
    """The snapshot's metrics as flat name -> number (histograms split)."""
    out: dict[str, float] = {}
    for name, value in doc.get("metrics", doc).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = value
        elif isinstance(value, dict) and "count" in value:
            out[f"{name}.count"] = value.get("count", 0)
            out[f"{name}.sum"] = value.get("sum", 0)
            out[f"{name}.mean"] = value.get("mean", 0.0)
            for q in ("p50", "p95", "p99"):
                if q in value:
                    out[f"{name}.{q}"] = value[q]
    return out


def _walk_spans(nodes: Iterable[dict[str, Any]]) -> Iterable[dict[str, Any]]:
    for n in nodes:
        yield n
        yield from _walk_spans(n.get("children", ()))


def span_totals(doc: dict[str, Any]) -> dict[str, tuple[int, float]]:
    """Aggregate the snapshot's span tree: name -> (count, total_ms)."""
    out: dict[str, tuple[int, float]] = {}
    for node in _walk_spans(doc.get("trace", ())):
        name = node.get("name", "?")
        dur = node.get("duration_ms")
        count, total = out.get(name, (0, 0.0))
        out[name] = (count + 1, total + (dur or 0.0))
    return out


def diff_counters(
    before: dict[str, Any], after: dict[str, Any]
) -> list[tuple[str, float | None, float | None]]:
    """Counter rows ``(name, before_value, after_value)``; None = absent."""
    a, b = flatten_counters(before), flatten_counters(after)
    return [(name, a.get(name), b.get(name)) for name in sorted(set(a) | set(b))]


def _fmt(v: float | None) -> str:
    if v is None:
        return "-"
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.4f}"
    return f"{int(v)}"


def render_diff(
    before: dict[str, Any],
    after: dict[str, Any],
    *,
    out: TextIO = sys.stdout,
) -> None:
    """Print counter and span-timing deltas between two snapshots."""
    rows = diff_counters(before, after)
    if rows:
        width = max(len(name) for name, _, _ in rows)
        print("== counters ==", file=out)
        for name, a, b in rows:
            if a == b:
                delta = ""
            elif a is None or b is None:
                delta = "  (added)" if a is None else "  (removed)"
            else:
                sign = "+" if b >= a else ""
                pct = f" ({(b - a) / a:+.1%})" if a else ""
                delta = f"  {sign}{_fmt(b - a)}{pct}"
            print(f"{name:<{width}}  {_fmt(a):>12} -> {_fmt(b):>12}{delta}", file=out)
    spans_a, spans_b = span_totals(before), span_totals(after)
    names = sorted(set(spans_a) | set(spans_b))
    if names:
        width = max(len(n) for n in names)
        print("\n== span timings (aggregated by name) ==", file=out)
        for name in names:
            ca, ta = spans_a.get(name, (0, 0.0))
            cb, tb = spans_b.get(name, (0, 0.0))
            print(
                f"{name:<{width}}  n:{ca:>6} -> {cb:<6} "
                f"total_ms:{ta:>10.2f} -> {tb:<10.2f}",
                file=out,
            )


def gate(
    baseline: dict[str, Any],
    bench: str,
    snapshot_doc: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    slack: float = DEFAULT_SLACK,
    out: TextIO = sys.stdout,
) -> int:
    """Check a snapshot against a baseline benchmark's guarded counters.

    Returns an exit code: 0 pass, 1 regression, 2 usage error.  The
    benchmark entry may carry a ``tolerances`` mapping overriding the
    default relative tolerance per counter name.
    """
    benchmarks = baseline.get("benchmarks", {})
    if bench not in benchmarks:
        print(
            f"error: benchmark {bench!r} not in baseline "
            f"(have: {', '.join(sorted(benchmarks))})",
            file=sys.stderr,
        )
        return 2
    entry = benchmarks[bench]
    guard = entry.get("guard", {})
    if not guard:
        print(f"warning: benchmark {bench!r} has no guarded counters", file=out)
        return 0
    tolerances = entry.get("tolerances", {})
    metrics = flatten_counters(snapshot_doc)
    failures = []
    for name, expected in guard.items():
        tol = tolerances.get(name, tolerance)
        actual = metrics.get(name)
        if actual is None:
            failures.append(f"{name}: missing from snapshot (baseline {expected})")
            continue
        limit = expected * (1.0 + tol) + slack
        ok = actual <= limit
        print(
            f"{'ok' if ok else 'FAIL':4} {name}: baseline={expected} "
            f"actual={_fmt(actual)} limit={limit:g} (tol {tol:.0%})",
            file=out,
        )
        if not ok:
            failures.append(
                f"{name}: {_fmt(actual)} > limit {limit:g} (baseline {expected})"
            )
    if failures:
        mismatch = _core_count_mismatch(entry, metrics)
        if mismatch is not None:
            baseline_cpus, host_cpus = mismatch
            print(
                f"\n{bench}: host has {host_cpus} cpu(s), baseline was "
                f"measured on {baseline_cpus} — demoting "
                f"{len(failures)} regression(s) to annotations "
                f"(timing guards are only comparable between like hosts):",
                file=out,
            )
            for f_ in failures:
                print(f"  ~ {f_}", file=out)
            return 0
        print(f"\n{bench}: {len(failures)} counter(s) regressed:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print(f"\n{bench}: all guarded counters within tolerance", file=out)
    return 0


def _core_count_mismatch(
    entry: dict[str, Any], metrics: dict[str, float]
) -> tuple[int, int] | None:
    """``(baseline_cpus, host_cpus)`` when both are known and differ.

    The baseline entry records ``container_cpus`` (the host it was
    measured on); benchmarks record the candidate host's count as the
    ``bench.host_cpus`` gauge.  Either side missing -> no annotation
    (the gate stays strict).
    """
    baseline_cpus = entry.get("container_cpus")
    host_cpus = metrics.get("bench.host_cpus")
    if baseline_cpus is None or host_cpus is None:
        return None
    if int(baseline_cpus) == int(host_cpus):
        return None
    return int(baseline_cpus), int(host_cpus)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="diff two obs snapshots, or gate one against a baseline",
    )
    parser.add_argument("snapshots", nargs="*", help="two snapshot JSON files to diff")
    parser.add_argument("--baseline", help="BENCH_baseline.json for gate mode")
    parser.add_argument("--bench", help="benchmark key under 'benchmarks'")
    parser.add_argument("--snapshot", help="fresh snapshot JSON for gate mode")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK)
    args = parser.parse_args(argv)

    if args.baseline or args.bench or args.snapshot:
        if not (args.baseline and args.bench and args.snapshot):
            parser.error("gate mode needs --baseline, --bench, and --snapshot")
        return gate(
            load(args.baseline),
            args.bench,
            load(args.snapshot),
            tolerance=args.tolerance,
            slack=args.slack,
        )
    if len(args.snapshots) != 2:
        parser.error("pairwise mode needs exactly two snapshot files")
    render_diff(load(args.snapshots[0]), load(args.snapshots[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
