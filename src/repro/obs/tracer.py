"""Hierarchical span tracer with a thread-local trace buffer.

A *span* is a named, timed region of execution with key/value
attributes::

    with obs.span("compose", t1=first.name, t2=second.name) as sp:
        ...
        sp.set(states=len(done), rules=len(rules))

Spans nest: a span opened while another is active becomes its child, so
a full run yields a trace *tree* (rendered by :mod:`repro.obs.report`).
Each thread gets an independent stack and root list — traces from
worker threads never interleave.

When recording is disabled (:mod:`repro.obs.config`), :func:`span`
returns a shared no-op object and records nothing.

**Request-scoped trace context.**  A serving front-end follows one
request across threads and processes by its ``trace_id``.  The tracer
holds a thread-local context id (:func:`trace_context` /
:func:`current_trace_id`); while one is set, every span opened on the
thread is stamped with a ``trace_id`` attribute automatically, so the
whole subtree of work done on behalf of a request carries the id into
journal events and Perfetto exports without each call site threading it
through by hand.  The context travels wherever the code sends it
explicitly — the service layer re-establishes it inside worker
processes from the :class:`~repro.svc.job.JobSpec`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from . import config, journal


class Span:
    """One timed region.  Use as a context manager."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.duration: Optional[float] = None  # None while still open
        self.children: list[Span] = []

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) key/value attributes on this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        state = _state()
        if state.trace_id is not None and "trace_id" not in self.attrs:
            self.attrs["trace_id"] = state.trace_id
        parent = state.stack[-1] if state.stack else None
        (parent.children if parent is not None else state.roots).append(self)
        state.stack.append(self)
        j = journal.ACTIVE
        if j is not None:
            # The event holds the live attrs dict: late sp.set(...) calls
            # are visible in the exported trace, which is what we want.
            j.emit("B", self.name, self.attrs or None)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Exception safety: the span always closes and records, and the
        # exception (if any) is noted on the span before propagating.
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        j = journal.ACTIVE
        if j is not None:
            j.emit("E", self.name, self.attrs or None)
        state = _state()
        if state.stack and state.stack[-1] is self:
            state.stack.pop()
        elif self in state.stack:  # pragma: no cover - defensive
            state.stack.remove(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = "open" if self.duration is None else f"{self.duration * 1e3:.2f}ms"
        return f"Span({self.name!r}, {ms}, attrs={self.attrs})"


class _NullSpan:
    """The shared do-nothing span handed out while recording is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _ThreadState(threading.local):
    def __init__(self) -> None:  # called once per thread
        self.roots: list[Span] = []
        self.stack: list[Span] = []
        self.trace_id: Optional[str] = None


_STATE = _ThreadState()


def _state() -> _ThreadState:
    return _STATE


def span(name: str, **attrs: Any):
    """Open a new span (no-op while recording is disabled)."""
    if not config.ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def current():
    """The innermost open span of this thread (no-op span if none)."""
    if not config.ENABLED:
        return NULL_SPAN
    stack = _state().stack
    return stack[-1] if stack else NULL_SPAN


def current_trace_id() -> Optional[str]:
    """The request trace id bound to this thread, or None."""
    return _state().trace_id


@contextmanager
def trace_context(trace_id: Optional[str]) -> Iterator[None]:
    """Bind a request ``trace_id`` to this thread for a ``with`` block.

    While bound, every span opened on the thread is stamped with a
    ``trace_id`` attribute (unless the call site set one explicitly).
    Contexts nest: the previous id is restored on exit.  Binding
    ``None`` clears the context for the block.  Cheap enough to run
    with recording off — one thread-local store either way.
    """
    state = _state()
    previous = state.trace_id
    state.trace_id = trace_id
    try:
        yield
    finally:
        state.trace_id = previous


def instant(name: str, data: Optional[dict[str, Any]] = None) -> None:
    """Journal one instant ("I") event, stamped with the trace context.

    The trace-id counterpart of ``journal.emit``: decision points that
    are not spans (a shed, a quota refusal, a deadline expiry) use this
    so the request they belong to is followable in the exported trace.
    No-op when no journal is active.
    """
    j = journal.ACTIVE
    if j is None:
        return
    trace_id = _state().trace_id
    if trace_id is not None:
        data = dict(data) if data else {}
        data.setdefault("trace_id", trace_id)
    j.emit("I", name, data)


def trace() -> list[Span]:
    """This thread's recorded root spans, in start order."""
    return list(_state().roots)


def reset_trace() -> None:
    """Drop this thread's recorded spans (open spans stay on the stack)."""
    _state().roots.clear()
