"""Hierarchical span tracer with a thread-local trace buffer.

A *span* is a named, timed region of execution with key/value
attributes::

    with obs.span("compose", t1=first.name, t2=second.name) as sp:
        ...
        sp.set(states=len(done), rules=len(rules))

Spans nest: a span opened while another is active becomes its child, so
a full run yields a trace *tree* (rendered by :mod:`repro.obs.report`).
Each thread gets an independent stack and root list — traces from
worker threads never interleave.

When recording is disabled (:mod:`repro.obs.config`), :func:`span`
returns a shared no-op object and records nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from . import config, journal


class Span:
    """One timed region.  Use as a context manager."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.duration: Optional[float] = None  # None while still open
        self.children: list[Span] = []

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) key/value attributes on this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        state = _state()
        parent = state.stack[-1] if state.stack else None
        (parent.children if parent is not None else state.roots).append(self)
        state.stack.append(self)
        j = journal.ACTIVE
        if j is not None:
            # The event holds the live attrs dict: late sp.set(...) calls
            # are visible in the exported trace, which is what we want.
            j.emit("B", self.name, self.attrs or None)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Exception safety: the span always closes and records, and the
        # exception (if any) is noted on the span before propagating.
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        j = journal.ACTIVE
        if j is not None:
            j.emit("E", self.name, self.attrs or None)
        state = _state()
        if state.stack and state.stack[-1] is self:
            state.stack.pop()
        elif self in state.stack:  # pragma: no cover - defensive
            state.stack.remove(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = "open" if self.duration is None else f"{self.duration * 1e3:.2f}ms"
        return f"Span({self.name!r}, {ms}, attrs={self.attrs})"


class _NullSpan:
    """The shared do-nothing span handed out while recording is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _ThreadState(threading.local):
    def __init__(self) -> None:  # called once per thread
        self.roots: list[Span] = []
        self.stack: list[Span] = []


_STATE = _ThreadState()


def _state() -> _ThreadState:
    return _STATE


def span(name: str, **attrs: Any):
    """Open a new span (no-op while recording is disabled)."""
    if not config.ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def current():
    """The innermost open span of this thread (no-op span if none)."""
    if not config.ENABLED:
        return NULL_SPAN
    stack = _state().stack
    return stack[-1] if stack else NULL_SPAN


def trace() -> list[Span]:
    """This thread's recorded root spans, in start order."""
    return list(_state().roots)


def reset_trace() -> None:
    """Drop this thread's recorded spans (open spans stay on the stack)."""
    _state().roots.clear()
