"""Derivation recording: *why* a decision procedure answered what it did.

The paper's analyses (emptiness §3.2, equivalence §3.3, composition §4,
type-checking §5) return bare answers; this module lets them account
for those answers.  While a :class:`Collector` is active (installed by
``guard.governed(...)`` or explicitly via :func:`collecting`), decision
procedures record a tree of :class:`Step` nodes:

* which STA/STTR rules fired on the way to a witness,
* which solver queries were decisive (guard formula + model),
* the witness tree for non-emptiness,
* the offending input region for a type-check failure.

The result surfaces as ``Verdict.provenance`` / ``Verdict.explain()``
and the ``fast explain`` CLI subcommand.

Recording is strictly opt-in and the inactive cost is one thread-local
check per call site (:func:`note` / :func:`step` / :func:`saw_query`
all no-op when no collector is installed), so the hooks can live inside
the fixpoint loops.  Collectors are thread-local and nest (a stack), so
concurrent analyses never mix derivations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Cap on recorded steps per collector; past it, steps are counted as
#: dropped rather than recorded, so a huge fixpoint cannot balloon memory.
MAX_STEPS = 4096


@dataclass
class Step:
    """One node of a derivation tree."""

    kind: str
    title: str
    detail: dict[str, Any] = field(default_factory=dict)
    children: list["Step"] = field(default_factory=list)

    def set(self, **detail: Any) -> None:
        """Attach (or overwrite) detail key/values on this step."""
        self.detail.update(detail)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "title": self.title,
            "detail": {k: _jsonable(v) for k, v in self.detail.items()},
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """The step and its descendants as an indented text tree."""
        pad = "  " * indent
        parts = [f"{pad}{self.title}"]
        if self.detail:
            detail = ", ".join(f"{k}={_jsonable(v)}" for k, v in self.detail.items())
            parts[0] += f"  [{detail}]"
        for c in self.children:
            parts.append(c.render(indent + 1))
        return "\n".join(parts)

    def walk(self) -> Iterator["Step"]:
        """This step and every descendant, pre-order."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(
        self, kind: str | None = None, contains: str | None = None
    ) -> Optional["Step"]:
        """First descendant (pre-order) matching kind and/or title text."""
        for s in self.walk():
            if kind is not None and s.kind != kind:
                continue
            if contains is not None and contains not in s.title:
                continue
            return s
        return None


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


class Collector:
    """Accumulates a derivation tree plus a solver-query tally."""

    def __init__(self, max_steps: int = MAX_STEPS) -> None:
        self.root = Step("derivation", "derivation")
        self._stack: list[Step] = [self.root]
        self.max_steps = max_steps
        self.recorded = 0
        self.dropped = 0
        self.query_count = 0
        self.last_query: Any = None

    def _add(self, step: Step) -> bool:
        if self.recorded >= self.max_steps:
            self.dropped += 1
            return False
        self._stack[-1].children.append(step)
        self.recorded += 1
        return True

    def note(self, kind: str, title: str, **detail: Any) -> Step:
        s = Step(kind, title, detail)
        self._add(s)
        return s

    @contextmanager
    def step(self, kind: str, title: str, **detail: Any) -> Iterator[Step]:
        s = Step(kind, title, detail)
        self._add(s)  # past the cap the whole subtree is silently dropped
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()

    def saw_query(self, formula: Any) -> None:
        self.query_count += 1
        self.last_query = formula

    def finish(self) -> Step:
        """Seal the derivation: append summary notes and return the root."""
        if self.query_count:
            self.root.children.append(
                Step(
                    "queries",
                    f"solver queries while deriving: {self.query_count}",
                    {"last_formula": _jsonable(self.last_query)},
                )
            )
        if self.dropped:
            self.root.children.append(
                Step(
                    "truncated",
                    f"derivation truncated: {self.dropped} steps dropped "
                    f"(cap {self.max_steps})",
                )
            )
        return self.root


class _State(threading.local):
    def __init__(self) -> None:
        self.stack: list[Collector] = []


_STATE = _State()


def current() -> Optional[Collector]:
    """The innermost active collector of this thread, or None."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def is_active() -> bool:
    return bool(_STATE.stack)


@contextmanager
def collecting(max_steps: int = MAX_STEPS) -> Iterator[Collector]:
    """Install a fresh collector for the extent of a ``with`` block."""
    c = Collector(max_steps=max_steps)
    _STATE.stack.append(c)
    try:
        yield c
    finally:
        _STATE.stack.pop()
        c.finish()


@contextmanager
def installed(collector: Collector) -> Iterator[Collector]:
    """Install an existing collector (caller seals it with ``finish``)."""
    _STATE.stack.append(collector)
    try:
        yield collector
    finally:
        _STATE.stack.pop()


# -- cheap module-level hooks for instrumented call sites --------------------


class _NullStep:
    """Swallows detail writes when no collector is active."""

    __slots__ = ()

    def set(self, **detail: Any) -> None:
        pass


class _NullStepCM:
    __slots__ = ()

    def __enter__(self) -> _NullStep:
        return _NULL_STEP

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_STEP = _NullStep()
_NULL_STEP_CM = _NullStepCM()


def note(kind: str, title: str, **detail: Any) -> None:
    """Record a leaf step on the active collector (no-op when inactive)."""
    stack = _STATE.stack
    if stack:
        stack[-1].note(kind, title, **detail)


def step(kind: str, title: str, **detail: Any):
    """Open a nested derivation step (shared no-op when inactive)."""
    stack = _STATE.stack
    if stack:
        return stack[-1].step(kind, title, **detail)
    return _NULL_STEP_CM


def saw_query(formula: Any) -> None:
    """Tally a solved (non-cached) solver query on the active collector."""
    stack = _STATE.stack
    if stack:
        stack[-1].saw_query(formula)
