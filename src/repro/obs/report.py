"""Report emitters: the trace tree and metric table, as text and JSON.

The JSON document is schema-versioned (:data:`SCHEMA`) so future PRs can
diff ``BENCH_*.json`` snapshots across revisions without guessing the
layout.  Derived ratios (currently the solver cache hit-rate) are
computed here at snapshot time rather than maintained incrementally on
the hot path.
"""

from __future__ import annotations

import json
from typing import Any

from . import journal
from .metrics import REGISTRY, Histogram, Registry
from .tracer import Span, trace

#: Version tag embedded in every JSON snapshot.
SCHEMA = "repro.obs/v1"


def _derived(metrics: dict[str, Any]) -> dict[str, Any]:
    """Ratios computed from raw counters at snapshot time."""
    out: dict[str, Any] = {}
    queries = metrics.get("solver.sat_queries")
    hits = metrics.get("solver.cache_hits")
    if isinstance(queries, int) and isinstance(hits, int):
        out["solver.cache_hit_rate"] = round(hits / queries, 4) if queries else 0.0
    return out


def span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "name": span.name,
        "duration_ms": (
            None if span.duration is None else round(span.duration * 1e3, 3)
        ),
        "attrs": dict(span.attrs),
        "children": [span_to_dict(c) for c in span.children],
    }


def snapshot(registry: Registry | None = None, include_trace: bool = True) -> dict:
    """The full machine-readable report (metrics + this thread's trace)."""
    reg = registry if registry is not None else REGISTRY
    metrics = reg.snapshot()
    metrics.update(_derived(metrics))
    doc: dict[str, Any] = {"schema": SCHEMA, "metrics": metrics}
    j = journal.ACTIVE
    if j is not None:
        stats = j.stats()
        doc["journal"] = stats
        metrics["journal.events_emitted"] = stats["emitted"]
    if include_trace:
        doc["trace"] = [span_to_dict(s) for s in trace()]
    return doc


def render_json(registry: Registry | None = None, indent: int | None = 2) -> str:
    return json.dumps(snapshot(registry), indent=indent, sort_keys=False)


# -- text rendering ----------------------------------------------------------


def _render_span(span: Span, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "`- " if is_last else "|- "
    dur = "  (open)" if span.duration is None else f"  {span.duration * 1e3:8.2f} ms"
    attrs = ""
    if span.attrs:
        attrs = "  [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
    lines.append(f"{prefix}{connector}{span.name}{dur}{attrs}")
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, c in enumerate(span.children):
        _render_span(c, child_prefix, i == len(span.children) - 1, lines)


def render_trace() -> str:
    """This thread's span tree, one line per span, indented by depth."""
    roots = trace()
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for i, root in enumerate(roots):
        _render_span(root, "", i == len(roots) - 1, lines)
    return "\n".join(lines)


def _format_value(value: Any) -> str:
    if isinstance(value, dict):  # histogram snapshot
        text = (
            f"n={value['count']} sum={value['sum']:g} "
            f"min={value['min']:g} max={value['max']:g} mean={value['mean']:.2f}"
        )
        if "p50" in value:
            text += (
                f" p50={value['p50']:g} p95={value['p95']:g} "
                f"p99={value['p99']:g}"
            )
        return text
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_metrics(registry: Registry | None = None) -> str:
    """The metric table: one ``name  value`` row per metric, sorted."""
    reg = registry if registry is not None else REGISTRY
    metrics = reg.snapshot()
    metrics.update(_derived(metrics))
    if not metrics:
        return "(no metrics recorded)"
    width = max(len(name) for name in metrics)
    return "\n".join(
        f"{name:<{width}}  {_format_value(value)}"
        for name, value in sorted(metrics.items())
    )


def render_text(registry: Registry | None = None) -> str:
    """Human-readable report: trace tree followed by the metric table."""
    return (
        "== trace ==\n"
        + render_trace()
        + "\n\n== metrics ==\n"
        + render_metrics(registry)
    )
