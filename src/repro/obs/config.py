"""The observability on/off switch.

Everything in :mod:`repro.obs` is off by default: the hot paths of the
solver and the automata algorithms check the module-level
:data:`ENABLED` flag before recording anything, so the disabled cost is
one attribute load and a branch (verified by the overhead test in
``tests/obs/test_obs.py``).

Three ways to turn it on:

* the environment variable ``REPRO_OBS=1`` (read once at import);
* ``obs.enabled(True)`` / ``obs.enabled(False)``;
* the :func:`observed` context manager, which restores the previous
  state on exit (used by ``fast --profile`` and the benchmark harness).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_FALSY = ("", "0", "false", "False", "no")

#: The global recording flag.  Hot call sites read this directly
#: (``if config.ENABLED: ...``); everyone else goes through
#: :func:`is_enabled`.
ENABLED: bool = os.environ.get("REPRO_OBS", "") not in _FALSY


def enabled(on: bool = True) -> None:
    """Turn recording on (or off with ``enabled(False)``)."""
    global ENABLED
    ENABLED = bool(on)


def is_enabled() -> bool:
    """Is recording currently on?"""
    return ENABLED


@contextmanager
def observed(on: bool = True) -> Iterator[None]:
    """Temporarily set the recording flag, restoring it on exit."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(on)
    try:
        yield
    finally:
        ENABLED = previous
