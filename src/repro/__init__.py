"""Reproduction of "Fast: a Transducer-Based Language for Tree
Manipulation" (D'Antoni, Veanes, Livshits, Molnar — PLDI 2014).

Public surface:

* :mod:`repro.smt` — the label-theory solver (terms, formulas, Cooper /
  Fourier-Motzkin / Sturm / string solvers, models, minterms);
* :mod:`repro.trees` — ranked attributed trees and encodings;
* :mod:`repro.automata` — alternating symbolic tree automata and the
  :class:`~repro.automata.Language` facade;
* :mod:`repro.transducers` — symbolic tree transducers with regular
  lookahead, the Section 4 composition algorithm, and the
  :class:`~repro.transducers.Transducer` facade;
* :mod:`repro.fast` — the Fast language front-end and CLI;
* :mod:`repro.apps` — the five case studies of the paper's Section 5
  plus the XPath fragment extension;
* :mod:`repro.obs` — off-by-default tracing & metrics across the
  solver, automata, transducer, and compiler pipelines.
"""

from .automata import Language
from .transducers import Transducer

__version__ = "1.0.0"

__all__ = ["Language", "Transducer", "__version__"]
