"""Fault injection for the solver facade: make degradation paths testable.

The governance story of :mod:`repro.guard` is only credible if the
abort and recovery paths actually run under test.  This module injects
deterministic, seeded failures at the solver boundary — the single
choke point every pipeline funnels through — so the chaos suite can
demonstrate that a solver fault, a blown deadline, or an exhausted
query budget each end in a clean typed outcome with consistent caches.

Injections (all off by default, all reproducible from ``seed``):

* ``fault_rate`` / ``fault_after`` — raise :class:`SolverFault`, the
  moral equivalent of the backend solver crashing;
* ``unknown_rate`` — raise
  :class:`~repro.guard.budget.SolverUnknown`, a Z3-style give-up;
* ``latency`` — sleep before each query (a slow solver must trip
  deadlines, not hang pipelines);
* ``flush_rate`` — run the coordinated cache flush
  (:func:`repro.smt.flush_all_caches`: solver memos, intern table, and
  exec LRU together) mid-flight.  This one is *semantics-preserving*:
  results must not change when every memo table evaporates at an
  arbitrary query boundary, which is exactly the cache-consistency
  contract the abort-safety tests — and the long-haul worker hygiene
  flush — rely on.  The CI chaos-smoke job runs the full tier-1 suite
  under latency + flush injection and requires it to stay green.

Since the analysis service (:mod:`repro.svc`) moved execution into
subprocess workers, the harness also injects **worker-level** faults —
the kinds of failure a supervisor must survive, not a solver:

* ``worker_kill_rate`` — the worker SIGKILLs itself before running the
  job (a hard crash: no reply, no cleanup);
* ``worker_hang_rate`` — the worker sleeps past the supervisor's kill
  timeout instead of answering;
* ``worker_corrupt_rate`` — the worker replies with a garbage payload
  instead of a :class:`~repro.svc.job.JobResult`;
* ``worker_leak_rate`` / ``worker_leak_bytes`` — the worker pins a slab
  of garbage in memory and then answers *correctly*: a slow leak, the
  fault class the lifecycle layer's RSS recycle threshold exists for.

Worker faults are decided by :class:`WorkerChaosPolicy` from the
``(seed, job_id, attempt)`` triple — not a sequential RNG — so the same
batch under the same seed always faults the same jobs on the same
attempts, *regardless of worker scheduling*, and a retried attempt can
succeed where attempt 0 was killed.

With the admission gate (:mod:`repro.svc.gate`) in front of the pool,
the harness also models **overload** faults — hostile *traffic*, not
hostile workers: :class:`OverloadChaosPolicy` deterministically decides
per request index whether a client bursts (floods the gate with extra
back-to-back requests) or stalls (sleeps mid-send like a slow client).
The overload property test drives the gate with these schedules and
asserts the invariants that make shedding safe: every admitted request
gets exactly one response, every shed request gets a shed response, and
verdicts are never corrupted — only delayed or shed.

Use :class:`ChaosSolver` to wrap a single solver, :func:`inject` to
patch every :class:`~repro.smt.solver.Solver` in the process for a
``with`` block, or ``REPRO_CHAOS="seed=7,flush_rate=0.02"`` +
:func:`install_from_env` (wired into ``tests/conftest.py``) to run a
whole test session under chaos.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..smt.solver import Solver
from ..smt.terms import FALSE, TRUE
from .budget import GuardError, SolverUnknown


class SolverFault(GuardError):
    """An injected backend-solver failure (the solver "crashed")."""


_OBS_FAULTS = obs_metrics.counter("chaos.faults_injected")
_OBS_UNKNOWNS = obs_metrics.counter("chaos.unknowns_injected")
_OBS_FLUSHES = obs_metrics.counter("chaos.flushes_injected")
_OBS_DELAYS = obs_metrics.counter("chaos.queries_delayed")

_INJECTION_COUNTERS = {
    "fault": _OBS_FAULTS,
    "unknown": _OBS_UNKNOWNS,
    "flush": _OBS_FLUSHES,
    "delay": _OBS_DELAYS,
}


@dataclass
class ChaosPolicy:
    """A deterministic, seeded injection policy.

    The same seed and the same sequence of queries produce the same
    injections, so every chaos test is reproducible.  ``counts`` tracks
    what actually fired (also mirrored to ``chaos.*`` obs counters).
    """

    seed: int = 0
    fault_rate: float = 0.0
    unknown_rate: float = 0.0
    latency: float = 0.0
    flush_rate: float = 0.0
    #: Inject exactly one fault on the Nth non-trivial query (0-based);
    #: independent of the rates — the surgical knob for abort tests.
    fault_after: Optional[int] = None
    queries_seen: int = field(default=0, init=False)
    counts: dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.counts = {"fault": 0, "unknown": 0, "flush": 0, "delay": 0}

    def reset(self) -> None:
        """Rewind to the initial seeded state."""
        self._rng = random.Random(self.seed)
        self.queries_seen = 0
        self.counts = {"fault": 0, "unknown": 0, "flush": 0, "delay": 0}

    def _injected(self, kind: str, index: int) -> None:
        """Book-keep one fired injection (counts, obs, journal)."""
        self.counts[kind] += 1
        if obs_config.ENABLED:
            _INJECTION_COUNTERS[kind].inc()
        j = obs_journal.ACTIVE
        if j is not None:
            j.emit("I", f"chaos.{kind}", {"query": index})

    def before_query(self, solver: Solver) -> None:
        """Run the injections due before one non-trivial solver query."""
        index = self.queries_seen
        self.queries_seen += 1
        if self.latency:
            self._injected("delay", index)
            time.sleep(self.latency)
        if self.flush_rate and self._rng.random() < self.flush_rate:
            self._injected("flush", index)
            # The coordinated flush (intern table + solver memos + exec
            # LRU together) — injecting the full version here keeps the
            # semantics-preserving contract honest for exactly the
            # flush long-haul workers run between jobs.
            from ..smt import flush_all_caches

            flush_all_caches(solver=solver)
        if self.fault_after is not None and index == self.fault_after:
            self._injected("fault", index)
            raise SolverFault(
                f"injected solver fault on query #{index} (fault_after)"
            )
        if self.fault_rate and self._rng.random() < self.fault_rate:
            self._injected("fault", index)
            raise SolverFault(f"injected solver fault on query #{index}")
        if self.unknown_rate and self._rng.random() < self.unknown_rate:
            self._injected("unknown", index)
            raise SolverUnknown(f"injected solver unknown on query #{index}")


class ChaosSolver(Solver):
    """A solver whose every non-trivial query first consults a policy.

    Drop-in for :class:`~repro.smt.solver.Solver` anywhere one is
    accepted (facades, compilers, algorithms).  The hash-consed
    ``TRUE``/``FALSE`` identity fast path stays fault-free: those are
    not solver work, so chaos does not apply to them.
    """

    def __init__(self, policy: ChaosPolicy, cache: bool = True) -> None:
        super().__init__(cache=cache)
        self.policy = policy

    def get_model(self, formula):
        if formula is not TRUE and formula is not FALSE:
            self.policy.before_query(self)
        return super().get_model(formula)


def install(policy: ChaosPolicy) -> Callable[[], None]:
    """Patch ``Solver.get_model`` process-wide; returns the undo function.

    Covers :data:`~repro.smt.solver.DEFAULT_SOLVER` and every solver
    instance created before or after the call.
    """
    original = Solver.get_model

    def chaotic_get_model(self, formula, _orig=original, _policy=policy):
        if formula is not TRUE and formula is not FALSE:
            _policy.before_query(self)
        return _orig(self, formula)

    Solver.get_model = chaotic_get_model  # type: ignore[method-assign]

    def uninstall() -> None:
        Solver.get_model = original  # type: ignore[method-assign]

    return uninstall


@contextmanager
def inject(policy: ChaosPolicy) -> Iterator[ChaosPolicy]:
    """Process-wide chaos for the dynamic extent of a ``with`` block."""
    uninstall = install(policy)
    try:
        yield policy
    finally:
        uninstall()


@dataclass(frozen=True)
class WorkerChaosPolicy:
    """Seeded worker-level fault injection for :mod:`repro.svc`.

    Unlike :class:`ChaosPolicy` (a sequential RNG at the solver choke
    point), worker faults are decided *statelessly* from
    ``(seed, job_id, attempt)``: the policy is a pure function, so the
    same batch faults the same jobs however the supervisor schedules
    them across workers, and retries see fresh draws — a job killed on
    attempt 0 usually survives attempt 1, which is what lets the
    retry path demonstrate recovery instead of deterministic doom.

    The dataclass is frozen and picklable: the supervisor ships it to
    each worker at spawn time.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: Probability an attempt deliberately *leaks*: the worker pins
    #: ``leak_bytes`` of garbage in process memory and then runs the
    #: job normally.  Unlike the other faults the reply is perfectly
    #: valid — the damage is the growing RSS, which is what forces the
    #: lifecycle layer's ``--worker-max-rss`` recycle path under test.
    leak_rate: float = 0.0
    #: Bytes pinned per fired leak.
    leak_bytes: int = 8 << 20
    #: How long a "hung" worker sleeps; keep well above the supervisor's
    #: kill timeout (tests shrink both).
    hang_seconds: float = 3600.0

    def decide(self, job_id: str, attempt: int) -> Optional[str]:
        """``'kill'`` / ``'hang'`` / ``'corrupt'`` / ``'leak'`` / None.

        ``random.Random`` seeded with a string hashes it through
        SHA-512 (seeding version 2), so the draw is stable across
        processes and interpreter runs — no ``PYTHONHASHSEED``
        dependence.
        """
        if not self.active:
            return None
        r = random.Random(f"{self.seed}:{job_id}:{attempt}").random()
        if r < self.kill_rate:
            return "kill"
        if r < self.kill_rate + self.hang_rate:
            return "hang"
        if r < self.kill_rate + self.hang_rate + self.corrupt_rate:
            return "corrupt"
        if (
            r
            < self.kill_rate
            + self.hang_rate
            + self.corrupt_rate
            + self.leak_rate
        ):
            return "leak"
        return None

    @property
    def active(self) -> bool:
        return bool(
            self.kill_rate
            or self.hang_rate
            or self.corrupt_rate
            or self.leak_rate
        )


@dataclass(frozen=True)
class OverloadChaosPolicy:
    """Seeded overload traffic for the admission gate (:mod:`repro.svc.gate`).

    Where :class:`WorkerChaosPolicy` perturbs the *execution* side, this
    policy perturbs the *arrival* side: it deterministically decides, per
    request index, whether a client floods the gate with a burst of
    extra requests or stalls mid-send like a slow client.  Like the
    worker policy it is a pure function of ``(seed, index)`` — no
    sequential RNG — so the same seed produces the same traffic shape
    however threads interleave, which is what makes the overload
    property test (served + shed partition, exactly one response each)
    reproducible.
    """

    seed: int = 0
    #: Probability a request index starts a burst flood.
    burst_rate: float = 0.0
    #: Extra back-to-back requests injected per burst.
    burst_size: int = 8
    #: Probability a client stalls (sleeps) before sending its request.
    stall_rate: float = 0.0
    #: How long a stalled client sleeps before completing its send.
    stall_seconds: float = 0.05

    def decide(self, index: int) -> Optional[str]:
        """``'burst'`` / ``'stall'`` / None for request ``index``.

        Stable across processes and runs (string-seeded ``Random``
        hashes through SHA-512), and independent draws per index, so a
        schedule can be replayed or enumerated without generating it in
        order.
        """
        if not (self.burst_rate or self.stall_rate):
            return None
        r = random.Random(f"{self.seed}:overload:{index}").random()
        if r < self.burst_rate:
            return "burst"
        if r < self.burst_rate + self.stall_rate:
            return "stall"
        return None

    def schedule(self, n: int) -> list[tuple[int, Optional[str]]]:
        """The full ``(index, action)`` plan for ``n`` base requests.

        Purely derived from :meth:`decide`; handy for tests that want
        to assert how many bursts/stalls a seed produces before driving
        the gate with them.
        """
        return [(i, self.decide(i)) for i in range(n)]

    def total_requests(self, n: int) -> int:
        """How many requests ``n`` base sends expand to (bursts included)."""
        total = n
        for _, action in self.schedule(n):
            if action == "burst":
                total += self.burst_size
        return total

    @property
    def active(self) -> bool:
        return bool(self.burst_rate or self.stall_rate)


#: Spec keys understood by :func:`worker_policy_from_spec`; ignored by
#: :func:`policy_from_spec` so one ``REPRO_CHAOS`` string can carry both
#: solver- and worker-level faults.
_WORKER_KEYS = {
    "worker_kill_rate": ("kill_rate", float),
    "worker_hang_rate": ("hang_rate", float),
    "worker_corrupt_rate": ("corrupt_rate", float),
    "worker_hang_seconds": ("hang_seconds", float),
    "worker_leak_rate": ("leak_rate", float),
    "worker_leak_bytes": ("leak_bytes", int),
}

#: Spec keys understood by :func:`overload_policy_from_spec`; ignored by
#: the solver- and worker-level parsers for the same reason.
_OVERLOAD_KEYS = {
    "overload_burst_rate": ("burst_rate", float),
    "overload_burst_size": ("burst_size", int),
    "overload_stall_rate": ("stall_rate", float),
    "overload_stall_seconds": ("stall_seconds", float),
}


def _parse_spec(spec: str) -> dict[str, str]:
    pairs: dict[str, str] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad chaos spec item {item!r} (expected key=value)")
        key, _, value = item.partition("=")
        pairs[key.strip()] = value.strip()
    return pairs


def policy_from_spec(spec: str) -> ChaosPolicy:
    """Parse ``"seed=7,latency=0.0002,flush_rate=0.02"`` into a policy.

    Keys are the :class:`ChaosPolicy` field names; values are ints for
    ``seed``/``fault_after`` and floats otherwise.  ``worker_*`` keys
    (see :func:`worker_policy_from_spec`) are ignored here.
    """
    kwargs: dict[str, object] = {}
    for key, value in _parse_spec(spec).items():
        if key in ("seed", "fault_after"):
            kwargs[key] = int(value)
        elif key in ("fault_rate", "unknown_rate", "latency", "flush_rate"):
            kwargs[key] = float(value)
        elif key in _WORKER_KEYS or key in _OVERLOAD_KEYS:
            continue
        else:
            raise ValueError(f"unknown chaos spec key {key!r}")
    return ChaosPolicy(**kwargs)  # type: ignore[arg-type]


def worker_policy_from_spec(spec: str) -> Optional[WorkerChaosPolicy]:
    """The :class:`WorkerChaosPolicy` of a spec, or None when inert.

    Shares the ``seed`` key with the solver policy; only ``worker_*``
    keys activate it, so plain solver-chaos specs return None.
    """
    pairs = _parse_spec(spec) if spec else {}
    kwargs: dict[str, object] = {}
    for key, (field_name, conv) in _WORKER_KEYS.items():
        if key in pairs:
            kwargs[field_name] = conv(pairs[key])
    if not kwargs:
        return None
    if "seed" in pairs:
        kwargs["seed"] = int(pairs["seed"])
    policy = WorkerChaosPolicy(**kwargs)  # type: ignore[arg-type]
    return policy if policy.active else None


def overload_policy_from_spec(spec: str) -> Optional[OverloadChaosPolicy]:
    """The :class:`OverloadChaosPolicy` of a spec, or None when inert.

    Shares the ``seed`` key with the other policies; only ``overload_*``
    keys activate it, so solver- and worker-only specs return None.
    """
    pairs = _parse_spec(spec) if spec else {}
    kwargs: dict[str, object] = {}
    for key, (field_name, conv) in _OVERLOAD_KEYS.items():
        if key in pairs:
            kwargs[field_name] = conv(pairs[key])
    if not kwargs:
        return None
    if "seed" in pairs:
        kwargs["seed"] = int(pairs["seed"])
    policy = OverloadChaosPolicy(**kwargs)  # type: ignore[arg-type]
    return policy if policy.active else None


def install_from_env(var: str = "REPRO_CHAOS") -> Optional[Callable[[], None]]:
    """Install chaos from an environment spec, if set; returns the undo.

    The CI chaos-smoke job exports ``REPRO_CHAOS`` and lets
    ``tests/conftest.py`` call this, so the whole tier-1 suite runs
    against a perturbed solver.
    """
    import os

    spec = os.environ.get(var, "")
    if not spec:
        return None
    return install(policy_from_spec(spec))
