"""Fault injection for the solver facade: make degradation paths testable.

The governance story of :mod:`repro.guard` is only credible if the
abort and recovery paths actually run under test.  This module injects
deterministic, seeded failures at the solver boundary — the single
choke point every pipeline funnels through — so the chaos suite can
demonstrate that a solver fault, a blown deadline, or an exhausted
query budget each end in a clean typed outcome with consistent caches.

Injections (all off by default, all reproducible from ``seed``):

* ``fault_rate`` / ``fault_after`` — raise :class:`SolverFault`, the
  moral equivalent of the backend solver crashing;
* ``unknown_rate`` — raise
  :class:`~repro.guard.budget.SolverUnknown`, a Z3-style give-up;
* ``latency`` — sleep before each query (a slow solver must trip
  deadlines, not hang pipelines);
* ``flush_rate`` — call ``solver.clear_cache()`` mid-flight.  This one
  is *semantics-preserving*: results must not change when memo tables
  evaporate at arbitrary query boundaries, which is exactly the
  cache-consistency contract the abort-safety tests rely on.  The CI
  chaos-smoke job runs the full tier-1 suite under latency + flush
  injection and requires it to stay green.

Use :class:`ChaosSolver` to wrap a single solver, :func:`inject` to
patch every :class:`~repro.smt.solver.Solver` in the process for a
``with`` block, or ``REPRO_CHAOS="seed=7,flush_rate=0.02"`` +
:func:`install_from_env` (wired into ``tests/conftest.py``) to run a
whole test session under chaos.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..smt.solver import Solver
from ..smt.terms import FALSE, TRUE
from .budget import GuardError, SolverUnknown


class SolverFault(GuardError):
    """An injected backend-solver failure (the solver "crashed")."""


_OBS_FAULTS = obs_metrics.counter("chaos.faults_injected")
_OBS_UNKNOWNS = obs_metrics.counter("chaos.unknowns_injected")
_OBS_FLUSHES = obs_metrics.counter("chaos.flushes_injected")
_OBS_DELAYS = obs_metrics.counter("chaos.queries_delayed")

_INJECTION_COUNTERS = {
    "fault": _OBS_FAULTS,
    "unknown": _OBS_UNKNOWNS,
    "flush": _OBS_FLUSHES,
    "delay": _OBS_DELAYS,
}


@dataclass
class ChaosPolicy:
    """A deterministic, seeded injection policy.

    The same seed and the same sequence of queries produce the same
    injections, so every chaos test is reproducible.  ``counts`` tracks
    what actually fired (also mirrored to ``chaos.*`` obs counters).
    """

    seed: int = 0
    fault_rate: float = 0.0
    unknown_rate: float = 0.0
    latency: float = 0.0
    flush_rate: float = 0.0
    #: Inject exactly one fault on the Nth non-trivial query (0-based);
    #: independent of the rates — the surgical knob for abort tests.
    fault_after: Optional[int] = None
    queries_seen: int = field(default=0, init=False)
    counts: dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.counts = {"fault": 0, "unknown": 0, "flush": 0, "delay": 0}

    def reset(self) -> None:
        """Rewind to the initial seeded state."""
        self._rng = random.Random(self.seed)
        self.queries_seen = 0
        self.counts = {"fault": 0, "unknown": 0, "flush": 0, "delay": 0}

    def _injected(self, kind: str, index: int) -> None:
        """Book-keep one fired injection (counts, obs, journal)."""
        self.counts[kind] += 1
        if obs_config.ENABLED:
            _INJECTION_COUNTERS[kind].inc()
        j = obs_journal.ACTIVE
        if j is not None:
            j.emit("I", f"chaos.{kind}", {"query": index})

    def before_query(self, solver: Solver) -> None:
        """Run the injections due before one non-trivial solver query."""
        index = self.queries_seen
        self.queries_seen += 1
        if self.latency:
            self._injected("delay", index)
            time.sleep(self.latency)
        if self.flush_rate and self._rng.random() < self.flush_rate:
            self._injected("flush", index)
            solver.clear_cache()
        if self.fault_after is not None and index == self.fault_after:
            self._injected("fault", index)
            raise SolverFault(
                f"injected solver fault on query #{index} (fault_after)"
            )
        if self.fault_rate and self._rng.random() < self.fault_rate:
            self._injected("fault", index)
            raise SolverFault(f"injected solver fault on query #{index}")
        if self.unknown_rate and self._rng.random() < self.unknown_rate:
            self._injected("unknown", index)
            raise SolverUnknown(f"injected solver unknown on query #{index}")


class ChaosSolver(Solver):
    """A solver whose every non-trivial query first consults a policy.

    Drop-in for :class:`~repro.smt.solver.Solver` anywhere one is
    accepted (facades, compilers, algorithms).  The hash-consed
    ``TRUE``/``FALSE`` identity fast path stays fault-free: those are
    not solver work, so chaos does not apply to them.
    """

    def __init__(self, policy: ChaosPolicy, cache: bool = True) -> None:
        super().__init__(cache=cache)
        self.policy = policy

    def get_model(self, formula):
        if formula is not TRUE and formula is not FALSE:
            self.policy.before_query(self)
        return super().get_model(formula)


def install(policy: ChaosPolicy) -> Callable[[], None]:
    """Patch ``Solver.get_model`` process-wide; returns the undo function.

    Covers :data:`~repro.smt.solver.DEFAULT_SOLVER` and every solver
    instance created before or after the call.
    """
    original = Solver.get_model

    def chaotic_get_model(self, formula, _orig=original, _policy=policy):
        if formula is not TRUE and formula is not FALSE:
            _policy.before_query(self)
        return _orig(self, formula)

    Solver.get_model = chaotic_get_model  # type: ignore[method-assign]

    def uninstall() -> None:
        Solver.get_model = original  # type: ignore[method-assign]

    return uninstall


@contextmanager
def inject(policy: ChaosPolicy) -> Iterator[ChaosPolicy]:
    """Process-wide chaos for the dynamic extent of a ``with`` block."""
    uninstall = install(policy)
    try:
        yield policy
    finally:
        uninstall()


def policy_from_spec(spec: str) -> ChaosPolicy:
    """Parse ``"seed=7,latency=0.0002,flush_rate=0.02"`` into a policy.

    Keys are the :class:`ChaosPolicy` field names; values are ints for
    ``seed``/``fault_after`` and floats otherwise.
    """
    kwargs: dict[str, object] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad chaos spec item {item!r} (expected key=value)")
        key, _, value = item.partition("=")
        key = key.strip()
        if key in ("seed", "fault_after"):
            kwargs[key] = int(value)
        elif key in ("fault_rate", "unknown_rate", "latency", "flush_rate"):
            kwargs[key] = float(value)
        else:
            raise ValueError(f"unknown chaos spec key {key!r}")
    return ChaosPolicy(**kwargs)  # type: ignore[arg-type]


def install_from_env(var: str = "REPRO_CHAOS") -> Optional[Callable[[], None]]:
    """Install chaos from an environment spec, if set; returns the undo.

    The CI chaos-smoke job exports ``REPRO_CHAOS`` and lets
    ``tests/conftest.py`` call this, so the whole tier-1 suite runs
    against a perturbed solver.
    """
    import os

    spec = os.environ.get(var, "")
    if not spec:
        return None
    return install(policy_from_spec(spec))
