"""Three-valued verdicts for governed analyses.

The paper's analyses are decision procedures, but under resource limits
a decision procedure has three outcomes, not two: the property is
PROVED, it is REFUTED (usually with a witness tree), or the budget ran
out first and the answer is UNKNOWN.  :class:`Verdict` makes the third
outcome a first-class value with a reason and a resource snapshot
instead of a hang or a raw exception.

:func:`governed` is the bridge: it runs a witness-style check (a
callable returning ``None`` for "holds" or a counterexample tree) under
an optional budget and maps every :class:`~repro.guard.budget.GuardError`
degradation — deadline, query budget, step budget, injected solver
fault, solver *unknown* — to an UNKNOWN verdict.

Since observability v2, ``governed`` also installs a provenance
collector (:mod:`repro.obs.provenance`) around the check, so the
decision procedures' derivation steps — rules fired, decisive solver
queries, witnesses — land on the verdict.  :meth:`Verdict.explain`
renders them; ``fast explain`` exposes them on the command line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..obs import provenance as prov
from ..obs.provenance import Step
from .budget import Budget, BudgetSnapshot, GuardError, current, scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trees.tree import Tree


class Outcome(enum.Enum):
    """The three truth values of a governed analysis."""

    PROVED = "PROVED"
    REFUTED = "REFUTED"
    UNKNOWN = "UNKNOWN"


#: Re-exported members so call sites can write ``guard.PROVED``.
PROVED = Outcome.PROVED
REFUTED = Outcome.REFUTED
UNKNOWN = Outcome.UNKNOWN


@dataclass(frozen=True)
class Verdict:
    """The outcome of a governed analysis.

    * ``outcome`` — :data:`PROVED`, :data:`REFUTED`, or :data:`UNKNOWN`;
    * ``reason`` — human-readable justification (for UNKNOWN: which
      resource ran out or which fault fired);
    * ``witness`` — the counterexample tree of a REFUTED verdict, when
      the analysis produces one;
    * ``snapshot`` — resources consumed, when a budget was attached;
    * ``provenance`` — the derivation tree recorded while the analysis
      ran (which rules fired, which solver queries were decisive), when
      collection was on.  :meth:`explain` renders it.

    A verdict is deliberately **not** a boolean: truth-testing raises so
    that three-valued results cannot be silently collapsed to two.  Use
    :attr:`is_proved` / :attr:`is_refuted` / :attr:`is_unknown`.
    """

    outcome: Outcome
    reason: str = ""
    witness: Optional["Tree"] = None
    snapshot: Optional[BudgetSnapshot] = None
    provenance: Optional[Step] = None

    @property
    def is_proved(self) -> bool:
        return self.outcome is Outcome.PROVED

    @property
    def is_refuted(self) -> bool:
        return self.outcome is Outcome.REFUTED

    @property
    def is_unknown(self) -> bool:
        return self.outcome is Outcome.UNKNOWN

    def __bool__(self) -> bool:
        raise TypeError(
            "Verdict is three-valued; test .is_proved / .is_refuted / "
            ".is_unknown instead of truthiness"
        )

    def __str__(self) -> str:
        parts = [self.outcome.value]
        if self.reason:
            parts.append(f"({self.reason})")
        if self.snapshot is not None:
            parts.append(f"[{self.snapshot}]")
        return " ".join(parts)

    # -- explanation -------------------------------------------------------

    def explain(self) -> str:
        """The verdict plus its recorded derivation, as indented text.

        Always non-empty: at minimum the outcome and reason.  When the
        analysis ran with provenance collection (every ``governed()``
        call does), the derivation tree follows — rules fired, decisive
        solver queries, the witness tree for REFUTED verdicts.
        """
        lines = [str(self)]
        if self.witness is not None:
            from ..trees.tree import format_tree

            lines.append(f"witness: {format_tree(self.witness)}")
        if self.provenance is not None and self.provenance.children:
            lines.append("derivation:")
            for child in self.provenance.children:
                lines.append(child.render(indent=1))
        return "\n".join(lines)

    @property
    def explanation(self) -> str:
        """Alias for :meth:`explain` (``lang.is_empty_verdict().explanation``)."""
        return self.explain()

    def explain_dict(self) -> dict[str, Any]:
        """The explanation as a JSON-able dict (for ``fast explain --json``)."""
        from ..trees.tree import format_tree

        return {
            "outcome": self.outcome.value,
            "reason": self.reason,
            "witness": None if self.witness is None else format_tree(self.witness),
            "snapshot": None if self.snapshot is None else self.snapshot.as_dict(),
            "derivation": (
                None if self.provenance is None else self.provenance.to_dict()
            ),
        }

    # -- constructors ------------------------------------------------------

    @staticmethod
    def proved(
        reason: str = "",
        snapshot: BudgetSnapshot | None = None,
        provenance: Step | None = None,
    ) -> "Verdict":
        return Verdict(Outcome.PROVED, reason, None, snapshot, provenance)

    @staticmethod
    def refuted(
        reason: str = "",
        witness: "Tree | None" = None,
        snapshot: BudgetSnapshot | None = None,
        provenance: Step | None = None,
    ) -> "Verdict":
        return Verdict(Outcome.REFUTED, reason, witness, snapshot, provenance)

    @staticmethod
    def unknown(
        reason: str,
        snapshot: BudgetSnapshot | None = None,
        provenance: Step | None = None,
    ) -> "Verdict":
        return Verdict(Outcome.UNKNOWN, reason, None, snapshot, provenance)


def governed(
    check: Callable[[], Any],
    budget: Budget | None = None,
    *,
    proved: str = "property holds",
    refuted: str = "counterexample found",
    provenance: bool = True,
) -> Verdict:
    """Run a witness-style check under a budget; never hang, never leak.

    ``check`` returns ``None`` when the property holds or a witness
    (counterexample) value when it does not — the convention of
    ``Language.witness``, ``separating_tree``, ``type_check``, etc.
    Any :class:`GuardError` raised along the way (budget exhaustion,
    injected fault, solver unknown) becomes an UNKNOWN verdict carrying
    the error's resource snapshot.

    Unless ``provenance=False``, the check runs under a provenance
    collector and the recorded derivation lands on the verdict — for
    UNKNOWN verdicts too, so a partial derivation shows how far the
    analysis got before the budget ran out.
    """
    collector = prov.Collector() if provenance else None

    def run() -> Any:
        if collector is None:
            return check()
        with prov.installed(collector):
            return check()

    derivation: Step | None = None

    def seal() -> Step | None:
        return collector.finish() if collector is not None else None

    if budget is not None:
        try:
            with scope(budget):
                w = run()
        except GuardError as exc:
            snap = getattr(exc, "snapshot", None) or budget.snapshot()
            return Verdict.unknown(_describe(exc), snap, seal())
        snap = budget.snapshot()
    else:
        ambient = current()
        try:
            w = run()
        except GuardError as exc:
            snap = getattr(exc, "snapshot", None) or (
                ambient.snapshot() if ambient is not None else None
            )
            return Verdict.unknown(_describe(exc), snap, seal())
        snap = ambient.snapshot() if ambient is not None else None
    derivation = seal()
    if w is None:
        return Verdict.proved(proved, snap, derivation)
    return Verdict.refuted(refuted, w, snap, derivation)


def _describe(exc: GuardError) -> str:
    text = str(exc)
    return text if text else type(exc).__name__
