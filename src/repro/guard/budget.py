"""Budgets, deadlines, and the ambient resource-governance context.

Every analysis the paper promises (emptiness, equivalence, composition,
type checking, pre-image) bottoms out in worst-case-exponential
fixpoints firing thousands of solver queries.  Z3 degrades gracefully
under resource limits by answering *unknown*; this module gives our
substrate the same property.

A :class:`Budget` bundles three independent limits:

* ``deadline`` — wall-clock seconds from activation;
* ``max_solver_queries`` — solved (cache-missing) satisfiability
  queries;
* ``max_steps`` — fixpoint/fuel steps: every governed loop in the
  automata, transducer, solver, and compiler pipelines charges one step
  per iteration.

Budgets are threaded *ambiently*: :func:`scope` pushes a budget onto a
thread-local stack, and the instrumented hot loops call :func:`tick` /
:func:`charge_query`, which are near-free when the stack is empty (one
thread-local attribute load and a truthiness check).  Nested scopes all
charge — an inner budget cannot shield work from an outer one.

Exhaustion raises a typed :class:`BudgetExceeded` subclass carrying a
:class:`BudgetSnapshot` of the resources consumed.  **Abort safety**:
charges raise only *between* units of work (loop heads, query entry),
never mid-way through a cache or intern-table insertion — the solver
publishes results into its memo tables only after they are fully
computed, so any abort leaves every process-wide table consistent and
an immediate retry with a fresh budget sees only complete entries
(verified by ``tests/guard/test_abort_safety.py``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ReproError
from ..obs import config as obs_config
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer


class GuardError(ReproError):
    """Base class of resource-governance failures.

    Catching ``GuardError`` (or calling a ``*_verdict`` analysis, which
    does it for you) is the supported way to treat budget exhaustion,
    injected faults, and solver give-ups uniformly as *unknown*.
    """


class BudgetExceeded(GuardError):
    """A governed computation ran out of a resource.

    ``snapshot`` records consumption at the moment of the abort.
    """

    #: Which resource ran out (overridden by subclasses).
    resource = "budget"

    def __init__(
        self, message: str, snapshot: "BudgetSnapshot | None" = None
    ) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed."""

    resource = "deadline"


class SolverBudgetExceeded(BudgetExceeded):
    """The solver-query budget is spent."""

    resource = "solver_queries"


class StepBudgetExceeded(BudgetExceeded):
    """The fixpoint-step (fuel) budget is spent."""

    resource = "steps"


class SolverUnknown(GuardError):
    """The solver backend gave up on a query (Z3-style *unknown*).

    Our own decision procedures are complete for the label theory, so in
    practice this is raised by the fault-injection harness
    (:mod:`repro.guard.chaos`); governed analyses degrade it to an
    UNKNOWN verdict the same way they degrade budget exhaustion.
    """


@dataclass(frozen=True)
class BudgetSnapshot:
    """Consumption and limits of a budget at one instant (JSON-able)."""

    steps: int
    solver_queries: int
    elapsed: float
    deadline: Optional[float]
    max_solver_queries: Optional[int]
    max_steps: Optional[int]

    def as_dict(self) -> dict[str, object]:
        return {
            "steps": self.steps,
            "solver_queries": self.solver_queries,
            "elapsed": self.elapsed,
            "deadline": self.deadline,
            "max_solver_queries": self.max_solver_queries,
            "max_steps": self.max_steps,
        }

    def __str__(self) -> str:
        return (
            f"steps={self.steps}"
            + (f"/{self.max_steps}" if self.max_steps is not None else "")
            + f" queries={self.solver_queries}"
            + (
                f"/{self.max_solver_queries}"
                if self.max_solver_queries is not None
                else ""
            )
            + f" elapsed={self.elapsed:.3f}s"
            + (f"/{self.deadline:.3f}s" if self.deadline is not None else "")
        )


#: Budget-consumption metrics (recorded only while :mod:`repro.obs` is on).
_OBS_STEPS = obs_metrics.counter("guard.steps")
_OBS_QUERIES = obs_metrics.counter("guard.solver_queries")
_OBS_DEADLINE_ABORTS = obs_metrics.counter("guard.deadline_aborts")
_OBS_QUERY_ABORTS = obs_metrics.counter("guard.query_budget_aborts")
_OBS_STEP_ABORTS = obs_metrics.counter("guard.step_budget_aborts")

_ABORT_COUNTERS = {
    "deadline": _OBS_DEADLINE_ABORTS,
    "solver_queries": _OBS_QUERY_ABORTS,
    "steps": _OBS_STEP_ABORTS,
}


@dataclass
class Budget:
    """A bundle of resource limits plus its live consumption counters.

    Limits are all optional (None = unlimited).  A budget is inert until
    activated by :func:`scope` (or an explicit :meth:`start`); the
    deadline clock runs from activation, not construction.  The counters
    survive deactivation, so callers can snapshot what a finished (or
    aborted) run consumed.
    """

    deadline: Optional[float] = None
    max_solver_queries: Optional[int] = None
    max_steps: Optional[int] = None
    steps: int = field(default=0, init=False)
    solver_queries: int = field(default=0, init=False)
    started_at: Optional[float] = field(default=None, init=False)
    _expires_at: Optional[float] = field(default=None, init=False, repr=False)

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent per activation)."""
        self.started_at = time.monotonic()
        self._expires_at = (
            None if self.deadline is None else self.started_at + self.deadline
        )
        return self

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def snapshot(self) -> BudgetSnapshot:
        return BudgetSnapshot(
            steps=self.steps,
            solver_queries=self.solver_queries,
            elapsed=self.elapsed(),
            deadline=self.deadline,
            max_solver_queries=self.max_solver_queries,
            max_steps=self.max_steps,
        )

    # -- charging ----------------------------------------------------------

    def charge_step(self, n: int, kind: str) -> None:
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            self._abort(
                StepBudgetExceeded,
                f"step budget exhausted at {kind!r} "
                f"({self.steps} > {self.max_steps})",
            )
        self._check_deadline(kind)

    def charge_query(self) -> None:
        self.solver_queries += 1
        if (
            self.max_solver_queries is not None
            and self.solver_queries > self.max_solver_queries
        ):
            self._abort(
                SolverBudgetExceeded,
                f"solver-query budget exhausted "
                f"({self.solver_queries} > {self.max_solver_queries})",
            )
        self._check_deadline("solver.query")

    def _check_deadline(self, kind: str) -> None:
        if self._expires_at is not None and time.monotonic() > self._expires_at:
            self._abort(
                DeadlineExceeded,
                f"deadline of {self.deadline}s exceeded at {kind!r}",
            )

    def _abort(self, exc_cls: type, message: str) -> None:
        snap = self.snapshot()
        if obs_config.ENABLED:
            _ABORT_COUNTERS[exc_cls.resource].inc()
            # A zero-length span marks *where* in the trace the abort
            # fired; it nests under whatever pipeline span is open.
            with obs_tracer.span(
                "guard.abort", reason=exc_cls.resource, detail=message
            ):
                pass
        j = obs_journal.ACTIVE
        if j is not None:
            j.emit("I", "guard.abort", {"resource": exc_cls.resource, "detail": message})
        raise exc_cls(message, snap)


class _ThreadState(threading.local):
    def __init__(self) -> None:  # called once per thread
        self.stack: list[Budget] = []


_STATE = _ThreadState()


def current() -> Optional[Budget]:
    """The innermost active budget of this thread, or None."""
    stack = _STATE.stack
    return stack[-1] if stack else None


@contextmanager
def scope(
    budget: Budget | None = None,
    *,
    deadline: Optional[float] = None,
    max_solver_queries: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> Iterator[Budget]:
    """Activate a budget for the dynamic extent of the ``with`` block.

    Pass an existing :class:`Budget` or the limits directly::

        with guard.scope(deadline=1.0) as b:
            lang.is_empty()
        print(b.snapshot())

    Scopes nest; every active budget on the stack is charged for work
    done in the innermost scope.
    """
    b = budget if budget is not None else Budget(
        deadline=deadline,
        max_solver_queries=max_solver_queries,
        max_steps=max_steps,
    )
    b.start()
    _STATE.stack.append(b)
    try:
        yield b
    finally:
        _STATE.stack.pop()


def tick(n: int = 1, kind: str = "step") -> None:
    """Charge ``n`` fixpoint steps against every active budget.

    The hot-path hook: governed loops call this once per iteration.
    With no active budget the cost is one thread-local load and a
    truthiness check.
    """
    stack = _STATE.stack
    if not stack:
        return
    if obs_config.ENABLED:
        _OBS_STEPS.inc(n)
    j = obs_journal.ACTIVE
    if j is not None:
        j.emit("G", kind, n)
    for b in stack:
        b.charge_step(n, kind)


def charge_query() -> None:
    """Charge one solved satisfiability query against every active budget."""
    stack = _STATE.stack
    if not stack:
        return
    if obs_config.ENABLED:
        _OBS_QUERIES.inc()
    j = obs_journal.ACTIVE
    if j is not None:
        j.emit("G", "solver.query", 1)
    for b in stack:
        b.charge_query()
