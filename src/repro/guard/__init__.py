"""Resource governance: budgets, deadlines, three-valued verdicts.

The paper leans on Z3, which degrades gracefully under resource limits
by answering *unknown*.  This package gives the reproduction's own
pipelines the same discipline:

* :class:`Budget` + :func:`scope` — an ambient (thread-local) bundle of
  wall-clock deadline, solver-query budget, and fixpoint-step fuel,
  charged by every governed loop in :mod:`repro.smt`,
  :mod:`repro.automata`, :mod:`repro.transducers`, and
  :mod:`repro.fast`;
* :class:`BudgetExceeded` and friends — typed aborts carrying a
  :class:`BudgetSnapshot`, raised only at safe points so all
  process-wide caches stay consistent;
* :class:`Verdict` / :func:`governed` — PROVED / REFUTED / UNKNOWN
  results for the user-facing analyses (``Language.*_verdict``,
  ``Transducer.type_check_verdict``) instead of hangs or raw errors;
* :mod:`repro.guard.chaos` (imported explicitly) — a deterministic
  fault-injection harness for the solver facade, so the degradation
  paths above are testable.

Quick use::

    from repro import guard

    v = lang1.equals_verdict(lang2, budget=guard.Budget(deadline=0.5))
    if v.is_unknown:
        print("gave up:", v.reason, v.snapshot)

CLI: ``fast --timeout 0.5 --max-solver-queries 10000 program.fast``
exits with code 3 when a budget is exhausted.
"""

from __future__ import annotations

from .budget import (
    Budget,
    BudgetExceeded,
    BudgetSnapshot,
    DeadlineExceeded,
    GuardError,
    SolverBudgetExceeded,
    SolverUnknown,
    StepBudgetExceeded,
    charge_query,
    current,
    scope,
    tick,
)
from .verdict import (
    Outcome,
    PROVED,
    REFUTED,
    UNKNOWN,
    Verdict,
    governed,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetSnapshot",
    "DeadlineExceeded",
    "GuardError",
    "SolverBudgetExceeded",
    "SolverUnknown",
    "StepBudgetExceeded",
    "charge_query",
    "current",
    "scope",
    "tick",
    "Outcome",
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "Verdict",
    "governed",
    "check_solver_consistency",
]


def check_solver_consistency(solver, sample=None) -> dict[str, int]:
    """Verify a solver's memo tables and the shared intern table.

    The abort-safety contract: after *any* abort (budget exhaustion,
    injected fault) every cached entry is complete and correct —
    results are published only after they are fully computed.  This
    checker makes the contract testable:

    * every sat-cache model actually satisfies its formula (and every
      unsat entry stays unsat under re-solving with a fresh solver);
    * the implies-cache holds only booleans keyed by term pairs;
    * the process-wide intern table maps every structural key to a term
      that rebuilds to an equal node with an equal hash.

    ``sample`` bounds the work per table (first N entries, and the
    intern checker's own sampling) so hot paths — the worker hygiene
    flush runs this between jobs — pay O(sample) instead of re-solving
    an arbitrarily large sat cache; ``None`` checks everything.

    Returns the number of entries checked per table; raises
    ``AssertionError`` on any violation.
    """
    import itertools

    from ..smt import terms as terms_mod
    from ..smt.solver import Model, Solver

    def bounded(items):
        return items if sample is None else itertools.islice(items, sample)

    checked = {"sat_cache": 0, "implies_cache": 0, "intern_table": 0}
    fresh = Solver(cache=False)
    for formula, model in bounded(list(solver._sat_cache.items())):
        assert isinstance(formula, terms_mod.Term), (
            f"sat cache key is not a Term: {formula!r}"
        )
        if model is None:
            assert fresh.get_model(formula) is None, (
                f"cached UNSAT entry is satisfiable: {formula!r}"
            )
        else:
            assert isinstance(model, Model)
            assert model.satisfies(formula), (
                f"cached model does not satisfy its formula: {formula!r}"
            )
        checked["sat_cache"] += 1
    for key, value in bounded(list(solver._implies_cache.items())):
        assert (
            isinstance(key, tuple)
            and len(key) == 2
            and all(isinstance(t, terms_mod.Term) for t in key)
        ), f"bad implies cache key: {key!r}"
        assert isinstance(value, bool), f"bad implies cache value: {value!r}"
        checked["implies_cache"] += 1
    if sample is None:
        checked["intern_table"] = terms_mod.check_intern_invariants()
    else:
        checked["intern_table"] = terms_mod.check_intern_invariants(
            sample=sample
        )
    return checked
