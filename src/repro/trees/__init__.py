"""Ranked attributed trees: types, values, parsing, and encodings."""

from .parser import TreeParseError, parse_tree
from .tree import Tree, dag_post_order, format_tree, node
from .types import (
    AttributeField,
    Constructor,
    TreeType,
    TreeTypeError,
    make_tree_type,
)
from .unranked import (
    Unranked,
    binary_tree_type,
    decode_list,
    decode_string,
    decode_unranked,
    encode_list,
    encode_string,
    encode_unranked,
    list_tree_type,
    string_tree_type,
)

__all__ = [
    "AttributeField",
    "Constructor",
    "Tree",
    "TreeParseError",
    "TreeType",
    "TreeTypeError",
    "Unranked",
    "binary_tree_type",
    "dag_post_order",
    "decode_list",
    "decode_string",
    "decode_unranked",
    "encode_list",
    "encode_string",
    "encode_unranked",
    "format_tree",
    "list_tree_type",
    "make_tree_type",
    "node",
    "parse_tree",
    "string_tree_type",
]
