"""Parser for the textual tree syntax ``f["a" 3 true](c1, c2)``.

The inverse of :func:`repro.trees.tree.format_tree`; used by tests, the
CLI, and error messages.  Attribute literals: double-quoted strings
(with backslash escapes), integers, reals (``1.5`` or ``3/4``), and
``true``/``false``.  Children may be separated by commas or whitespace.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..errors import ParseDepthError, ReproError, SourceLocation
from ..smt.terms import Value
from .tree import Tree


class TreeParseError(ReproError):
    """The input is not a well-formed tree term."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(
            f"{message} (at offset {position})",
            location=SourceLocation(offset=position),
        )
        self.position = position


class TreeParseDepthError(ParseDepthError, TreeParseError):
    """Tree nesting exceeded the parser's ``max_depth`` cap."""


class _Parser:
    def __init__(self, text: str, max_depth: Optional[int] = None) -> None:
        self.text = text
        self.pos = 0
        self.max_depth = max_depth

    def error(self, message: str) -> TreeParseError:
        return TreeParseError(message, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n,":
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def ident(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]

    def string(self) -> str:
        self.expect('"')
        out: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.pos >= len(self.text):
                    raise self.error("dangling escape")
                esc = self.text[self.pos]
                self.pos += 1
                out.append({"n": "\n", "t": "\t", "r": "\r"}.get(esc, esc))
            else:
                out.append(ch)

    def number(self) -> Value:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.peek() == "/":
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            return Fraction(self.text[start : self.pos])
        if self.peek() == ".":
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            return Fraction(self.text[start : self.pos])
        if self.pos == start or self.text[start : self.pos] == "-":
            raise self.error("expected a number")
        return int(self.text[start : self.pos])

    def attr(self) -> Value:
        ch = self.peek()
        if ch == '"':
            return self.string()
        if ch.isdigit() or ch == "-":
            return self.number()
        word = self.ident()
        if word == "true":
            return True
        if word == "false":
            return False
        raise self.error(f"unknown attribute literal {word!r}")

    def header(self) -> tuple[str, tuple[Value, ...]]:
        """Constructor name plus the ``[...]`` attribute block, if any."""
        self.skip_ws()
        ctor = self.ident()
        attrs: list[Value] = []
        self.skip_ws()
        if self.peek() == "[":
            self.pos += 1
            self.skip_ws()
            while self.peek() != "]":
                attrs.append(self.attr())
                self.skip_ws()
            self.pos += 1
        return ctor, tuple(attrs)

    def tree(self) -> Tree:
        # Iterative descent with an explicit frame stack: a frame is an
        # open ``ctor[attrs](`` waiting for its children, so input depth
        # costs heap, not Python stack — a million-deep ``f(f(...))``
        # parses fine (subject only to the opt-in ``max_depth`` cap).
        stack: list[tuple[str, tuple[Value, ...], list[Tree]]] = []
        done: Optional[Tree] = None
        while True:
            if done is None:
                ctor, attrs = self.header()
                self.skip_ws()
                if self.peek() == "(":
                    self.pos += 1
                    if self.max_depth is not None and len(stack) >= self.max_depth:
                        raise TreeParseDepthError(
                            f"tree nesting exceeds max_depth={self.max_depth}",
                            self.pos,
                        )
                    stack.append((ctor, attrs, []))
                    self.skip_ws()
                    if self.peek() == ")":
                        self.pos += 1
                        c, a, kids = stack.pop()
                        done = Tree(c, a, tuple(kids))
                    continue
                done = Tree(ctor, attrs, ())
            if not stack:
                return done
            stack[-1][2].append(done)
            done = None
            self.skip_ws()
            if self.peek() == ")":
                self.pos += 1
                c, a, kids = stack.pop()
                done = Tree(c, a, tuple(kids))


def parse_tree(text: str, max_depth: Optional[int] = None) -> Tree:
    """Parse a tree term from text.

    ``max_depth`` optionally caps the nesting depth (raising
    :class:`TreeParseDepthError` past it); by default depth is unbounded
    — the parser is iterative, so deep input cannot blow the Python
    stack.
    """
    parser = _Parser(text, max_depth=max_depth)
    tree = parser.tree()
    parser.skip_ws()
    if parser.pos != len(text):
        raise parser.error("trailing input after tree term")
    return tree
