"""Parser for the textual tree syntax ``f["a" 3 true](c1, c2)``.

The inverse of :func:`repro.trees.tree.format_tree`; used by tests, the
CLI, and error messages.  Attribute literals: double-quoted strings
(with backslash escapes), integers, reals (``1.5`` or ``3/4``), and
``true``/``false``.  Children may be separated by commas or whitespace.
"""

from __future__ import annotations

from fractions import Fraction

from ..smt.terms import Value
from .tree import Tree


class TreeParseError(Exception):
    """The input is not a well-formed tree term."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TreeParseError:
        return TreeParseError(message, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n,":
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def ident(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]

    def string(self) -> str:
        self.expect('"')
        out: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.pos >= len(self.text):
                    raise self.error("dangling escape")
                esc = self.text[self.pos]
                self.pos += 1
                out.append({"n": "\n", "t": "\t", "r": "\r"}.get(esc, esc))
            else:
                out.append(ch)

    def number(self) -> Value:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.peek() == "/":
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            return Fraction(self.text[start : self.pos])
        if self.peek() == ".":
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            return Fraction(self.text[start : self.pos])
        if self.pos == start or self.text[start : self.pos] == "-":
            raise self.error("expected a number")
        return int(self.text[start : self.pos])

    def attr(self) -> Value:
        ch = self.peek()
        if ch == '"':
            return self.string()
        if ch.isdigit() or ch == "-":
            return self.number()
        word = self.ident()
        if word == "true":
            return True
        if word == "false":
            return False
        raise self.error(f"unknown attribute literal {word!r}")

    def tree(self) -> Tree:
        self.skip_ws()
        ctor = self.ident()
        attrs: list[Value] = []
        self.skip_ws()
        if self.peek() == "[":
            self.pos += 1
            self.skip_ws()
            while self.peek() != "]":
                attrs.append(self.attr())
                self.skip_ws()
            self.pos += 1
        children: list[Tree] = []
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            self.skip_ws()
            while self.peek() != ")":
                children.append(self.tree())
                self.skip_ws()
            self.pos += 1
        return Tree(ctor, tuple(attrs), tuple(children))


def parse_tree(text: str) -> Tree:
    """Parse a tree term from text."""
    parser = _Parser(text)
    tree = parser.tree()
    parser.skip_ws()
    if parser.pos != len(text):
        raise parser.error("trailing input after tree term")
    return tree
