"""Concrete trees.

A :class:`Tree` is an immutable node ``f[a1 .. am](t1 .. tk)``: a
constructor name, a tuple of attribute values, and a tuple of children.
Trees are structural — a tree belongs to a :class:`~repro.trees.types.TreeType`
if it validates against it — which keeps transducer outputs cheap to build.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from ..smt.terms import Value


@dataclass(frozen=True)
class Tree:
    """An attributed ranked tree ``ctor[attrs](children)``."""

    ctor: str
    attrs: tuple[Value, ...] = ()
    children: tuple["Tree", ...] = ()

    def __post_init__(self) -> None:
        # Cache the hash: trees key memoization tables in the automaton
        # algorithms, and recomputing a deep hash per lookup is quadratic.
        object.__setattr__(
            self, "_hash", hash((self.ctor, self.attrs, self.children))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return format_tree(self)

    @property
    def rank(self) -> int:
        return len(self.children)

    def size(self) -> int:
        """Number of nodes (iterative: trees can be thousands deep).

        Shared subtree objects are counted once per occurrence.
        """
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (leaf = 1).

        Computed over distinct subtree objects: witness trees produced by
        the emptiness fixpoint share subtrees aggressively (they are DAGs
        in memory), so a path-walking implementation would be exponential.
        """
        memo: dict[int, int] = {}
        for t in dag_post_order(self):
            memo[id(t)] = 1 + max((memo[id(c)] for c in t.children), default=0)
        return memo[id(self)]

    def iter_nodes(self) -> Iterator["Tree"]:
        """All nodes, pre-order."""
        stack = [self]
        while stack:
            t = stack.pop()
            yield t
            stack.extend(reversed(t.children))

    def count(self, ctor: str) -> int:
        """How many nodes use the given constructor."""
        return sum(1 for n in self.iter_nodes() if n.ctor == ctor)

    def replace_children(self, children: Sequence["Tree"]) -> "Tree":
        return Tree(self.ctor, self.attrs, tuple(children))


def dag_post_order(tree: Tree) -> list[Tree]:
    """Distinct subtree objects, children before parents (iterative).

    Visits each *object* exactly once, so it is linear even when subtrees
    are shared (DAG-shaped witnesses); use this for bottom-up analyses.
    """
    out: list[Tree] = []
    seen: set[int] = set()
    stack: list[tuple[Tree, bool]] = [(tree, False)]
    while stack:
        t, expanded = stack.pop()
        if expanded:
            out.append(t)
            continue
        if id(t) in seen:
            continue
        seen.add(id(t))
        stack.append((t, True))
        for c in t.children:
            stack.append((c, False))
    return out


def node(ctor: str, attrs: Sequence[Value] = (), *children: Tree) -> Tree:
    """Build a tree node; ``attrs`` may be a single value for 1-field types."""
    if not isinstance(attrs, (tuple, list)):
        attrs = (attrs,)
    return Tree(ctor, tuple(attrs), tuple(children))


def _format_attr(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return f"{value.numerator}.0"
        return f"{value.numerator}/{value.denominator}"
    return str(value)


def format_tree(tree: Tree) -> str:
    """Render in the paper's surface syntax: ``f["a"](c1, c2)``."""
    attrs = " ".join(_format_attr(a) for a in tree.attrs)
    head = tree.ctor + (f"[{attrs}]" if attrs else "[]" if tree.attrs else "")
    if not tree.children:
        return head
    return head + "(" + ", ".join(format_tree(c) for c in tree.children) + ")"
