"""Ranked tree types with symbolic attributes.

A tree type ``T^sigma_Sigma`` (paper Section 3.1) pairs a finite ranked
alphabet ``Sigma`` (constructors with fixed arities) with an attribute
record drawn from the label theory: every node carries one value per
attribute field.  The Fast declaration

    type HtmlE[tag : String]{nil(0), val(1), attr(2), node(3)}

becomes ``TreeType("HtmlE", [("tag", STRING)], {nil: 0, val: 1,
attr: 2, node: 3})``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..smt.sorts import BOOL, INT, REAL, STRING, Sort
from ..smt.terms import Value, Var

if TYPE_CHECKING:  # pragma: no cover
    from .tree import Tree


class TreeTypeError(Exception):
    """A tree or constructor does not conform to its declared type."""


@dataclass(frozen=True)
class Constructor:
    """A ranked constructor ``f`` with ``rank`` children."""

    name: str
    rank: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise TreeTypeError(f"constructor {self.name} has negative rank")


@dataclass(frozen=True)
class AttributeField:
    """One field of the attribute record carried by every node."""

    name: str
    sort: Sort


@dataclass(frozen=True)
class TreeType:
    """A ranked alphabet plus an attribute record.

    ``constructors`` maps names to :class:`Constructor`.  At least one
    nullary constructor must exist so the type is inhabited (the paper
    requires ``Sigma(0)`` to be non-empty).
    """

    name: str
    fields: tuple[AttributeField, ...]
    constructors: tuple[Constructor, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.constructors]
        if len(set(names)) != len(names):
            raise TreeTypeError(f"duplicate constructor names in {self.name}")
        if not any(c.rank == 0 for c in self.constructors):
            raise TreeTypeError(f"type {self.name} has no nullary constructor")
        field_names = [f.name for f in self.fields]
        if len(set(field_names)) != len(field_names):
            raise TreeTypeError(f"duplicate attribute fields in {self.name}")

    # -- lookups -----------------------------------------------------------

    def constructor(self, name: str) -> Constructor:
        for c in self.constructors:
            if c.name == name:
                return c
        raise TreeTypeError(f"{self.name} has no constructor {name!r}")

    def has_constructor(self, name: str) -> bool:
        return any(c.name == name for c in self.constructors)

    def rank(self, name: str) -> int:
        return self.constructor(name).rank

    def field(self, name: str) -> AttributeField:
        for f in self.fields:
            if f.name == name:
                return f
        raise TreeTypeError(f"{self.name} has no attribute field {name!r}")

    def attr_vars(self) -> tuple[Var, ...]:
        """The guard variables: one per attribute field (interned)."""
        from ..smt.builders import mk_var

        return tuple(mk_var(f.name, f.sort) for f in self.fields)

    def nullary(self) -> Constructor:
        """Some nullary constructor (used for witness construction)."""
        return next(c for c in self.constructors if c.rank == 0)

    def max_rank(self) -> int:
        return max(c.rank for c in self.constructors)

    # -- attribute handling --------------------------------------------------

    def default_attrs(self) -> tuple[Value, ...]:
        out: list[Value] = []
        for f in self.fields:
            if f.sort is BOOL:
                out.append(False)
            elif f.sort is INT:
                out.append(0)
            elif f.sort is REAL:
                out.append(Fraction(0))
            elif f.sort is STRING:
                out.append("")
            else:  # pragma: no cover - no other sorts exist
                raise TreeTypeError(f"no default for sort {f.sort}")
        return tuple(out)

    def check_attrs(self, attrs: Sequence[Value]) -> None:
        if len(attrs) != len(self.fields):
            raise TreeTypeError(
                f"{self.name} expects {len(self.fields)} attribute(s), "
                f"got {len(attrs)}"
            )
        for f, v in zip(self.fields, attrs):
            ok = (
                (f.sort is BOOL and isinstance(v, bool))
                or (f.sort is INT and isinstance(v, int) and not isinstance(v, bool))
                or (f.sort is REAL and isinstance(v, (int, Fraction)) and not isinstance(v, bool))
                or (f.sort is STRING and isinstance(v, str))
            )
            if not ok:
                raise TreeTypeError(
                    f"attribute {f.name} of {self.name} expects {f.sort}, "
                    f"got {v!r}"
                )

    def attr_env(self, attrs: Sequence[Value]) -> dict[str, Value]:
        """Bind attribute values to field names (for guard evaluation)."""
        return {f.name: v for f, v in zip(self.fields, attrs)}

    # -- validation ----------------------------------------------------------

    def validate(self, tree: "Tree") -> None:
        """Check that a tree conforms to this type (raises otherwise)."""
        ctor = self.constructor(tree.ctor)
        self.check_attrs(tree.attrs)
        if len(tree.children) != ctor.rank:
            raise TreeTypeError(
                f"{tree.ctor} has rank {ctor.rank}, got "
                f"{len(tree.children)} children"
            )
        for child in tree.children:
            self.validate(child)

    def contains(self, tree: "Tree") -> bool:
        try:
            self.validate(tree)
        except TreeTypeError:
            return False
        return True


def make_tree_type(
    name: str,
    fields: Iterable[tuple[str, Sort]],
    constructors: Mapping[str, int],
) -> TreeType:
    """Convenience builder mirroring the Fast ``type`` declaration."""
    return TreeType(
        name,
        tuple(AttributeField(n, s) for n, s in fields),
        tuple(Constructor(n, r) for n, r in constructors.items()),
    )
