"""Encodings between unranked/list data and ranked trees.

The paper (Section 2, Figure 3) encodes unranked DOM trees as ranked
trees using the classical first-child / next-sibling encoding; Section 5.3
encodes integer lists as ``cons``/``nil`` chains.  This module provides
the generic encoders; the HTML-specific ``HtmlE`` encoding builds on the
unranked one in :mod:`repro.apps.html.encoding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..smt.sorts import Sort, STRING
from ..smt.terms import Value
from .tree import Tree
from .types import TreeType, make_tree_type


@dataclass(frozen=True)
class Unranked:
    """An unranked tree: a label plus any number of children."""

    label: str
    children: tuple["Unranked", ...] = ()

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)


def binary_tree_type(name: str = "Bin") -> TreeType:
    """First-child/next-sibling encoding alphabet: ``node(2)`` and ``nil(0)``."""
    return make_tree_type(name, [("label", STRING)], {"nil": 0, "node": 2})


def encode_unranked(trees: Sequence[Unranked]) -> Tree:
    """Encode a forest with the first-child / next-sibling encoding.

    ``node[label](first-child-forest, next-sibling-forest)``; the empty
    forest is ``nil[""]``.
    """
    result = Tree("nil", ("",))
    for t in reversed(trees):
        result = Tree("node", (t.label,), (encode_unranked(t.children), result))
    return result


def decode_unranked(tree: Tree) -> list[Unranked]:
    """Inverse of :func:`encode_unranked`."""
    out: list[Unranked] = []
    while tree.ctor == "node":
        first, rest = tree.children
        out.append(Unranked(str(tree.attrs[0]), tuple(decode_unranked(first))))
        tree = rest
    if tree.ctor != "nil":
        raise ValueError(f"not a binary encoding: unexpected {tree.ctor}")
    return out


# ---------------------------------------------------------------------------
# List encodings (Section 5.3: type IList[i : Int]{nil(0), cons(1)})
# ---------------------------------------------------------------------------


def list_tree_type(name: str, sort: Sort) -> TreeType:
    """The Fast list type ``type name[i : sort]{nil(0), cons(1)}``."""
    return make_tree_type(name, [("i", sort)], {"nil": 0, "cons": 1})


def encode_list(values: Iterable[Value], type_: TreeType) -> Tree:
    """Encode a Python sequence as a ``cons`` chain."""
    default = type_.default_attrs()
    result = Tree("nil", default)
    for v in reversed(list(values)):
        result = Tree("cons", (v,), (result,))
    return result


def decode_list(tree: Tree) -> list[Value]:
    """Inverse of :func:`encode_list`."""
    out: list[Value] = []
    while tree.ctor == "cons":
        out.append(tree.attrs[0])
        (tree,) = tree.children
    if tree.ctor != "nil":
        raise ValueError(f"not a list encoding: unexpected {tree.ctor}")
    return out


def string_tree_type(name: str = "Str") -> TreeType:
    """Strings as ``val`` chains of single characters (paper Section 2)."""
    return make_tree_type(name, [("tag", STRING)], {"nil": 0, "val": 1})


def encode_string(text: str) -> Tree:
    """Encode a string as a chain of single-character ``val`` nodes."""
    result = Tree("nil", ("",))
    for ch in reversed(text):
        result = Tree("val", (ch,), (result,))
    return result


def decode_string(tree: Tree) -> str:
    """Inverse of :func:`encode_string`."""
    out: list[str] = []
    while tree.ctor == "val":
        out.append(str(tree.attrs[0]))
        (tree,) = tree.children
    if tree.ctor != "nil":
        raise ValueError(f"not a string encoding: unexpected {tree.ctor}")
    return "".join(out)
