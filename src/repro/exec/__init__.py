"""The compiled execution tier (ROADMAP item: warm-path performance).

Two layers sit between the Fast front end and the STTR interpreter:

* :mod:`repro.exec.compiled` — closure lowering.  An
  :class:`~repro.transducers.sttr.STTR` is compiled once into a
  :class:`~repro.exec.compiled.CompiledSTTR`: per-(state, symbol)
  dispatch tables indexed by minterm id (the sign vector of the
  symbol's distinct guards), so each node evaluates every distinct
  guard at most once, and rule bodies lowered to pre-resolved
  output-assembly closures.  ``Transducer.apply`` routes through the
  compiled form; the interpreter in :mod:`repro.transducers.run` stays
  the reference oracle (property-tested equivalent).

* :mod:`repro.exec.cache` — the persistent artifact cache.  A whole
  compiled program environment (:mod:`repro.exec.artifact`) is stored
  content-addressed (SHA-256 of the source + a version salt) in an
  in-process LRU with an on-disk JSON layer behind it, so two
  consecutive jobs for the same program never parse twice.

Both layers are observable (``exec.*`` metrics, DESIGN.md §8) and
optional: ``REPRO_EXEC=interp`` forces the interpreter,
``REPRO_CACHE=off`` disables the artifact cache (see
:mod:`repro.exec.config`).
"""

from .artifact import CompiledArtifact, build_artifact
from .cache import ArtifactCache, DEFAULT_CACHE, cached_artifact
from .compiled import CompiledSTTR, run_compiled_checked

__all__ = [
    "ArtifactCache",
    "CompiledArtifact",
    "CompiledSTTR",
    "DEFAULT_CACHE",
    "build_artifact",
    "cached_artifact",
    "run_compiled_checked",
]
