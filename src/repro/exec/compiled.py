"""Closure lowering: STTR -> dispatch tables + output closures.

The interpreter (:mod:`repro.transducers.run`) re-walks rule lists and
re-evaluates each rule's guard at every (state, node) task.  Lowering
factors that work out of the hot loop:

* **Guards are deduplicated per symbol.**  All rules for a constructor
  share one ordered tuple of *distinct* guard terms (hash-consing makes
  duplicates identical objects, so dedup is an identity test).  A node
  is classified once into a **sign vector** — the tuple of guard truth
  values under its attributes — which is exactly a minterm id over the
  symbol's guard predicates (paper Section 4's minterm construction).

* **Dispatch is a table lookup.**  ``(state, symbol, sign vector) ->
  tuple of applicable rules`` is memoized: the guard subset test runs
  once per distinct minterm, not once per node.  Tables fill lazily
  from observed sign vectors (an observed vector is its own
  satisfiability proof — no solver involved); :meth:`CompiledSTTR.
  precompute` eagerly enumerates the satisfiable vectors with
  :func:`repro.smt.minterms.minterms` when a solver is at hand.

* **Output assembly is a closure.**  Each rule body is lowered once
  into a nest of closures mirroring ``run._eval_output`` (cross
  products via the shared ``run._cross``), so the per-task work is
  calls, not ``isinstance`` dispatch over output terms.

:func:`run_compiled_checked` replicates the interpreter's observable
semantics *exactly* — task discovery order, height-sorted evaluation,
``limit``/probe truncation and taint propagation, one
``transducer.task`` budget tick per task, the provenance note — and is
property-tested equivalent (``tests/exec/test_compiled_equivalence``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..automata.semantics import acceptance_table
from ..guard.budget import tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from ..smt.minterms import minterms
from ..smt.solver import Solver
from ..smt.terms import Term
from ..transducers.output_terms import OutApply, OutNode, OutputTerm
from ..transducers.run import TransductionError, _cross
from ..transducers.sttr import STTR, STTRRule, State
from ..trees.tree import Tree, dag_post_order

_OBS_COMPILES = obs_metrics.counter("exec.compile")
_OBS_DISPATCH = obs_metrics.counter("exec.dispatch")
_OBS_DISPATCH_MEMO = obs_metrics.counter("exec.dispatch.table_fills")

#: ``emit(env, node, results, probe) -> (outputs, hit-the-probe-cap?)``
Emit = Callable[[dict, Tree, dict, Optional[int]], tuple[list[Tree], bool]]


def _lower_output(term: OutputTerm) -> Emit:
    """One output term -> a pre-resolved assembly closure.

    Mirrors ``run._eval_output`` case by case; the ``isinstance``
    dispatch happens here, once, instead of on every task.
    """
    if isinstance(term, OutApply):
        state, index = term.state, term.index

        def emit_apply(env, node, results, probe):
            return results[(state, id(node.children[index]))], False

        return emit_apply
    if isinstance(term, OutNode):
        ctor = term.ctor
        attr_evals = tuple(e.evaluate for e in term.attr_exprs)
        kids = tuple(_lower_output(c) for c in term.children)

        def emit_node(env, node, results, probe):
            attrs = tuple(ev(env) for ev in attr_evals)
            kid_lists: list[list[Tree]] = []
            capped = False
            for kid in kids:
                outs, kid_capped = kid(env, node, results, probe)
                capped = capped or kid_capped
                kid_lists.append(outs)
            out: list[Tree] = []
            cross_capped = _cross(kid_lists, 0, [], attrs, ctor, out, probe)
            return out, capped or cross_capped

        return emit_node
    raise TransductionError(f"cannot lower extended term {term!r}")


class CompiledRule:
    """One lowered rule: guard slot + lookahead + targets + emitter."""

    __slots__ = ("rule", "guard_slot", "lookahead", "targets", "emit")

    def __init__(self, rule: STTRRule, guard_slot: int) -> None:
        self.rule = rule
        #: Index of this rule's guard in the symbol's distinct-guard tuple.
        self.guard_slot = guard_slot
        self.lookahead = rule.lookahead
        #: ``(state, child index)`` pairs, in output-term iteration order
        #: (the interpreter's discovery/taint order depends on it).
        self.targets = tuple(
            (t.state, t.index)
            for t in rule.output.iter_terms()
            if isinstance(t, OutApply)
        )
        self.emit = _lower_output(rule.output)


class CompiledSTTR:
    """An STTR lowered to dispatch tables and output closures."""

    def __init__(self, sttr: STTR) -> None:
        self.sttr = sttr
        # Distinct guards per symbol, in first-occurrence order.  Terms
        # are hash-consed, so dict identity doubles as term equality.
        guard_slots: dict[str, dict[Term, int]] = {}
        for r in sttr.rules:
            slots = guard_slots.setdefault(r.ctor, {})
            if r.guard not in slots:
                slots[r.guard] = len(slots)
        self.ctor_guards: dict[str, tuple[Term, ...]] = {
            ctor: tuple(slots) for ctor, slots in guard_slots.items()
        }
        # Lowered rules grouped like STTR._index, preserving rule order
        # (output ordering of nondeterministic rules depends on it).
        self.rules_by_key: dict[tuple[State, str], tuple[CompiledRule, ...]] = {}
        grouped: dict[tuple[State, str], list[CompiledRule]] = {}
        for r in sttr.rules:
            grouped.setdefault((r.state, r.ctor), []).append(
                CompiledRule(r, guard_slots[r.ctor][r.guard])
            )
        self.rules_by_key = {k: tuple(v) for k, v in grouped.items()}
        # (state, ctor, sign vector) -> applicable rules; filled lazily
        # from observed vectors, eagerly by precompute().
        self._table: dict[
            tuple[State, str, tuple[bool, ...]], tuple[CompiledRule, ...]
        ] = {}
        _OBS_COMPILES.inc()

    # -- dispatch ----------------------------------------------------------

    def classify(self, node: Tree, env: dict) -> tuple[bool, ...]:
        """The node's sign vector over its symbol's distinct guards."""
        guards = self.ctor_guards.get(node.ctor)
        if not guards:
            return ()
        return tuple(bool(g.evaluate(env)) for g in guards)

    def dispatch(
        self, state: State, ctor: str, signs: tuple[bool, ...]
    ) -> tuple[CompiledRule, ...]:
        """Applicable rules for ``(state, ctor)`` under a sign vector."""
        key = (state, ctor, signs)
        rules = self._table.get(key)
        if rules is None:
            base = self.rules_by_key.get((state, ctor), ())
            rules = tuple(r for r in base if signs[r.guard_slot])
            self._table[key] = rules
            if obs_config.ENABLED:
                _OBS_DISPATCH_MEMO.inc()
        if obs_config.ENABLED:
            _OBS_DISPATCH.inc()
        return rules

    def precompute(self, solver: Solver) -> int:
        """Eagerly fill the dispatch table for every satisfiable minterm.

        Enumerates the satisfiable sign vectors of each symbol's guard
        set with :func:`repro.smt.minterms.minterms` (solver-pruned sign
        DFS) and materializes the table rows, so a warm run never takes
        the lazy-fill branch.  Returns the number of table entries.
        """
        states_by_ctor: dict[str, list[State]] = {}
        for state, ctor in self.rules_by_key:
            states_by_ctor.setdefault(ctor, []).append(state)
        for ctor, guards in self.ctor_guards.items():
            for signs, _conj in minterms(list(guards), solver):
                vector = tuple(signs)
                for state in states_by_ctor.get(ctor, ()):
                    self.dispatch(state, ctor, vector)
        return len(self._table)

    def table_size(self) -> int:
        return len(self._table)


def run_compiled_checked(
    compiled: CompiledSTTR,
    tree: Tree,
    state: State | None = None,
    limit: Optional[int] = None,
) -> tuple[list[Tree], bool]:
    """``T_state(tree)`` plus a truncation flag, via the compiled tier.

    Same contract (and the same observable effects: budget ticks,
    provenance note, output order) as
    :func:`repro.transducers.run.run_checked`.
    """
    sttr = compiled.sttr
    root_state = sttr.initial if state is None else state
    la_table = acceptance_table(sttr.lookahead_sta, tree)
    attr_env = sttr.input_type.attr_env

    # Per-run caches: each distinct node is classified (attr env built,
    # every distinct guard evaluated) at most once, however many states
    # visit it.
    envs: dict[int, dict] = {}
    signs_of: dict[int, tuple[bool, ...]] = {}

    def node_env(t: Tree) -> dict:
        env = envs.get(id(t))
        if env is None:
            env = attr_env(t.attrs)
            envs[id(t)] = env
        return env

    def node_signs(t: Tree) -> tuple[bool, ...]:
        signs = signs_of.get(id(t))
        if signs is None:
            signs = compiled.classify(t, node_env(t))
            signs_of[id(t)] = signs
        return signs

    # Discovery: identical traversal order to run._discover_tasks, with
    # guard evaluation replaced by the dispatch-table lookup.
    tasks: list[tuple[State, Tree, tuple[CompiledRule, ...]]] = []
    seen: set[tuple[State, int]] = set()
    work: list[tuple[State, Tree]] = [(root_state, tree)]
    while work:
        q, t = work.pop()
        key = (q, id(t))
        if key in seen:
            continue
        seen.add(key)
        dispatched = compiled.dispatch(q, t.ctor, node_signs(t))
        applicable = tuple(
            cr
            for cr in dispatched
            if all(l <= la_table[id(c)] for l, c in zip(cr.lookahead, t.children))
        )
        tasks.append((q, t, applicable))
        for cr in applicable:
            for target_state, index in cr.targets:
                work.append((target_state, t.children[index]))

    # Bottom-up evaluation sorted by subtree height (see run_checked for
    # why discovery order is not topological over shared subtrees).
    heights: dict[int, int] = {}
    for n in dag_post_order(tree):
        heights[id(n)] = 1 + max((heights[id(c)] for c in n.children), default=0)
    tasks.sort(key=lambda task: heights[id(task[1])])

    probe = None if limit is None else limit + 1
    results: dict[tuple[State, int], list[Tree]] = {}
    tainted: set[tuple[State, int]] = set()
    for q, t, applicable in tasks:
        _tick(kind="transducer.task")
        env = node_env(t)
        outputs: dict[Tree, None] = {}
        cut = False
        for cr in applicable:
            produced, capped = cr.emit(env, t, results, probe)
            cut = cut or capped
            for out in produced:
                outputs.setdefault(out)
            if limit is not None and len(outputs) > limit:
                cut = True
                break
        kept = list(outputs)
        if limit is not None and len(kept) > limit:
            cut = True
            kept = kept[:limit]
        key = (q, id(t))
        if cut or any(
            (target_state, id(t.children[index])) in tainted
            for cr in applicable
            for target_state, index in cr.targets
        ):
            tainted.add(key)
        results[key] = kept
    root_key = (root_state, id(tree))
    if prov.is_active():
        prov.note(
            "run",
            f"ran {sttr.name} from state {root_state}: {len(tasks)} tasks, "
            f"{len(results[root_key])} output(s)",
        )
    return results[root_key], root_key in tainted
