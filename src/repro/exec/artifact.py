"""Compiled program artifacts: the unit the artifact cache stores.

A :class:`CompiledArtifact` is everything ``fast run/check/explain``
and the svc job executors need from a program, detached from its
source text:

* the compiled environment (types, languages, transducers, trees) —
  serialized via the :mod:`repro.serialize` primitives;
* the program's ``assert``/``print`` declarations (AST subtrees, so
  cached programs still evaluate assertions with per-assert budgets
  and provenance);
* the declaration count, so a cache hit can *replay* the front end's
  ``fast.decl`` budget charge — a budget too small to compile a
  program must stay too small when the program is already cached
  (``tests/fast/test_cli_budget.py`` pins this).

Artifacts are JSON all the way down, registered with
:func:`repro.serialize.register` under the ``compiled_program`` kind,
so ``repro.serialize.dumps``/``loads`` round-trip them like any other
core object.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from .. import serialize
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..automata.language import Language
from ..fast import ast
from ..fast.compiler import CompiledProgram, Compiler
from ..fast.parser import parse_program
from ..transducers import Transducer

#: Version tag of the artifact JSON layout; part of the cache salt, so
#: bumping it invalidates every on-disk artifact at once.
ARTIFACT_SCHEMA = "repro.exec.artifact/v1"

_OBS_BUILDS = obs_metrics.counter("exec.artifact.builds")


class ArtifactError(serialize.SerializationError):
    """Malformed artifact payloads."""


# ---------------------------------------------------------------------------
# AST (de)serialization for assert / print declarations
# ---------------------------------------------------------------------------

#: Every dataclass reachable from an AssertDecl / PrintDecl subtree.
_AST_CLASSES = {
    cls.__name__: cls
    for cls in (
        ast.Pos,
        ast.EVar,
        ast.EConst,
        ast.EOp,
        ast.LRef,
        ast.LBinop,
        ast.LUnop,
        ast.LDomain,
        ast.LPreImage,
        ast.TRef,
        ast.TCompose,
        ast.TRestrict,
        ast.TreeRef,
        ast.TreeCons,
        ast.TreeApply,
        ast.TreeWitness,
        ast.ALangEq,
        ast.AIsEmptyLang,
        ast.AIsEmptyTrans,
        ast.AMember,
        ast.ATypeCheck,
        ast.AssertDecl,
        ast.PrintDecl,
    )
}


def _ast_to_json(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, Fraction):
        return {"$frac": [obj.numerator, obj.denominator]}
    if isinstance(obj, tuple):
        return [_ast_to_json(x) for x in obj]
    cls_name = type(obj).__name__
    if dataclasses.is_dataclass(obj) and cls_name in _AST_CLASSES:
        return {
            "$ast": cls_name,
            "fields": {
                f.name: _ast_to_json(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    raise ArtifactError(f"cannot serialize AST value {obj!r}")


def _ast_from_json(data: Any) -> Any:
    if data is None or isinstance(data, (bool, int, str)):
        return data
    if isinstance(data, list):
        # Every sequence field in the Fast AST is a tuple.
        return tuple(_ast_from_json(x) for x in data)
    if isinstance(data, dict):
        if "$frac" in data:
            n, d = data["$frac"]
            return Fraction(n, d)
        if "$ast" in data:
            cls = _AST_CLASSES.get(data["$ast"])
            if cls is None:
                raise ArtifactError(f"unknown AST class {data['$ast']!r}")
            return cls(
                **{k: _ast_from_json(v) for k, v in data["fields"].items()}
            )
    raise ArtifactError(f"bad AST payload: {data!r}")


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------


@dataclass
class CompiledArtifact:
    """A compiled program environment plus its runnable declarations."""

    env: CompiledProgram
    #: Assert / print declarations in source order.
    decls: tuple[ast.Decl, ...]
    #: Total declaration count of the source program (budget replay).
    decl_count: int

    def compiler(self) -> Compiler:
        """A :class:`Compiler` evaluating against this environment."""
        return Compiler.from_env(self.env)


def build_artifact(source: str, solver: Solver | None = None) -> CompiledArtifact:
    """Parse + compile ``source`` into an artifact (the cache-miss path).

    The whole front end runs under one ``fast.compile`` span — the span
    the compile-once-per-job regression test counts — with the familiar
    ``parse``/``compile`` child spans inside it.
    """
    with obs_tracer.span("fast.compile"):
        with obs_tracer.span("parse"):
            program = parse_program(source)
        with obs_tracer.span("compile"):
            env = Compiler(program, solver).compile()
    _OBS_BUILDS.inc()
    decls = tuple(
        d
        for d in program.decls
        if isinstance(d, (ast.AssertDecl, ast.PrintDecl))
    )
    return CompiledArtifact(env=env, decls=decls, decl_count=len(program.decls))


def artifact_to_json(artifact: CompiledArtifact) -> dict[str, Any]:
    env = artifact.env
    return {
        "schema": ARTIFACT_SCHEMA,
        "decl_count": artifact.decl_count,
        "types": {
            name: serialize.tree_type_to_json(tt)
            for name, tt in env.types.items()
        },
        "langs": [
            {
                "name": name,
                "type": env.lang_types.get(name),
                "state": serialize._state_to_json(lang.state),
                "sta": serialize.sta_to_json(lang.sta),
            }
            for name, lang in env.langs.items()
        ],
        "transducers": [
            {"name": name, "sttr": serialize.sttr_to_json(t.sttr)}
            for name, t in env.transducers.items()
        ],
        "trees": {
            name: serialize.tree_to_json(t) for name, t in env.trees.items()
        },
        "decls": [_ast_to_json(d) for d in artifact.decls],
    }


def artifact_from_json(data: Any) -> CompiledArtifact:
    if not isinstance(data, dict) or data.get("schema") != ARTIFACT_SCHEMA:
        raise ArtifactError(
            f"bad artifact payload (schema {data.get('schema')!r}, "
            f"expected {ARTIFACT_SCHEMA!r})"
            if isinstance(data, dict)
            else f"bad artifact payload: {type(data).__name__}"
        )
    solver = Solver()
    env = CompiledProgram(solver=solver)
    for name, tt in data.get("types", {}).items():
        env.types[name] = serialize.tree_type_from_json(tt)
    for entry in data.get("langs", ()):
        env.langs[entry["name"]] = Language(
            serialize.sta_from_json(entry["sta"]),
            serialize._state_from_json(entry["state"]),
            solver,
        )
        if entry.get("type") is not None:
            env.lang_types[entry["name"]] = entry["type"]
    for entry in data.get("transducers", ()):
        env.transducers[entry["name"]] = Transducer(
            serialize.sttr_from_json(entry["sttr"]), solver
        )
    for name, t in data.get("trees", {}).items():
        env.trees[name] = serialize.tree_from_json(t)
    decls = tuple(_ast_from_json(d) for d in data.get("decls", ()))
    return CompiledArtifact(
        env=env, decls=decls, decl_count=int(data.get("decl_count", 0))
    )


serialize.register(
    "compiled_program", CompiledArtifact, artifact_to_json, artifact_from_json
)
