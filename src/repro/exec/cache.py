"""The persistent artifact cache: memory LRU over an on-disk layer.

Content addressing: the key is the SHA-256 of the program source
prefixed with a **version salt** — the library version plus the
artifact schema tag — so upgrading either invalidates every stored
artifact without any cleanup logic.  Failed compiles are never stored
(exceptions propagate before the put), so a broken program errors
afresh on every request.

Layers:

* an in-process LRU (:class:`ArtifactCache`, default 32 entries) —
  hit cost is a dict lookup;
* an on-disk JSON layer under ``REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``), written atomically (temp file + rename) so
  concurrent workers can share it without torn reads.  Disk failures
  (read or write) degrade to cache misses, never to errors.

Integrity: each disk entry is an **envelope** — the artifact payload
plus the SHA-256 of its canonical JSON — verified on every load.  A
truncated file, a bit-flipped byte, or a stale schema all fail closed:
the entry is dropped, the program recompiles, and the incident is
counted under ``exec.cache.disk_errors``.  Corruption can cost a
recompile; it can never produce a wrong program.

Budget discipline: a cache hit **replays** the front end's
``fast.decl`` budget charge (one step per declaration of the original
program).  A budget too small to compile a program must stay too small
when the program is already cached — otherwise caching would change
verdicts, not just latency.

Metrics: ``exec.cache.hit`` / ``exec.cache.miss`` / ``exec.cache.store``
/ ``exec.cache.prewarm`` / ``exec.cache.disk_errors`` (glossary in
DESIGN.md §8).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Optional

from .. import __version__
from ..guard.budget import tick as _tick
from ..obs import metrics as obs_metrics
from ..smt.solver import Solver
from . import config
from .artifact import (
    ARTIFACT_SCHEMA,
    CompiledArtifact,
    artifact_from_json,
    artifact_to_json,
    build_artifact,
)

_OBS_HITS = obs_metrics.counter("exec.cache.hit")
_OBS_MISSES = obs_metrics.counter("exec.cache.miss")
_OBS_STORES = obs_metrics.counter("exec.cache.store")
_OBS_PREWARM = obs_metrics.counter("exec.cache.prewarm")
_OBS_DISK_ERRORS = obs_metrics.counter("exec.cache.disk_errors")

#: Key prefix: same source + different library/schema = different key.
_SALT = f"{__version__}:{ARTIFACT_SCHEMA}"


def _payload_digest(payload: object) -> str:
    """SHA-256 of a payload's canonical JSON (the envelope checksum)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(source: str) -> str:
    """Content address of a program source under the current salt."""
    h = hashlib.sha256()
    h.update(_SALT.encode("utf-8"))
    h.update(b"\x00")
    h.update(source.encode("utf-8"))
    return h.hexdigest()


class ArtifactCache:
    """Two-layer (memory LRU + disk JSON) artifact cache."""

    def __init__(
        self, capacity: int = 32, directory: Optional[str] = None
    ) -> None:
        self.capacity = capacity
        #: None = resolve ``REPRO_CACHE_DIR`` at each disk access, so
        #: tests and the CLI can repoint the cache without rebuilding it.
        self.directory = directory
        self._memory: OrderedDict[str, CompiledArtifact] = OrderedDict()
        self._lock = threading.Lock()

    # -- paths -------------------------------------------------------------

    def _dir(self) -> str:
        return self.directory if self.directory is not None else config.cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self._dir(), f"{key}.json")

    # -- layers ------------------------------------------------------------

    def get(self, source: str) -> Optional[CompiledArtifact]:
        """The cached artifact for ``source``, or None (counted miss)."""
        key = cache_key(source)
        with self._lock:
            artifact = self._memory.get(key)
            if artifact is not None:
                self._memory.move_to_end(key)
        if artifact is not None:
            _OBS_HITS.inc()
            return artifact
        artifact = self._load_disk(key)
        if artifact is not None:
            self._remember(key, artifact)
            _OBS_HITS.inc()
            return artifact
        _OBS_MISSES.inc()
        return None

    def put(self, source: str, artifact: CompiledArtifact) -> None:
        """Store in memory, and on disk when the disk layer works."""
        key = cache_key(source)
        self._remember(key, artifact)
        self._store_disk(key, artifact)

    def _remember(self, key: str, artifact: CompiledArtifact) -> None:
        with self._lock:
            self._memory[key] = artifact
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)

    def _load_disk(self, key: str) -> Optional[CompiledArtifact]:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as f:
                envelope = json.load(f)
            payload = envelope["payload"]
            if envelope.get("sha256") != _payload_digest(payload):
                raise ValueError(f"artifact checksum mismatch: {path}")
            return artifact_from_json(payload)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt / truncated / stale / unreadable entry: count it,
            # drop it, and recompile — never trust a bad byte.
            _OBS_DISK_ERRORS.inc()
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _store_disk(self, key: str, artifact: CompiledArtifact) -> None:
        directory = self._dir()
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                payload = artifact_to_json(artifact)
                envelope = {
                    "sha256": _payload_digest(payload),
                    "payload": payload,
                }
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(envelope, f)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return  # read-only/full disk degrades to a memory-only cache
        _OBS_STORES.inc()

    # -- maintenance -------------------------------------------------------

    def prewarm_plan(self, limit: int = 8) -> tuple[str, ...]:
        """Keys of the most recent disk artifacts, newest first.

        A *plan* is cheap (one ``listdir`` + ``stat``s, no JSON loads)
        and picklable, so a supervisor can compute it once and ship the
        same key list to every spawned/recycled/respawned worker —
        rather than each fresh worker re-scanning the cache directory
        from scratch (see :meth:`prewarm_from_keys`).
        """
        directory = self._dir()
        try:
            names = [
                n for n in os.listdir(directory) if n.endswith(".json")
            ]
        except OSError:
            return ()
        def mtime(name: str) -> float:
            try:
                return os.path.getmtime(os.path.join(directory, name))
            except OSError:
                return 0.0
        names.sort(key=mtime, reverse=True)
        return tuple(
            name[: -len(".json")] for name in names[: max(0, limit)]
        )

    def prewarm_from_keys(self, keys) -> int:
        """Lift the given disk artifacts into memory (best effort).

        Counted under ``exec.cache.prewarm``, not as hits; missing or
        corrupt entries are skipped — a stale plan costs nothing but
        the attempted loads.
        """
        loaded = 0
        for key in keys:
            with self._lock:
                if key in self._memory:
                    continue
            artifact = self._load_disk(key)
            if artifact is not None:
                self._remember(key, artifact)
                _OBS_PREWARM.inc()
                loaded += 1
        return loaded

    def prewarm_from_disk(self, limit: int = 8) -> int:
        """Load the most recent disk artifacts into memory (best effort).

        Workers call this at spawn so the first job for a recently-seen
        program is a memory hit; equivalent to executing a fresh
        :meth:`prewarm_plan` immediately.
        """
        return self.prewarm_from_keys(self.prewarm_plan(limit))

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer; with ``disk=True`` also the disk layer."""
        with self._lock:
            self._memory.clear()
        if disk:
            directory = self._dir()
            try:
                for name in os.listdir(directory):
                    if name.endswith(".json"):
                        try:
                            os.unlink(os.path.join(directory, name))
                        except OSError:
                            pass
            except OSError:
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


#: The process-wide cache every caller shares (forked svc workers
#: inherit its memory layer for free, like the hash-consed term table).
DEFAULT_CACHE = ArtifactCache()


def cached_artifact(
    source: str,
    solver: Optional[Solver] = None,
    cache: Optional[ArtifactCache] = None,
) -> CompiledArtifact:
    """The artifact for ``source``: cached when possible, built otherwise.

    With an explicit ``solver`` the cache is bypassed entirely — a
    custom solver changes compile-time behaviour (chaos injection,
    instrumentation), so its environment must not be shared.
    """
    if solver is not None or not config.cache_enabled():
        return build_artifact(source, solver)
    c = cache if cache is not None else DEFAULT_CACHE
    artifact = c.get(source)
    if artifact is not None:
        # Replay the front end's budget charge (see module docstring).
        _tick(artifact.decl_count, kind="fast.decl")
        return artifact
    artifact = build_artifact(source)
    c.put(source, artifact)
    return artifact
