"""Environment knobs for the compiled execution tier.

All knobs are read at *call* time, not import time, so tests (and the
benchmark harness) can flip them per scenario without reimporting:

* ``REPRO_EXEC`` — ``compiled`` (default) routes ``Transducer.apply``
  through the closure-lowered form; ``interp`` forces the reference
  interpreter.
* ``REPRO_CACHE`` — ``off`` / ``0`` / ``no`` disables the artifact
  cache entirely (every request parses and compiles from source).
* ``REPRO_CACHE_DIR`` — on-disk cache location; defaults to
  ``~/.cache/repro`` (respecting ``XDG_CACHE_HOME``).
"""

from __future__ import annotations

import os

_OFF = ("off", "0", "no", "false")


def compiled_enabled() -> bool:
    """Route transducer execution through the compiled tier?"""
    return os.environ.get("REPRO_EXEC", "compiled").lower() != "interp"


def cache_enabled() -> bool:
    """Is the artifact cache (memory + disk) on?"""
    return os.environ.get("REPRO_CACHE", "on").lower() not in _OFF


def cache_dir() -> str:
    """The on-disk artifact cache directory (not created here)."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")
