"""The common error hierarchy of the reproduction.

Every error the library raises on purpose derives from
:class:`ReproError`, so callers (and the ``fast`` CLI) can map failures
to outcomes by family instead of pattern-matching messages:

* front-end errors — :class:`repro.fast.lexer.FastSyntaxError`,
  :class:`repro.fast.errors.FastTypeError`,
  :class:`repro.trees.parser.TreeParseError` and the
  :class:`ParseDepthError` depth caps — exit code 2;
* resource exhaustion — :class:`repro.guard.BudgetExceeded` and the
  other :class:`repro.guard.GuardError` degradations — exit code 3;
* backend errors — :class:`repro.smt.terms.SmtError`,
  :class:`repro.transducers.sttr.TransducerError` — exit code 4.

Errors that know where they came from carry a :class:`SourceLocation`;
the constructors of the concrete families fill it in from their own
position types (token positions, byte offsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in some input text; any subset of the fields may be known."""

    line: Optional[int] = None
    column: Optional[int] = None
    offset: Optional[int] = None

    def __str__(self) -> str:
        if self.line is not None and self.column is not None:
            return f"line {self.line}, column {self.column}"
        if self.line is not None:
            return f"line {self.line}"
        if self.offset is not None:
            return f"offset {self.offset}"
        return "unknown location"


class ReproError(Exception):
    """Base class of every deliberate error in the library.

    ``location`` is a :class:`SourceLocation` when the error can point at
    the input that caused it, else None.
    """

    def __init__(
        self, message: str, location: SourceLocation | None = None
    ) -> None:
        super().__init__(message)
        self.location = location


class ParseDepthError(ReproError):
    """Input nesting exceeded a parser's explicit depth cap.

    Raised instead of letting a recursive-descent parser die with a raw
    ``RecursionError`` on adversarially deep input.  The concrete
    parsers raise subclasses that also belong to their own error family
    (:class:`repro.trees.parser.TreeParseDepthError`,
    :class:`repro.fast.lexer.FastParseDepthError`), so existing
    ``except`` clauses keep working.
    """
