"""The common error hierarchy of the reproduction.

Every error the library raises on purpose derives from
:class:`ReproError`, so callers (and the ``fast`` CLI) can map failures
to outcomes by family instead of pattern-matching messages:

* front-end errors — :class:`repro.fast.lexer.FastSyntaxError`,
  :class:`repro.fast.errors.FastTypeError`,
  :class:`repro.trees.parser.TreeParseError` and the
  :class:`ParseDepthError` depth caps — exit code 2;
* resource exhaustion — :class:`repro.guard.BudgetExceeded` and the
  other :class:`repro.guard.GuardError` degradations — exit code 3;
* backend errors — :class:`repro.smt.terms.SmtError`,
  :class:`repro.transducers.sttr.TransducerError` — exit code 4.

Errors that know where they came from carry a :class:`SourceLocation`;
the constructors of the concrete families fill it in from their own
position types (token positions, byte offsets).

The whole hierarchy pickles faithfully: the analysis service
(:mod:`repro.svc`) runs jobs in subprocess workers and ships failures
back over a pipe, so every attribute an error carries — location,
budget snapshot, partial outputs — must survive the round trip.
Default exception pickling re-calls ``cls(*args)``, which breaks for
every subclass whose constructor takes more than ``args`` holds;
:meth:`ReproError.__reduce__` instead rebuilds instances structurally
(``__new__`` + ``args`` + ``__dict__``), which works for any subclass
without per-class boilerplate (tested over the full public hierarchy in
``tests/test_errors_pickle.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in some input text; any subset of the fields may be known."""

    line: Optional[int] = None
    column: Optional[int] = None
    offset: Optional[int] = None

    def __str__(self) -> str:
        if self.line is not None and self.column is not None:
            return f"line {self.line}, column {self.column}"
        if self.line is not None:
            return f"line {self.line}"
        if self.offset is not None:
            return f"offset {self.offset}"
        return "unknown location"


def _rebuild_error(
    cls: type, args: tuple, state: dict
) -> "ReproError":
    """Reconstruct an error without calling any subclass ``__init__``."""
    exc = cls.__new__(cls)
    exc.args = args
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class of every deliberate error in the library.

    ``location`` is a :class:`SourceLocation` when the error can point at
    the input that caused it, else None.
    """

    def __init__(
        self, message: str, location: SourceLocation | None = None
    ) -> None:
        super().__init__(message)
        self.location = location

    def __reduce__(self):
        # Structural pickling: subclass constructors take positions,
        # snapshots, partial outputs — none of which survive the default
        # ``cls(*args)`` protocol.  Rebuilding from __new__ + __dict__
        # round-trips every subclass, including ones defined later.
        return (_rebuild_error, (type(self), self.args, self.__dict__.copy()))


class ParseDepthError(ReproError):
    """Input nesting exceeded a parser's explicit depth cap.

    Raised instead of letting a recursive-descent parser die with a raw
    ``RecursionError`` on adversarially deep input.  The concrete
    parsers raise subclasses that also belong to their own error family
    (:class:`repro.trees.parser.TreeParseDepthError`,
    :class:`repro.fast.lexer.FastParseDepthError`), so existing
    ``except`` clauses keep working.
    """
