"""Univariate polynomial real arithmetic via Sturm sequences.

Decides conjunctions of constraints ``p(x) op 0`` (``op`` in
``< <= = !=``) where every ``p`` is a polynomial with rational
coefficients in a **single** variable.  This covers the "non-linear
(cubic) constraints over reals" that show up in the paper's augmented
reality evaluation (Section 5.2).

The procedure is the classical sign-table construction: isolate all real
roots of the product of the constraint polynomials with Sturm's theorem,
split the line into cells (open intervals and root points), and check
the sign of every constraint polynomial on each cell.  All arithmetic is
exact over :class:`fractions.Fraction`; models at irrational roots are
returned as refined rational approximations flagged ``exact=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from .terms import NonLinearError

#: A polynomial is a tuple of Fractions, lowest degree first, no trailing zeros.
Poly = tuple[Fraction, ...]

ZERO: Poly = ()
ONE: Poly = (Fraction(1),)


def poly_normalize(coeffs: Sequence[Fraction]) -> Poly:
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return tuple(out)


def poly_const(c: Fraction | int) -> Poly:
    return poly_normalize([Fraction(c)])


def poly_var() -> Poly:
    return (Fraction(0), Fraction(1))


def degree(p: Poly) -> int:
    return len(p) - 1 if p else -1


def poly_add(a: Poly, b: Poly) -> Poly:
    n = max(len(a), len(b))
    return poly_normalize(
        [
            (a[i] if i < len(a) else Fraction(0)) + (b[i] if i < len(b) else Fraction(0))
            for i in range(n)
        ]
    )


def poly_neg(a: Poly) -> Poly:
    return tuple(-c for c in a)


def poly_sub(a: Poly, b: Poly) -> Poly:
    return poly_add(a, poly_neg(b))


def poly_mul(a: Poly, b: Poly) -> Poly:
    if not a or not b:
        return ZERO
    out = [Fraction(0)] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return poly_normalize(out)


def poly_scale(a: Poly, k: Fraction) -> Poly:
    if k == 0:
        return ZERO
    return tuple(c * k for c in a)


def poly_divmod(a: Poly, b: Poly) -> tuple[Poly, Poly]:
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    q = [Fraction(0)] * max(0, len(a) - len(b) + 1)
    r = list(a)
    db, lb = degree(b), b[-1]
    while len(r) - 1 >= db and any(c != 0 for c in r):
        dr = len(r) - 1
        if r[-1] == 0:
            r.pop()
            continue
        k = dr - db
        factor = r[-1] / lb
        q[k] = factor
        for i in range(len(b)):
            r[i + k] -= factor * b[i]
        r.pop()
    return poly_normalize(q), poly_normalize(r)


def poly_gcd(a: Poly, b: Poly) -> Poly:
    while b:
        _, r = poly_divmod(a, b)
        a, b = b, r
    if not a:
        return ZERO
    return poly_scale(a, 1 / a[-1])  # monic


def poly_deriv(a: Poly) -> Poly:
    return poly_normalize([a[i] * i for i in range(1, len(a))])


def poly_eval(a: Poly, x: Fraction) -> Fraction:
    total = Fraction(0)
    for c in reversed(a):
        total = total * x + c
    return total


def square_free(a: Poly) -> Poly:
    """The square-free part ``a / gcd(a, a')`` (same distinct roots)."""
    if degree(a) <= 0:
        return a
    g = poly_gcd(a, poly_deriv(a))
    if degree(g) <= 0:
        return a
    q, r = poly_divmod(a, g)
    assert not r
    return q


def sturm_chain(p: Poly) -> list[Poly]:
    chain = [p, poly_deriv(p)]
    while chain[-1]:
        _, r = poly_divmod(chain[-2], chain[-1])
        if not r:
            break
        chain.append(poly_neg(r))
    return [c for c in chain if c]


def _sign_variations(chain: list[Poly], x: Fraction) -> int:
    signs = []
    for p in chain:
        v = poly_eval(p, x)
        if v != 0:
            signs.append(1 if v > 0 else -1)
    return sum(1 for a, b in zip(signs, signs[1:]) if a != b)


def count_roots(chain: list[Poly], a: Fraction, b: Fraction) -> int:
    """Number of distinct real roots of chain[0] in the half-open (a, b]."""
    return _sign_variations(chain, a) - _sign_variations(chain, b)


def cauchy_bound(p: Poly) -> Fraction:
    """All real roots of ``p`` lie strictly inside ``(-B, B)``."""
    if degree(p) <= 0:
        return Fraction(1)
    lead = abs(p[-1])
    return 1 + max(abs(c) for c in p[:-1]) / lead


@dataclass
class IsolatedRoot:
    """An isolating interval ``(lo, hi]`` containing exactly one root."""

    poly: Poly  # square-free polynomial owning the root
    chain: list[Poly]
    lo: Fraction
    hi: Fraction

    def refine(self) -> None:
        """Halve the isolating interval."""
        mid = (self.lo + self.hi) / 2
        if count_roots(self.chain, self.lo, mid) == 1:
            self.hi = mid
        else:
            self.lo = mid

    def refine_until_sign(self, q: Poly) -> int:
        """Sign of ``q`` at this root, assuming ``q`` does not vanish there."""
        q_chain = sturm_chain(square_free(q)) if degree(q) >= 1 else None
        for _ in range(10_000):
            if q_chain is None or count_roots(q_chain, self.lo, self.hi) == 0:
                # Also make sure q is nonzero at the sample point itself.
                mid = (self.lo + self.hi) / 2
                v = poly_eval(q, mid)
                lo_v = poly_eval(q, self.hi)
                if v != 0:
                    return 1 if v > 0 else -1
                if lo_v != 0:
                    return 1 if lo_v > 0 else -1
            self.refine()
        raise RuntimeError("sign refinement did not converge")

    def vanishes(self, q: Poly) -> bool:
        """Does ``q`` vanish at this root?"""
        if not q:
            return True
        if degree(q) == 0:
            return False
        g = poly_gcd(self.poly, q)
        if degree(g) <= 0:
            return False
        g_chain = sturm_chain(g)
        return count_roots(g_chain, self.lo, self.hi) >= 1


def isolate_roots(p: Poly) -> list[IsolatedRoot]:
    """Disjoint isolating intervals for all real roots of square-free ``p``."""
    if degree(p) <= 0:
        return []
    chain = sturm_chain(p)
    bound = cauchy_bound(p)
    work = [(-bound, bound)]
    roots: list[IsolatedRoot] = []
    while work:
        lo, hi = work.pop()
        n = count_roots(chain, lo, hi)
        if n == 0:
            continue
        if n == 1:
            roots.append(IsolatedRoot(p, chain, lo, hi))
            continue
        mid = (lo + hi) / 2
        # Make sure the midpoint is not itself a root (shrink it in).
        while poly_eval(p, mid) == 0:
            # mid is a root: an isolating interval is (mid - eps, mid]
            eps = (hi - lo) / 4
            while count_roots(chain, mid - eps, mid) != 1:
                eps /= 2
            roots.append(IsolatedRoot(p, chain, mid - eps, mid))
            work.append((lo, mid - eps))
            work.append((mid, hi))
            break
        else:
            work.append((lo, mid))
            work.append((mid, hi))
    roots.sort(key=lambda r: r.lo)
    # Refine until intervals are pairwise disjoint and ordered.
    changed = True
    while changed:
        changed = False
        for r1, r2 in zip(roots, roots[1:]):
            while not (r1.hi < r2.lo):
                r1.refine()
                r2.refine()
                changed = True
    return roots


@dataclass(frozen=True)
class PolyConstraint:
    """``poly(x) op 0`` with op one of ``< <= = !=``."""

    poly: Poly
    op: str

    def holds_sign(self, sign: int) -> bool:
        if self.op == "<":
            return sign < 0
        if self.op == "<=":
            return sign <= 0
        if self.op == "=":
            return sign == 0
        if self.op == "!=":
            return sign != 0
        raise ValueError(self.op)


def decide_poly_cube(
    constraints: Iterable[PolyConstraint],
) -> Optional[tuple[Fraction, bool]]:
    """Decide a conjunction of univariate polynomial constraints.

    Returns ``(witness, exact)`` if satisfiable, else ``None``.  When the
    only satisfying cell is an irrational root point, the witness is a
    rational approximation and ``exact`` is False.
    """
    constraints = list(constraints)
    product = ONE
    for c in constraints:
        if degree(c.poly) >= 1:
            product = poly_mul(product, square_free(c.poly))
    product = square_free(product)

    def cell_sign(c: PolyConstraint, sample: Fraction) -> int:
        v = poly_eval(c.poly, sample)
        return 0 if v == 0 else (1 if v > 0 else -1)

    roots = isolate_roots(product)
    samples: list[Fraction] = []
    if not roots:
        samples.append(Fraction(0))
    else:
        samples.append(roots[0].lo - 1)
        for r1, r2 in zip(roots, roots[1:]):
            samples.append((r1.hi + r2.lo) / 2)
        samples.append(roots[-1].hi + 1)

    # Open-interval cells: exact rational witnesses.
    for s in samples:
        if all(c.holds_sign(cell_sign(c, s)) for c in constraints):
            return s, True

    # Root cells.
    for root in roots:
        ok = True
        for c in constraints:
            if root.vanishes(c.poly):
                sign = 0
            else:
                sign = root.refine_until_sign(c.poly)
            if not c.holds_sign(sign):
                ok = False
                break
        if ok:
            # Recognize a rational root exactly when there is one.
            for cand in rational_roots(product):
                if root.lo < cand <= root.hi:
                    return cand, True
            for _ in range(40):
                root.refine()
            return (root.lo + root.hi) / 2, False
    return None


def rational_roots(p: Poly) -> list[Fraction]:
    """All rational roots of ``p`` (rational root theorem, exact)."""
    if degree(p) < 1:
        return []
    # Factor out x^k so the constant coefficient is nonzero.
    roots: set[Fraction] = set()
    coeffs = list(p)
    while coeffs and coeffs[0] == 0:
        roots.add(Fraction(0))
        coeffs.pop(0)
    if len(coeffs) <= 1:
        return sorted(roots)
    # Scale to integer coefficients.
    from math import lcm

    mult = lcm(*(c.denominator for c in coeffs))
    ints = [int(c * mult) for c in coeffs]
    from math import gcd

    g = 0
    for c in ints:
        g = gcd(g, c)
    ints = [c // g for c in ints]
    a0, an = abs(ints[0]), abs(ints[-1])

    def divisors(n: int) -> list[int]:
        out = []
        d = 1
        while d * d <= n:
            if n % d == 0:
                out.append(d)
                out.append(n // d)
            d += 1
        return out

    scaled = poly_normalize([Fraction(c) for c in ints])
    for num in divisors(a0):
        for den in divisors(an):
            for cand in (Fraction(num, den), Fraction(-num, den)):
                if poly_eval(scaled, cand) == 0:
                    roots.add(cand)
    return sorted(roots)


def poly_from_term(term, var: str) -> Poly:
    """Convert a numeric term in the single variable ``var`` to a Poly.

    Raises :class:`NonLinearError` if other variables occur.
    """
    from .terms import Add, Const, Mul, Neg, Term, Var

    if isinstance(term, Const):
        return poly_const(Fraction(term.value))  # type: ignore[arg-type]
    if isinstance(term, Var):
        if term.name != var:
            raise NonLinearError(f"unexpected variable {term.name} (wanted {var})")
        return poly_var()
    if isinstance(term, Neg):
        return poly_neg(poly_from_term(term.arg, var))
    if isinstance(term, Add):
        total = ZERO
        for a in term.args:
            total = poly_add(total, poly_from_term(a, var))
        return total
    if isinstance(term, Mul):
        total = ONE
        for a in term.args:
            total = poly_mul(total, poly_from_term(a, var))
        return total
    raise NonLinearError(f"not a polynomial term: {term!r}")
