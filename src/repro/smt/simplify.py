"""Formula simplification beyond the smart constructors.

``rebuild`` re-runs every node through the smart constructors (useful
after external construction); ``simplify`` additionally prunes
unsatisfiable disjuncts and valid conjuncts using the solver, which
keeps guards small during long composition chains.
"""

from __future__ import annotations

from . import builders as b
from .solver import Solver
from .terms import (
    Add,
    And,
    Const,
    Eq,
    Le,
    Lt,
    Mod,
    Mul,
    Neg,
    Not,
    Or,
    Term,
    Var,
)


def rebuild(term: Term) -> Term:
    """Reconstruct a term bottom-up through the smart constructors."""
    if isinstance(term, (Var, Const)):
        return term
    if isinstance(term, Add):
        return b.mk_add(*(rebuild(a) for a in term.args))
    if isinstance(term, Mul):
        return b.mk_mul(*(rebuild(a) for a in term.args))
    if isinstance(term, Neg):
        return b.mk_neg(rebuild(term.arg))
    if isinstance(term, Mod):
        return b.mk_mod(rebuild(term.arg), term.modulus)
    if isinstance(term, Lt):
        return b.mk_lt(rebuild(term.left), rebuild(term.right))
    if isinstance(term, Le):
        return b.mk_le(rebuild(term.left), rebuild(term.right))
    if isinstance(term, Eq):
        return b.mk_eq(rebuild(term.left), rebuild(term.right))
    if isinstance(term, And):
        return b.mk_and(*(rebuild(a) for a in term.args))
    if isinstance(term, Or):
        return b.mk_or(*(rebuild(a) for a in term.args))
    if isinstance(term, Not):
        return b.mk_not(rebuild(term.arg))
    return term


def simplify(formula: Term, solver: Solver) -> Term:
    """Light semantic simplification of a Bool term.

    Decides the formula once: unsatisfiable formulas become ``false``,
    valid ones ``true``; otherwise conjuncts/disjuncts that the solver
    proves redundant are dropped.
    """
    formula = rebuild(formula)
    if formula.sort.name != "Bool":
        return formula
    if not solver.is_sat(formula):
        return b.FALSE
    if not solver.is_sat(b.mk_not(formula)):
        return b.TRUE
    if isinstance(formula, And):
        kept: list[Term] = []
        for arg in formula.args:
            rest = b.mk_and(*(a for a in formula.args if a is not arg))
            if not solver.implies(rest, arg):
                kept.append(arg)
        if kept:
            return b.mk_and(*kept)
        return formula
    if isinstance(formula, Or):
        kept = [arg for arg in formula.args if solver.is_sat(arg)]
        return b.mk_or(*kept)
    return formula
