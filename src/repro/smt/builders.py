"""Smart constructors for terms.

These perform light, local normalization (constant folding, flattening of
``And``/``Or``/``Add``, unit/annihilator laws) so that the rest of the
system can build terms freely without accumulating trivial structure.
Deeper simplification lives in :mod:`repro.smt.simplify`.

Every node built here is **hash-consed** through the intern table in
:mod:`repro.smt.terms`: structurally equal results are reference-equal,
which makes solver-cache lookups, dedup sets, and guard comparisons
O(1).  All term construction in the library must go through these
constructors (see DESIGN.md, "Term representation").
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from .sorts import BOOL, INT, REAL, STRING, Sort
from .terms import (
    FALSE,
    TRUE,
    Add,
    And,
    Const,
    Eq,
    Le,
    Lt,
    Mod,
    Mul,
    Neg,
    Not,
    Or,
    SortError,
    Term,
    Value,
    Var,
    interned,
    interned_const,
)


def mk_var(name: str, sort: Sort) -> Var:
    """A variable of the given sort."""
    return interned(Var, name, sort)  # type: ignore[return-value]


def mk_const(value: Value, sort: Sort | None = None) -> Const:
    """A constant; the sort is inferred from the Python value if omitted."""
    if sort is None:
        if isinstance(value, bool):
            sort = BOOL
        elif isinstance(value, int):
            sort = INT
        elif isinstance(value, Fraction):
            sort = REAL
        elif isinstance(value, float):
            value = Fraction(value).limit_denominator(10**9)
            sort = REAL
        elif isinstance(value, str):
            sort = STRING
        else:
            raise SortError(f"cannot infer sort of constant {value!r}")
    if sort is REAL and isinstance(value, int) and not isinstance(value, bool):
        value = Fraction(value)
    return interned_const(value, sort)


def mk_int(value: int) -> Const:
    return interned_const(value, INT)


def mk_real(value: int | float | Fraction) -> Const:
    if isinstance(value, float):
        value = Fraction(value).limit_denominator(10**9)
    return interned_const(Fraction(value), REAL)


def mk_str(value: str) -> Const:
    return interned_const(value, STRING)


def mk_bool(value: bool) -> Const:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def mk_add(*args: Term) -> Term:
    """Flattened, constant-folded addition."""
    flat: list[Term] = []
    for a in args:
        if isinstance(a, Add):
            flat.extend(a.args)
        else:
            flat.append(a)
    if not flat:
        raise SortError("mk_add requires at least one argument")
    sort = flat[0].sort
    const = 0 if sort is INT else Fraction(0)
    rest: list[Term] = []
    for a in flat:
        if isinstance(a, Const):
            const = const + a.value  # type: ignore[operator]
        else:
            rest.append(a)
    if not rest:
        return mk_const(const, sort)
    if const != 0:
        rest.append(mk_const(const, sort))
    if len(rest) == 1:
        return rest[0]
    return interned(Add, tuple(rest))


def mk_sub(left: Term, right: Term) -> Term:
    return mk_add(left, mk_neg(right))


def mk_neg(arg: Term) -> Term:
    if isinstance(arg, Const):
        return mk_const(-arg.value, arg.sort)  # type: ignore[operator]
    if isinstance(arg, Neg):
        return arg.arg
    if isinstance(arg, Add):
        return mk_add(*(mk_neg(a) for a in arg.args))
    return interned(Neg, arg)


def mk_mul(*args: Term) -> Term:
    """Flattened, constant-folded multiplication."""
    flat: list[Term] = []
    for a in args:
        if isinstance(a, Mul):
            flat.extend(a.args)
        else:
            flat.append(a)
    if not flat:
        raise SortError("mk_mul requires at least one argument")
    sort = flat[0].sort
    const = 1 if sort is INT else Fraction(1)
    rest: list[Term] = []
    for a in flat:
        if isinstance(a, Const):
            const = const * a.value  # type: ignore[operator]
        else:
            rest.append(a)
    if const == 0:
        return mk_const(const, sort)
    if not rest:
        return mk_const(const, sort)
    if const != 1:
        rest.insert(0, mk_const(const, sort))
    if len(rest) == 1:
        return rest[0]
    return interned(Mul, tuple(rest))


def mk_mod(arg: Term, modulus: int) -> Term:
    if isinstance(arg, Const):
        return mk_int(arg.value % modulus)  # type: ignore[operator]
    if modulus == 1:
        return mk_int(0)
    # (u mod m) mod k = u mod k when k divides m; the same holds for
    # summands: (a + (u mod m)) mod k = (a + u) mod k.  This keeps
    # repeatedly composed label expressions (Section 5.3's map_caesar
    # chains) constant-depth — the role Z3's simplifier plays in the
    # paper's implementation.
    if isinstance(arg, Mod) and arg.modulus % modulus == 0:
        return mk_mod(arg.arg, modulus)
    if isinstance(arg, Add):
        changed = False
        parts: list[Term] = []
        for a in arg.args:
            if isinstance(a, Mod) and a.modulus % modulus == 0:
                parts.append(a.arg)
                changed = True
            elif isinstance(a, Const) and not (0 <= a.value < modulus):  # type: ignore[operator]
                parts.append(mk_int(a.value % modulus))  # type: ignore[operator]
                changed = True
            else:
                parts.append(a)
        if changed:
            return mk_mod(mk_add(*parts), modulus)
    return interned(Mod, arg, modulus)


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


def mk_lt(left: Term, right: Term) -> Term:
    if isinstance(left, Const) and isinstance(right, Const):
        return mk_bool(left.value < right.value)  # type: ignore[operator]
    return interned(Lt, left, right)


def mk_le(left: Term, right: Term) -> Term:
    if isinstance(left, Const) and isinstance(right, Const):
        return mk_bool(left.value <= right.value)  # type: ignore[operator]
    return interned(Le, left, right)


def mk_gt(left: Term, right: Term) -> Term:
    return mk_lt(right, left)


def mk_ge(left: Term, right: Term) -> Term:
    return mk_le(right, left)


def mk_eq(left: Term, right: Term) -> Term:
    if isinstance(left, Const) and isinstance(right, Const):
        return mk_bool(left.value == right.value)
    if left == right:
        return TRUE
    if left.sort is BOOL:
        # Desugar Boolean equality into (a and b) or (not a and not b) so
        # that downstream passes only see propositional structure.
        return mk_or(mk_and(left, right), mk_and(mk_not(left), mk_not(right)))
    return interned(Eq, left, right)


def mk_ne(left: Term, right: Term) -> Term:
    return mk_not(mk_eq(left, right))


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def mk_and(*args: Term) -> Term:
    """Flattened conjunction with unit/annihilator folding and dedup."""
    flat: list[Term] = []
    seen: set[Term] = set()
    negated: set[Term] = set()  # arguments of top-level Not conjuncts
    for a in args:
        parts = a.args if isinstance(a, And) else (a,)
        for p in parts:
            if p is FALSE or p == FALSE:
                return FALSE
            if p is TRUE or p in seen:
                continue
            seen.add(p)
            if isinstance(p, Not):
                negated.add(p.arg)
            flat.append(p)
    # Contradiction: some conjunct and its negation both present.
    if negated and not negated.isdisjoint(seen):
        return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return interned(And, tuple(flat))


def mk_or(*args: Term) -> Term:
    """Flattened disjunction with unit/annihilator folding and dedup."""
    flat: list[Term] = []
    seen: set[Term] = set()
    negated: set[Term] = set()
    for a in args:
        parts = a.args if isinstance(a, Or) else (a,)
        for p in parts:
            if p is TRUE or p == TRUE:
                return TRUE
            if p is FALSE or p in seen:
                continue
            seen.add(p)
            if isinstance(p, Not):
                negated.add(p.arg)
            flat.append(p)
    # Tautology: some disjunct and its negation both present.
    if negated and not negated.isdisjoint(seen):
        return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return interned(Or, tuple(flat))


def mk_not(arg: Term) -> Term:
    if arg == TRUE:
        return FALSE
    if arg == FALSE:
        return TRUE
    if isinstance(arg, Not):
        return arg.arg
    return interned(Not, arg)


def mk_implies(left: Term, right: Term) -> Term:
    return mk_or(mk_not(left), right)


def mk_iff(left: Term, right: Term) -> Term:
    return mk_or(mk_and(left, right), mk_and(mk_not(left), mk_not(right)))


def mk_ite(cond: Term, then: Term, other: Term) -> Term:
    """Boolean if-then-else (formulas only)."""
    if then.sort is not BOOL or other.sort is not BOOL:
        raise SortError("mk_ite supports Bool branches only")
    return mk_or(mk_and(cond, then), mk_and(mk_not(cond), other))


def conjoin(formulas: Iterable[Term]) -> Term:
    return mk_and(*formulas)


def disjoin(formulas: Iterable[Term]) -> Term:
    return mk_or(*formulas)
