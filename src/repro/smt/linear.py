"""Linearization of arithmetic terms.

Converts a numeric :class:`~repro.smt.terms.Term` into a linear form
``coeffs · vars + const`` with :class:`fractions.Fraction` coefficients.
Raises :class:`~repro.smt.terms.NonLinearError` when the term multiplies
two non-constant factors (those go to the univariate polynomial solver)
and :class:`ModPresentError` when a ``Mod`` node survives (the integer
solver eliminates those first).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from .terms import Add, Const, Mod, Mul, Neg, NonLinearError, SmtError, Term, Var


class ModPresentError(SmtError):
    """A ``Mod`` node was encountered where none is allowed."""


@dataclass(frozen=True)
class LinTerm:
    """An immutable linear combination of variables plus a constant."""

    coeffs: tuple[tuple[str, Fraction], ...]
    const: Fraction

    @staticmethod
    def of(coeffs: Mapping[str, Fraction], const: Fraction) -> "LinTerm":
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return LinTerm(items, const)

    @staticmethod
    def constant(value: int | Fraction) -> "LinTerm":
        return LinTerm((), Fraction(value))

    @staticmethod
    def variable(name: str) -> "LinTerm":
        return LinTerm(((name, Fraction(1)),), Fraction(0))

    def as_dict(self) -> dict[str, Fraction]:
        return dict(self.coeffs)

    def coeff(self, var: str) -> Fraction:
        for v, c in self.coeffs:
            if v == var:
                return c
        return Fraction(0)

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(v for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def add(self, other: "LinTerm") -> "LinTerm":
        coeffs = self.as_dict()
        for v, c in other.coeffs:
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return LinTerm.of(coeffs, self.const + other.const)

    def scale(self, factor: int | Fraction) -> "LinTerm":
        factor = Fraction(factor)
        if factor == 0:
            return LinTerm.constant(0)
        return LinTerm.of(
            {v: c * factor for v, c in self.coeffs}, self.const * factor
        )

    def negate(self) -> "LinTerm":
        return self.scale(-1)

    def sub(self, other: "LinTerm") -> "LinTerm":
        return self.add(other.negate())

    def drop(self, var: str) -> "LinTerm":
        """The linear term with ``var``'s summand removed."""
        coeffs = {v: c for v, c in self.coeffs if v != var}
        return LinTerm.of(coeffs, self.const)

    def substitute(self, var: str, replacement: "LinTerm") -> "LinTerm":
        c = self.coeff(var)
        if c == 0:
            return self
        return self.drop(var).add(replacement.scale(c))

    def evaluate(self, env: Mapping[str, int | Fraction]) -> Fraction:
        total = self.const
        for v, c in self.coeffs:
            total += c * Fraction(env[v])
        return total

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


def linearize(term: Term) -> LinTerm:
    """Convert a numeric term to a linear form.

    Raises :class:`NonLinearError` for products of non-constant factors
    and :class:`ModPresentError` if a ``Mod`` node is present.
    """
    if isinstance(term, Const):
        return LinTerm.constant(Fraction(term.value))  # type: ignore[arg-type]
    if isinstance(term, Var):
        return LinTerm.variable(term.name)
    if isinstance(term, Neg):
        return linearize(term.arg).negate()
    if isinstance(term, Add):
        total = LinTerm.constant(0)
        for a in term.args:
            total = total.add(linearize(a))
        return total
    if isinstance(term, Mul):
        total = LinTerm.constant(1)
        for a in term.args:
            lin = linearize(a)
            if total.is_constant():
                total = lin.scale(total.const)
            elif lin.is_constant():
                total = total.scale(lin.const)
            else:
                raise NonLinearError(f"non-linear product: {term!r}")
        return total
    if isinstance(term, Mod):
        raise ModPresentError(f"mod must be eliminated first: {term!r}")
    raise NonLinearError(f"not an arithmetic term: {term!r}")
