"""Minterm enumeration over a finite set of predicates.

Given predicates ``p1 .. pn``, the satisfiable *minterms* are the
conjunctions ``(+-p1) and ... and (+-pn)`` that partition the label
space.  Minterms are the workhorse of symbolic automaton algorithms that
need a locally finite alphabet view: bottom-up determinization,
completion, and minimization (Sections 3.2 and 3.5 of the paper).

Enumeration is a DFS over the sign choices with satisfiability pruning,
so the usual case is far below the worst-case ``2^n``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from . import builders as b
from .solver import Solver
from .terms import Term

_OBS_CALLS = obs_metrics.counter("minterms.enumerations")
_OBS_EMITTED = obs_metrics.counter("minterms.emitted")
_OBS_PRUNED = obs_metrics.counter("minterms.unsat_pruned")
_OBS_FANOUT = obs_metrics.histogram("minterms.fanout")


def minterms(
    predicates: Sequence[Term], solver: Solver
) -> Iterator[tuple[tuple[bool, ...], Term]]:
    """Yield ``(signs, conjunction)`` for every satisfiable minterm.

    ``signs[i]`` tells whether ``predicates[i]`` occurs positively.  The
    union of yielded conjunctions is equivalent to ``true`` and they are
    pairwise disjoint.
    """
    preds = list(predicates)
    recording = obs_config.ENABLED
    emitted = 0
    # Sign choices live in one shared list mutated push/pop around each
    # branch (building ``signs + (True,)`` tuples per node is quadratic
    # in the predicate count); tuples materialize only at the leaves.
    # The accumulated conjunctions go through the interning constructors,
    # so sibling branches share their common prefix and repeated
    # enumerations over the same predicates hit the solver cache by
    # identity.
    signs: list[bool] = []

    def go(i: int, acc: Term) -> Iterator[tuple[tuple[bool, ...], Term]]:
        nonlocal emitted
        if not solver.is_sat(acc):
            if recording:
                _OBS_PRUNED.inc()
            return
        if i == len(preds):
            emitted += 1
            if recording:
                _OBS_EMITTED.inc()
            yield tuple(signs), acc
            return
        signs.append(True)
        yield from go(i + 1, b.mk_and(acc, preds[i]))
        signs[-1] = False
        yield from go(i + 1, b.mk_and(acc, b.mk_not(preds[i])))
        signs.pop()

    if recording:
        _OBS_CALLS.inc()
    yield from go(0, b.TRUE)
    if recording:
        # Only reached when the caller exhausts the enumeration.
        _OBS_FANOUT.observe(emitted)
