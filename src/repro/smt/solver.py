"""The label-theory solver facade.

This module plays the role Z3 plays in the paper: it decides
satisfiability of quantifier-free formulas over the label theory and
produces models (used for witness trees and counterexamples).  The
Boolean structure is handled by lazy cube enumeration
(:mod:`repro.smt.cubes`); each cube is split by sort and dispatched to

* Boolean literal consistency,
* congruence closure for strings (:mod:`repro.smt.strings_solver`),
* Cooper's algorithm for integers (:mod:`repro.smt.lia_cooper`),
* Fourier-Motzkin + Sturm sequences for reals (:mod:`repro.smt.lra_fm`).

Results are cached per formula; the cache makes the emptiness /
composition algorithms that fire thousands of satisfiability queries
practical (cache statistics feed the evaluation harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..guard.budget import charge_query as _charge_query, tick as _tick
from ..obs import config as obs_config
from ..obs import metrics as obs_metrics
from ..obs import provenance as prov
from . import builders as b
from . import terms as terms_mod
from .cubes import classify_atom, iter_cubes
from .lia_cooper import solve_int_cube
from .lra_fm import solve_real_cube
from .sorts import BOOL, INT, REAL, STRING, Sort
from .strings_solver import solve_string_cube
from .terms import FALSE, TRUE, Const, SmtError, Term, Value, Var


@dataclass
class Model:
    """A satisfying assignment.

    ``exact`` is False when a real witness sits at an irrational
    algebraic point and is only a rational approximation.
    """

    assignment: dict[str, Value]
    exact: bool = True

    def __getitem__(self, name: str) -> Value:
        return self.assignment[name]

    def get(self, name: str, default: Value | None = None) -> Value | None:
        return self.assignment.get(name, default)

    def satisfies(self, formula: Term) -> bool:
        env = dict(self.assignment)
        for v in formula.free_vars():
            env.setdefault(v.name, _default_value(v.sort))
        return bool(formula.evaluate(env))


def _default_value(sort: Sort) -> Value:
    if sort is BOOL:
        return False
    if sort is INT:
        return 0
    if sort is REAL:
        return Fraction(0)
    if sort is STRING:
        return ""
    raise SmtError(f"no default value for sort {sort}")


#: Process-wide solver metrics (all solver instances), recorded only
#: while :mod:`repro.obs` is enabled; the per-instance ``SolverStats``
#: counters below are always live.
_OBS_SAT = obs_metrics.counter("solver.sat_queries")
_OBS_HITS = obs_metrics.counter("solver.cache_hits")
_OBS_CUBES = obs_metrics.counter("solver.cubes_checked")
_OBS_TRIVIAL = obs_metrics.counter("solver.trivial_queries")
_OBS_IMPLIES_HITS = obs_metrics.counter("solver.implies_cache_hits")


@dataclass
class SolverStats:
    """Counters exposed to the benchmark harness.

    Since the :mod:`repro.obs` migration this is a thin read-through
    view over per-solver :class:`~repro.obs.metrics.Counter` objects —
    the public attributes (``sat_queries`` etc.) are unchanged.
    """

    _sat: obs_metrics.Counter = field(default_factory=obs_metrics.Counter)
    _hits: obs_metrics.Counter = field(default_factory=obs_metrics.Counter)
    _cubes: obs_metrics.Counter = field(default_factory=obs_metrics.Counter)
    _trivial: obs_metrics.Counter = field(default_factory=obs_metrics.Counter)
    _implies_hits: obs_metrics.Counter = field(
        default_factory=obs_metrics.Counter
    )

    @property
    def sat_queries(self) -> int:
        return self._sat.value

    @property
    def cache_hits(self) -> int:
        return self._hits.value

    @property
    def cubes_checked(self) -> int:
        return self._cubes.value

    @property
    def trivial_queries(self) -> int:
        """Queries answered by the TRUE/FALSE identity fast path."""
        return self._trivial.value

    @property
    def implies_cache_hits(self) -> int:
        return self._implies_hits.value

    @property
    def hit_rate(self) -> float:
        """Cache hits per query; 0.0 before the first query."""
        queries = self._sat.value
        return self._hits.value / queries if queries else 0.0

    def reset(self) -> None:
        self._sat.reset()
        self._hits.reset()
        self._cubes.reset()
        self._trivial.reset()
        self._implies_hits.reset()


class Solver:
    """Decision procedure for the label theory (quantifier-free formulas).

    ``cache=False`` disables per-formula memoization (used by the cache
    ablation benchmark; leave it on everywhere else).
    """

    def __init__(self, cache: bool = True) -> None:
        self._sat_cache: dict[Term, Optional[Model]] = {}
        self._implies_cache: dict[tuple[Term, Term], bool] = {}
        self._cache_enabled = cache
        self.stats = SolverStats()

    # -- satisfiability ----------------------------------------------------

    def is_sat(self, formula: Term) -> bool:
        """Is the formula satisfiable?"""
        if formula is TRUE:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return True
        if formula is FALSE:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return False
        return self.get_model(formula) is not None

    def get_model(self, formula: Term) -> Optional[Model]:
        """A satisfying assignment covering the formula's variables, or None.

        The hash-consed constants short-circuit before the query counter:
        asking whether the interned ``TRUE``/``FALSE`` is satisfiable is
        an identity check, not solver work (tracked separately under
        ``solver.trivial_queries``).
        """
        if formula is TRUE:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return Model({})
        if formula is FALSE:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return None
        self.stats._sat.inc()
        if obs_config.ENABLED:
            _OBS_SAT.inc()
        if self._cache_enabled and formula in self._sat_cache:
            self.stats._hits.inc()
            if obs_config.ENABLED:
                _OBS_HITS.inc()
            return self._sat_cache[formula]
        # Ambient resource governance: cache hits are free; a solved
        # query charges the active budget (repro.guard) and may abort
        # *here*, before any partial result could reach the cache —
        # results are published below only once fully computed
        # (abort-safe, journaled insertion).
        _charge_query()
        prov.saw_query(formula)  # provenance tally: solved, not cached
        model = self._solve(formula)
        if self._cache_enabled:
            self._sat_cache[formula] = model
        return model

    def _solve(self, formula: Term) -> Optional[Model]:
        for cube in iter_cubes(formula):
            _tick(kind="solver.cube")
            self.stats._cubes.inc()
            if obs_config.ENABLED:
                _OBS_CUBES.inc()
            model = self._solve_cube(cube)
            if model is not None:
                for v in formula.free_vars():
                    model.assignment.setdefault(v.name, _default_value(v.sort))
                return model
        return None

    def _solve_cube(self, cube: list[tuple[bool, Term]]) -> Optional[Model]:
        groups: dict[str, list[tuple[bool, Term]]] = {}
        for sign, atom in cube:
            kind = classify_atom(atom)
            if kind == "booleq":
                # Stray Bool equality built without the smart constructors.
                rebuilt = b.mk_eq(atom.left, atom.right)  # type: ignore[attr-defined]
                if not sign:
                    rebuilt = b.mk_not(rebuilt)
                sub = self._solve(rebuilt)
                if sub is None:
                    return None
                groups.setdefault("_extra", []).append((sign, atom))
                continue
            groups.setdefault(kind, []).append((sign, atom))

        assignment: dict[str, Value] = {}
        exact = True

        for sign, atom in groups.get("bool", []):
            if isinstance(atom, Const):
                if bool(atom.value) != sign:
                    return None
                continue
            assert isinstance(atom, Var)
            if assignment.setdefault(atom.name, sign) != sign:
                return None

        if "string" in groups:
            m = solve_string_cube(groups["string"])
            if m is None:
                return None
            assignment.update(m)

        if "int" in groups:
            m_int = solve_int_cube(groups["int"])
            if m_int is None:
                return None
            assignment.update(m_int)

        if "real" in groups:
            m_real = solve_real_cube(groups["real"])
            if m_real is None:
                return None
            assignment.update(m_real.assignment)
            exact = exact and m_real.exact

        if "_extra" in groups:
            # Re-check the odd Bool equalities under the assembled model.
            for sign, atom in groups["_extra"]:
                env = dict(assignment)
                for v in atom.free_vars():
                    env.setdefault(v.name, _default_value(v.sort))
                if bool(atom.evaluate(env)) != sign:
                    return None  # rare; a complete solver would branch here

        return Model(assignment, exact)

    # -- derived judgments ---------------------------------------------------

    def is_valid(self, formula: Term) -> bool:
        return not self.is_sat(b.mk_not(formula))

    def implies(self, antecedent: Term, consequent: Term) -> bool:
        """Does the antecedent entail the consequent?

        Memoized per ``(antecedent, consequent)`` identity pair — the
        workhorse of antichain subsumption and ``typecheck`` fires the
        same entailments thousands of times.
        """
        if antecedent is consequent or antecedent is FALSE or consequent is TRUE:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return True
        if not self._cache_enabled:
            return not self.is_sat(b.mk_and(antecedent, b.mk_not(consequent)))
        key = (antecedent, consequent)
        hit = self._implies_cache.get(key)
        if hit is None:
            hit = not self.is_sat(b.mk_and(antecedent, b.mk_not(consequent)))
            self._implies_cache[key] = hit
        else:
            self.stats._implies_hits.inc()
            if obs_config.ENABLED:
                _OBS_IMPLIES_HITS.inc()
        return hit

    def equivalent(self, left: Term, right: Term) -> bool:
        if left is right:
            self.stats._trivial.inc()
            if obs_config.ENABLED:
                _OBS_TRIVIAL.inc()
            return True
        return self.implies(left, right) and self.implies(right, left)

    # -- cache management --------------------------------------------------

    def cache_info(self) -> dict[str, float]:
        """Sizes and hit counters of every cache this solver touches.

        Includes the process-wide term-layer caches (intern table,
        substitution memo) so `--profile` runs can spot leaks.
        """
        return {
            "sat_cache_size": len(self._sat_cache),
            "implies_cache_size": len(self._implies_cache),
            "sat_queries": self.stats.sat_queries,
            "cache_hits": self.stats.cache_hits,
            "implies_cache_hits": self.stats.implies_cache_hits,
            "trivial_queries": self.stats.trivial_queries,
            "hit_rate": self.stats.hit_rate,
            "intern_table_size": terms_mod.intern_table_size(),
            "substitution_cache_size": terms_mod.subst_cache_size(),
        }

    def clear_cache(self) -> None:
        """Drop the sat/implies memos and the shared substitution cache.

        The intern table is left alone (it canonicalizes identity, not
        results); flush it explicitly with
        :func:`repro.smt.terms.clear_intern_table`.
        """
        self._sat_cache.clear()
        self._implies_cache.clear()
        terms_mod.clear_substitution_cache()


#: Shared default solver used across the library when none is supplied.
DEFAULT_SOLVER = Solver()


def is_sat(formula: Term) -> bool:
    """Module-level convenience wrapper over :data:`DEFAULT_SOLVER`."""
    return DEFAULT_SOLVER.is_sat(formula)


def get_model(formula: Term) -> Optional[Model]:
    """Module-level convenience wrapper over :data:`DEFAULT_SOLVER`."""
    return DEFAULT_SOLVER.get_model(formula)
