"""Linear integer arithmetic via Cooper's algorithm.

Decides conjunctions of literals over ``Int`` variables, where atoms are
``<``, ``<=``, ``=`` between linear terms that may contain ``Mod`` by a
constant.  This is full Presburger arithmetic restricted to conjunctions
of literals (the solver layer handles the Boolean structure), so the
procedure is sound **and complete**, and produces integer models.

Pipeline
--------
1. ``Mod`` elimination: each ``t % k`` is replaced by a fresh variable
   ``m`` with side constraints ``0 <= m < k`` and ``k | t - m``.
2. Literals are normalized to three canonical forms over integer-coefficient
   linear terms: ``lin <= 0``, ``lin = 0`` and ``d | lin`` (disequalities
   are split into two ``<=`` branches).
3. Variables are eliminated one by one: equalities by substitution
   (after coefficient scaling), otherwise Cooper's quantifier
   elimination with the classic ``F_-inf`` / lower-bound case split.

Models are reconstructed on the way back out of the recursion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from math import lcm
from typing import Iterable, Optional

from .linear import LinTerm, linearize
from .terms import Eq, Le, Lt, Mod, SmtError, Term, Var, interned

#: Prefix for solver-internal variables (mod witnesses, scaled variables).
_INTERNAL = "%"


@dataclass(frozen=True)
class IntConstraint:
    """A canonical integer constraint.

    ``kind`` is one of ``"le"`` (lin <= 0), ``"eq"`` (lin = 0), ``"ne"``
    (lin != 0) or ``"div"`` (divisor | lin).
    """

    kind: str
    lin: LinTerm
    divisor: int = 0

    def substitute(self, var: str, replacement: LinTerm) -> "IntConstraint":
        return IntConstraint(self.kind, self.lin.substitute(var, replacement), self.divisor)

    def __repr__(self) -> str:
        if self.kind == "div":
            return f"{self.divisor} | {self.lin!r}"
        op = {"le": "<= 0", "eq": "= 0", "ne": "!= 0"}[self.kind]
        return f"{self.lin!r} {op}"


def _int_lin(lin: LinTerm) -> LinTerm:
    """Scale a rational linear term to have integer coefficients."""
    denoms = [c.denominator for _, c in lin.coeffs] + [lin.const.denominator]
    mult = lcm(*denoms) if denoms else 1
    return lin.scale(mult) if mult != 1 else lin


def _eliminate_mods(
    atoms: list[tuple[bool, Term]], counter: itertools.count
) -> tuple[list[tuple[bool, Term]], list[IntConstraint]]:
    """Replace every ``Mod`` subterm by a fresh variable with side constraints."""
    extra: list[IntConstraint] = []
    work = list(atoms)
    out: list[tuple[bool, Term]] = []
    while work:
        pos, atom = work.pop(0)
        mod = _find_innermost_mod(atom)
        if mod is None:
            out.append((pos, atom))
            continue
        fresh = interned(Var, f"{_INTERNAL}m{next(counter)}", mod.sort)
        replaced = _replace_term(atom, mod, fresh)
        work.insert(0, (pos, replaced))
        # 0 <= fresh < modulus  and  modulus | (arg - fresh).  The chosen
        # Mod is innermost, so its argument is already mod-free and has
        # integer coefficients (Int terms never produce fractions).
        lin_fresh = LinTerm.variable(fresh.name)
        extra.append(IntConstraint("le", lin_fresh.negate()))  # -m <= 0
        extra.append(
            IntConstraint("le", lin_fresh.add(LinTerm.constant(1 - mod.modulus)))
        )  # m - (k-1) <= 0
        arg_lin = linearize(mod.arg)
        extra.append(IntConstraint("div", arg_lin.sub(lin_fresh), divisor=mod.modulus))
    return out, extra


def _find_innermost_mod(term: Term) -> Optional[Mod]:
    found: Optional[Mod] = None
    for sub in term.iter_subterms():
        if isinstance(sub, Mod):
            found = sub
            inner = _find_innermost_mod(sub.arg)
            if inner is not None:
                return inner
            return sub
    return found


def _replace_term(term: Term, target: Term, replacement: Term) -> Term:
    if term == target:
        return replacement
    if isinstance(term, Var) or not term.children:
        return term
    import dataclasses

    new_children = tuple(_replace_term(c, target, replacement) for c in term.children)
    if new_children == term.children:
        return term
    # All composite term dataclasses store children in their declared fields.
    fields = dataclasses.fields(term)
    values = []
    idx = 0
    for f in fields:
        v = getattr(term, f.name)
        if isinstance(v, Term):
            values.append(new_children[idx])
            idx += 1
        elif isinstance(v, tuple) and v and all(isinstance(x, Term) for x in v):
            values.append(tuple(new_children[idx : idx + len(v)]))
            idx += len(v)
        else:
            values.append(v)
    return type(term)(*values)


def normalize_literals(literals: Iterable[tuple[bool, Term]]) -> list[IntConstraint]:
    """Turn (sign, atom) literals into canonical integer constraints."""
    counter = itertools.count()
    atoms, extra = _eliminate_mods(list(literals), counter)
    out = list(extra)
    for pos, atom in atoms:
        if isinstance(atom, Lt):
            lin = _int_lin(linearize(atom.left).sub(linearize(atom.right)))
            if pos:  # l - r < 0  <=>  l - r + 1 <= 0
                out.append(IntConstraint("le", lin.add(LinTerm.constant(1))))
            else:  # r <= l  <=>  r - l <= 0
                out.append(IntConstraint("le", lin.negate()))
        elif isinstance(atom, Le):
            lin = _int_lin(linearize(atom.left).sub(linearize(atom.right)))
            if pos:
                out.append(IntConstraint("le", lin))
            else:  # l > r  <=>  r - l + 1 <= 0
                out.append(IntConstraint("le", lin.negate().add(LinTerm.constant(1))))
        elif isinstance(atom, Eq):
            lin = _int_lin(linearize(atom.left).sub(linearize(atom.right)))
            out.append(IntConstraint("eq" if pos else "ne", lin))
        else:
            raise SmtError(f"unsupported integer atom: {atom!r}")
    return out


def solve_int_cube(literals: Iterable[tuple[bool, Term]]) -> Optional[dict[str, int]]:
    """Decide a conjunction of integer literals; return a model or None."""
    constraints = normalize_literals(literals)
    model = _solve(constraints)
    if model is None:
        return None
    return {v: int(x) for v, x in model.items() if not v.startswith(_INTERNAL)}


# ---------------------------------------------------------------------------
# Core recursion
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def _solve(constraints: list[IntConstraint]) -> Optional[dict[str, Fraction]]:
    # Split the first disequality, if any, into the two strict branches.
    for i, c in enumerate(constraints):
        if c.kind == "ne":
            rest = constraints[:i] + constraints[i + 1 :]
            left = rest + [IntConstraint("le", c.lin.add(LinTerm.constant(1)))]
            model = _solve(left)
            if model is not None:
                return model
            right = rest + [IntConstraint("le", c.lin.negate().add(LinTerm.constant(1)))]
            return _solve(right)
    return _solve_basic(constraints)


def _eval_extend(lin: LinTerm, model: dict[str, Fraction]) -> Fraction:
    """Evaluate ``lin`` under ``model``, defaulting unconstrained variables
    to 0 and recording the default in the model (sound: the variable no
    longer occurs in any remaining constraint)."""
    for v in lin.variables:
        model.setdefault(v, Fraction(0))
    return lin.evaluate(model)


def _ground_ok(c: IntConstraint) -> bool:
    v = c.lin.const
    if c.kind == "le":
        return v <= 0
    if c.kind == "eq":
        return v == 0
    if c.kind == "div":
        return v % c.divisor == 0
    raise AssertionError(c.kind)


def _solve_basic(constraints: list[IntConstraint]) -> Optional[dict[str, Fraction]]:
    """Decide a conjunction of le/eq/div constraints (no disequalities)."""
    ground = [c for c in constraints if c.lin.is_constant()]
    if not all(_ground_ok(c) for c in ground):
        return None
    live = [c for c in constraints if not c.lin.is_constant()]
    if not live:
        return {}

    variables = sorted({v for c in live for v in c.lin.variables})
    # Prefer a variable occurring in an equality (cheap substitution).
    var = None
    for c in live:
        if c.kind == "eq":
            var = min(c.lin.variables)
            break
    if var is None:
        var = min(variables, key=lambda v: sum(1 for c in live if v in c.lin.variables))

    with_var = [c for c in live if var in c.lin.variables]
    without = [c for c in live if var not in c.lin.variables]

    # Scale so the coefficient of `var` is +-lam everywhere, then replace
    # lam*var by a fresh variable X with the side constraint lam | X.
    lam = lcm(*(abs(int(c.lin.coeff(var))) for c in with_var))
    fresh = f"{_INTERNAL}x{next(_fresh_counter)}"
    scaled: list[IntConstraint] = []
    for c in with_var:
        a = int(c.lin.coeff(var))
        factor = lam // abs(a)
        lin = c.lin.scale(factor)
        divisor = c.divisor * factor if c.kind == "div" else 0
        # replace lam*var (coefficient now +-lam) by +-1 * fresh
        coeffs = lin.as_dict()
        sign = 1 if coeffs[var] > 0 else -1
        del coeffs[var]
        coeffs[fresh] = Fraction(sign)
        scaled.append(IntConstraint(c.kind, LinTerm.of(coeffs, lin.const), divisor))
    if lam != 1:
        scaled.append(IntConstraint("div", LinTerm.variable(fresh), divisor=lam))

    def finish(model: Optional[dict[str, Fraction]]) -> Optional[dict[str, Fraction]]:
        if model is None:
            return None
        x_val = model.pop(fresh)
        model[var] = x_val / lam
        assert model[var].denominator == 1, "lam must divide X"
        return model

    # Equality on the scaled variable: substitute X := t.
    for i, c in enumerate(scaled):
        if c.kind == "eq":
            sign = int(c.lin.coeff(fresh))
            t = c.lin.drop(fresh).scale(-sign)  # X = t
            others = scaled[:i] + scaled[i + 1 :]
            new = [o.substitute(fresh, t) for o in others] + without
            model = _solve_basic(new)
            if model is None:
                return None
            model[fresh] = _eval_extend(t, model)
            return finish(model)

    # Strict lower bounds b < X (from -X + rest <= 0, i.e. rest <= X, take
    # b = rest - 1), upper bounds X <= u, and divisibilities on X.
    lowers: list[LinTerm] = []
    uppers: list[LinTerm] = []
    divs: list[IntConstraint] = []
    for c in scaled:
        if c.kind == "le":
            sign = int(c.lin.coeff(fresh))
            rest = c.lin.drop(fresh)
            if sign > 0:  # X + rest <= 0  =>  X <= -rest
                uppers.append(rest.negate())
            else:  # -X + rest <= 0  =>  rest - 1 < X
                lowers.append(rest.add(LinTerm.constant(-1)))
        else:
            divs.append(c)

    period = lcm(*(c.divisor for c in divs)) if divs else 1

    if not lowers:
        # F_-inf: X can go to -infinity; only divisibilities matter.
        for j in range(1, period + 1):
            new_divs = [c.substitute(fresh, LinTerm.constant(j)) for c in divs]
            model = _solve_basic(new_divs + without)
            if model is not None:
                if uppers:
                    bound = min(int(_eval_extend(u, model)) for u in uppers)
                else:
                    bound = j
                # Largest X <= bound with X = j (mod period).
                x_val = bound - ((bound - j) % period)
                model[fresh] = Fraction(x_val)
                return finish(model)
        return None

    # Cooper's main disjunction: X = b + j for some strict lower bound b
    # and 1 <= j <= period.  Substituting into the *original* scaled
    # constraints keeps all bound interactions exact.
    for low in lowers:
        for j in range(1, period + 1):
            repl = low.add(LinTerm.constant(j))
            new = [c.substitute(fresh, repl) for c in scaled]
            model = _solve_basic(new + without)
            if model is not None:
                model[fresh] = _eval_extend(repl, model)
                return finish(model)
    return None
