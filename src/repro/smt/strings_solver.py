"""Equality logic over strings.

The string sort is an infinite domain with equality; Fast guards compare
string attributes with constants and with each other (e.g.
``tag = "script"``).  A conjunction of (dis)equalities over an infinite
domain is decided by congruence closure (union-find): merge equalities,
fail if two distinct constants meet or a disequality connects a merged
class.  Fresh values for unconstrained classes always exist because the
domain is infinite.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from .terms import Const, Eq, SmtError, Term, Var


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[object, object] = {}

    def find(self, x: object) -> object:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _key(term: Term) -> object:
    if isinstance(term, Var):
        return ("var", term.name)
    if isinstance(term, Const):
        return ("const", term.value)
    raise SmtError(f"string atoms must compare variables/constants: {term!r}")


def solve_string_cube(
    literals: Iterable[tuple[bool, Term]],
) -> Optional[dict[str, str]]:
    """Decide a conjunction of string (dis)equality literals.

    Returns a model (every mentioned variable gets a string) or None.
    """
    uf = _UnionFind()
    diseqs: list[tuple[object, object]] = []
    keys: set[object] = set()
    for pos, atom in literals:
        if not isinstance(atom, Eq):
            raise SmtError(f"unsupported string atom: {atom!r}")
        ka, kb = _key(atom.left), _key(atom.right)
        keys.update((ka, kb))
        if pos:
            uf.union(ka, kb)
        else:
            diseqs.append((ka, kb))

    # Conflict 1: two distinct constants in one class.
    rep_const: dict[object, str] = {}
    for k in keys:
        if k[0] == "const":
            root = uf.find(k)
            if root in rep_const and rep_const[root] != k[1]:
                return None
            rep_const[root] = k[1]  # type: ignore[assignment]
    # Conflict 2: a disequality inside one class.
    for ka, kb in diseqs:
        if uf.find(ka) == uf.find(kb):
            return None

    # Build a model: constants pin their class; other classes get fresh
    # pairwise-distinct strings (infinite domain).
    fresh = (f"_s{i}" for i in itertools.count())
    used = {v for v in rep_const.values()}
    root_value: dict[object, str] = dict(rep_const)
    model: dict[str, str] = {}
    for k in sorted(keys, key=repr):
        if k[0] != "var":
            continue
        root = uf.find(k)
        if root not in root_value:
            value = next(fresh)
            while value in used:
                value = next(fresh)
            used.add(value)
            root_value[root] = value
        model[k[1]] = root_value[root]  # type: ignore[index]
    return model
