"""Label-theory substrate: terms, formulas, and the decision procedure.

This package replaces the paper's use of Z3 (Section 3.1 requires only a
*decidable* label theory closed under Boolean operations — an effective
Boolean algebra).  See DESIGN.md for the substitution argument.
"""

from typing import Optional

from .builders import (
    FALSE,
    TRUE,
    conjoin,
    disjoin,
    mk_add,
    mk_and,
    mk_bool,
    mk_const,
    mk_eq,
    mk_ge,
    mk_gt,
    mk_iff,
    mk_implies,
    mk_int,
    mk_ite,
    mk_le,
    mk_lt,
    mk_mod,
    mk_mul,
    mk_ne,
    mk_neg,
    mk_not,
    mk_or,
    mk_real,
    mk_str,
    mk_sub,
    mk_var,
)
from .minterms import minterms
from .simplify import rebuild, simplify
from .solver import DEFAULT_SOLVER, Model, Solver, get_model, is_sat
from .sorts import BASIC_SORTS, BOOL, INT, REAL, STRING, Sort
from .terms import (
    Add,
    And,
    Const,
    Eq,
    EvaluationError,
    Le,
    Lt,
    Mod,
    Mul,
    Neg,
    NonLinearError,
    Not,
    Or,
    SmtError,
    SortError,
    Term,
    Value,
    Var,
    clear_intern_table,
    clear_substitution_cache,
    intern_table_size,
    interned,
    interned_const,
    subst_cache_size,
)

def flush_all_caches(
    solver: Optional[Solver] = None,
    *,
    check: bool = False,
    check_sample: Optional[int] = 128,
) -> dict[str, int]:
    """Coordinated flush of every term-holding cache in the process.

    :func:`~repro.smt.terms.clear_intern_table` alone is not enough for
    memory hygiene: the solver's sat/implies memos and the exec
    artifact LRU key and hold *term objects*, so a bare intern flush
    leaves retired terms pinned (structural equality even lets the
    stale entries keep hitting, which silently keeps the whole old
    term DAG alive).  This clears, in one step:

    * the given solver's (default: :data:`DEFAULT_SOLVER`) sat and
      implies memos plus the shared substitution cache;
    * the intern table itself (``TRUE``/``FALSE`` are re-seeded, so
      identity fast paths on the canonical booleans survive);
    * the exec compiled-artifact memory LRU (disk artifacts are
      content-addressed and stay).

    With ``check=True`` the solver and intern invariants are verified
    *before* anything is dropped (:func:`repro.guard.
    check_solver_consistency`, sampled at ``check_sample`` entries per
    table) — the worker hygiene path uses this so a flush never papers
    over corrupted cache state.

    Returns the pre-flush sizes, keyed like ``cache_info()``.
    """
    target = solver if solver is not None else DEFAULT_SOLVER
    sizes = {
        "sat_cache": len(target._sat_cache),
        "implies_cache": len(target._implies_cache),
        "intern_table": intern_table_size(),
        "substitution_cache": subst_cache_size(),
    }
    if check:
        from ..guard import check_solver_consistency

        check_solver_consistency(target, sample=check_sample)
    target.clear_cache()
    clear_intern_table()
    try:
        # Lazy import: repro.exec imports repro.smt, not vice versa.
        from ..exec.cache import DEFAULT_CACHE

        sizes["exec_memory_cache"] = len(DEFAULT_CACHE)
        DEFAULT_CACHE.clear()
    except Exception:
        sizes["exec_memory_cache"] = 0
    return sizes


__all__ = [
    "BASIC_SORTS",
    "BOOL",
    "DEFAULT_SOLVER",
    "FALSE",
    "INT",
    "REAL",
    "STRING",
    "TRUE",
    "Add",
    "And",
    "Const",
    "Eq",
    "EvaluationError",
    "Le",
    "Lt",
    "Mod",
    "Model",
    "Mul",
    "Neg",
    "NonLinearError",
    "Not",
    "Or",
    "SmtError",
    "Solver",
    "Sort",
    "SortError",
    "Term",
    "Value",
    "Var",
    "clear_intern_table",
    "clear_substitution_cache",
    "conjoin",
    "disjoin",
    "flush_all_caches",
    "get_model",
    "intern_table_size",
    "interned",
    "interned_const",
    "is_sat",
    "minterms",
    "subst_cache_size",
    "mk_add",
    "mk_and",
    "mk_bool",
    "mk_const",
    "mk_eq",
    "mk_ge",
    "mk_gt",
    "mk_iff",
    "mk_implies",
    "mk_int",
    "mk_ite",
    "mk_le",
    "mk_lt",
    "mk_mod",
    "mk_mul",
    "mk_ne",
    "mk_neg",
    "mk_not",
    "mk_or",
    "mk_real",
    "mk_str",
    "mk_sub",
    "mk_var",
    "rebuild",
    "simplify",
]
