"""Linear real arithmetic via Fourier-Motzkin elimination.

Decides conjunctions of literals over ``Real`` variables and produces
rational models.  Non-linear atoms in a **single** variable are routed
to the Sturm-sequence solver (:mod:`repro.smt.poly_real`); variables that
occur only in linear atoms are eliminated by Fourier-Motzkin first, so a
cube may freely mix, say, a cubic guard on ``x`` with linear guards on
``y`` as long as no non-linear atom mentions two variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional

from .linear import LinTerm, linearize
from .poly_real import PolyConstraint, decide_poly_cube, poly_from_term, poly_sub
from .terms import Eq, Le, Lt, NonLinearError, SmtError, Term


class UnsupportedRealFragment(SmtError):
    """The cube mixes non-linear atoms across variables."""


@dataclass(frozen=True)
class RealConstraint:
    """``lin < 0`` (strict) or ``lin <= 0`` / ``lin = 0`` / ``lin != 0``."""

    kind: str  # "lt" | "le" | "eq" | "ne"
    lin: LinTerm

    def substitute(self, var: str, replacement: LinTerm) -> "RealConstraint":
        return RealConstraint(self.kind, self.lin.substitute(var, replacement))


@dataclass
class RealModelResult:
    """A model for a real cube; ``exact`` is False when a witness sits at
    an irrational algebraic point and is only approximated."""

    assignment: dict[str, Fraction]
    exact: bool = True


def _normalize(literals: Iterable[tuple[bool, Term]]) -> tuple[
    list[RealConstraint], list[PolyConstraint | tuple[str, PolyConstraint]]
]:
    """Split literals into linear constraints and per-variable poly constraints."""
    linear: list[RealConstraint] = []
    polys: list[tuple[str, PolyConstraint]] = []
    for pos, atom in literals:
        if isinstance(atom, Lt):
            diff_terms = (atom.left, atom.right)
            kind = "lt" if pos else "le"
            swap = not pos
        elif isinstance(atom, Le):
            diff_terms = (atom.left, atom.right)
            kind = "le" if pos else "lt"
            swap = not pos
        elif isinstance(atom, Eq):
            diff_terms = (atom.left, atom.right)
            kind = "eq" if pos else "ne"
            swap = False
        else:
            raise SmtError(f"unsupported real atom: {atom!r}")
        left, right = diff_terms
        if swap:
            left, right = right, left
        try:
            lin = linearize(left).sub(linearize(right))
            linear.append(RealConstraint(kind, lin))
        except NonLinearError:
            variables = sorted(
                {v.name for v in left.free_vars()} | {v.name for v in right.free_vars()}
            )
            if len(variables) != 1:
                raise UnsupportedRealFragment(
                    f"non-linear atom over several variables: {atom!r}"
                )
            var = variables[0]
            p = poly_sub(poly_from_term(left, var), poly_from_term(right, var))
            op = {"lt": "<", "le": "<=", "eq": "=", "ne": "!="}[kind]
            polys.append((var, PolyConstraint(p, op)))
    return linear, polys


def _eval_extend(lin: LinTerm, model: dict[str, Fraction]) -> Fraction:
    """Evaluate ``lin`` under ``model``, defaulting unconstrained variables
    to 0 (sound: they no longer occur in any remaining constraint)."""
    for v in lin.variables:
        model.setdefault(v, Fraction(0))
    return lin.evaluate(model)


def solve_real_cube(
    literals: Iterable[tuple[bool, Term]],
) -> Optional[RealModelResult]:
    """Decide a conjunction of real literals; return a model or None."""
    linear, polys = _normalize(literals)
    poly_vars = {v for v, _ in polys}
    return _solve(linear, polys, poly_vars)


def _solve(
    linear: list[RealConstraint],
    polys: list[tuple[str, PolyConstraint]],
    poly_vars: set[str],
) -> Optional[RealModelResult]:
    # Branch on disequalities first.
    for i, c in enumerate(linear):
        if c.kind == "ne":
            rest = linear[:i] + linear[i + 1 :]
            for kind, lin in (("lt", c.lin), ("lt", c.lin.negate())):
                result = _solve(rest + [RealConstraint(kind, lin)], polys, poly_vars)
                if result is not None:
                    return result
            return None

    # Substitute linear equalities (only through linear constraints; an
    # equality variable feeding a poly atom is out of fragment unless the
    # substitution is constant).
    for i, c in enumerate(linear):
        if c.kind == "eq" and not c.lin.is_constant():
            # pick a variable to solve for, preferring one outside poly atoms
            candidates = sorted(c.lin.variables - poly_vars) or sorted(c.lin.variables)
            var = candidates[0]
            a = c.lin.coeff(var)
            expr = c.lin.drop(var).scale(Fraction(-1) / a)
            rest = [o.substitute(var, expr) for o in linear[:i] + linear[i + 1 :]]
            if var in poly_vars:
                if not expr.is_constant():
                    raise UnsupportedRealFragment(
                        f"equality on poly variable {var} is not constant"
                    )
                value = expr.const
                new_polys = []
                for v, pc in polys:
                    if v == var:
                        from .poly_real import poly_eval

                        sign_v = poly_eval(pc.poly, value)
                        sign = 0 if sign_v == 0 else (1 if sign_v > 0 else -1)
                        if not pc.holds_sign(sign):
                            return None
                    else:
                        new_polys.append((v, pc))
                result = _solve(rest, new_polys, {v for v, _ in new_polys})
                if result is None:
                    return None
                result.assignment[var] = value
                return result
            result = _solve(rest, polys, poly_vars)
            if result is None:
                return None
            result.assignment[var] = _eval_extend(expr, result.assignment)
            return result

    ground = [c for c in linear if c.lin.is_constant()]
    for c in ground:
        v = c.lin.const
        ok = v < 0 if c.kind == "lt" else (v <= 0 if c.kind == "le" else v == 0)
        if not ok:
            return None
    live = [c for c in linear if not c.lin.is_constant()]

    lin_vars = {v for c in live for v in c.lin.variables}
    fm_vars = sorted(lin_vars - poly_vars)
    if fm_vars:
        var = fm_vars[0]
        lowers: list[tuple[LinTerm, bool]] = []  # (bound, strict): bound (<|<=) var
        uppers: list[tuple[LinTerm, bool]] = []  # var (<|<=) bound
        others: list[RealConstraint] = []
        for c in live:
            a = c.lin.coeff(var)
            if a == 0:
                others.append(c)
                continue
            rest = c.lin.drop(var).scale(Fraction(-1) / a)
            if a > 0:  # a*var + r (<|<=) 0  =>  var (<|<=) rest
                uppers.append((rest, c.kind == "lt"))
            else:
                lowers.append((rest, c.kind == "lt"))
        combined = list(others)
        for lo, s1 in lowers:
            for hi, s2 in uppers:
                combined.append(RealConstraint("lt" if (s1 or s2) else "le", lo.sub(hi)))
        result = _solve(combined, polys, poly_vars)
        if result is None:
            return None
        env = result.assignment
        lo_vals = [(_eval_extend(l, env), s) for l, s in lowers]
        hi_vals = [(_eval_extend(h, env), s) for h, s in uppers]
        result.assignment[var] = _pick_between(lo_vals, hi_vals)
        return result

    # Only poly variables remain; any remaining linear atom must be univariate.
    by_var: dict[str, list[PolyConstraint]] = {}
    for v, pc in polys:
        by_var.setdefault(v, []).append(pc)
    for c in live:
        variables = sorted(c.lin.variables)
        if len(variables) != 1:
            raise UnsupportedRealFragment(
                f"linear atom {c!r} links several non-linear variables"
            )
        v = variables[0]
        coeffs = [c.lin.const, c.lin.coeff(v)]
        from .poly_real import poly_normalize

        op = {"lt": "<", "le": "<=", "eq": "="}[c.kind]
        by_var.setdefault(v, []).append(PolyConstraint(poly_normalize(coeffs), op))

    assignment: dict[str, Fraction] = {}
    exact = True
    for v, pcs in by_var.items():
        res = decide_poly_cube(pcs)
        if res is None:
            return None
        value, is_exact = res
        assignment[v] = value
        exact = exact and is_exact
    return RealModelResult(assignment, exact)


def _pick_between(
    lowers: list[tuple[Fraction, bool]], uppers: list[tuple[Fraction, bool]]
) -> Fraction:
    """A rational value above all lower bounds and below all upper bounds."""
    if lowers and uppers:
        lo = max(v for v, _ in lowers)
        hi = min(v for v, _ in uppers)
        lo_strict = any(s for v, s in lowers if v == lo)
        hi_strict = any(s for v, s in uppers if v == hi)
        if lo == hi:
            assert not (lo_strict or hi_strict), "FM should have pruned this"
            return lo
        if not lo_strict:
            return lo
        if not hi_strict:
            return hi
        return (lo + hi) / 2
    if lowers:
        return max(v for v, _ in lowers) + 1
    if uppers:
        return min(v for v, _ in uppers) - 1
    return Fraction(0)
