"""Negation normal form and cube (DNF branch) enumeration.

The solver decides a formula by enumerating the cubes of its disjunctive
normal form lazily (depth-first with contradiction pruning) and passing
each cube to the theory solvers.  Guards in Fast programs and in the
composition algorithm are small, so this is effective in practice; a
cube cache in :mod:`repro.smt.solver` removes repeated work.
"""

from __future__ import annotations

from typing import Iterator

from . import builders as b
from .sorts import BOOL
from .terms import FALSE, TRUE, And, Const, Eq, Le, Lt, Not, Or, Term, Var

#: A literal: (sign, atom).  Atoms are Lt/Le/Eq or Bool variables.
Literal = tuple[bool, Term]


def to_nnf(formula: Term) -> Term:
    """Push negations down to the atoms."""
    if isinstance(formula, Not):
        arg = formula.arg
        if isinstance(arg, Not):
            return to_nnf(arg.arg)
        if isinstance(arg, And):
            return b.mk_or(*(to_nnf(b.mk_not(a)) for a in arg.args))
        if isinstance(arg, Or):
            return b.mk_and(*(to_nnf(b.mk_not(a)) for a in arg.args))
        return formula  # negated atom
    if isinstance(formula, And):
        return b.mk_and(*(to_nnf(a) for a in formula.args))
    if isinstance(formula, Or):
        return b.mk_or(*(to_nnf(a) for a in formula.args))
    return formula


def _literal_of(formula: Term) -> Literal:
    if isinstance(formula, Not):
        return (False, formula.arg)
    return (True, formula)


def iter_cubes(formula: Term) -> Iterator[list[Literal]]:
    """Yield the satisfiable-candidate cubes of ``formula`` (NNF'd first).

    Each cube is a list of literals whose conjunction implies the formula
    branch; cubes containing a syntactic contradiction are pruned.
    """
    nnf = to_nnf(formula)
    yield from _iter(nnf, {})


def _iter(formula: Term, partial: dict[Term, bool]) -> Iterator[list[Literal]]:
    if formula == TRUE:
        yield [(sign, atom) for atom, sign in partial.items()]
        return
    if formula == FALSE:
        return
    if isinstance(formula, And):
        yield from _iter_and(list(formula.args), partial)
        return
    if isinstance(formula, Or):
        for arm in formula.args:
            yield from _iter(arm, partial)
        return
    sign, atom = _literal_of(formula)
    if partial.get(atom, sign) != sign:
        return  # contradiction with the prefix
    extended = dict(partial)
    extended[atom] = sign
    yield [(s, a) for a, s in extended.items()]


def _iter_and(conjuncts: list[Term], partial: dict[Term, bool]) -> Iterator[list[Literal]]:
    if not conjuncts:
        yield [(sign, atom) for atom, sign in partial.items()]
        return
    head, tail = conjuncts[0], conjuncts[1:]
    if isinstance(head, And):
        yield from _iter_and(list(head.args) + tail, partial)
        return
    if isinstance(head, Or):
        for arm in head.args:
            yield from _iter_and([arm] + tail, partial)
        return
    if head == FALSE:
        return
    if head == TRUE:
        yield from _iter_and(tail, partial)
        return
    sign, atom = _literal_of(head)
    if partial.get(atom, sign) != sign:
        return
    extended = dict(partial)
    extended[atom] = sign
    yield from _iter_and(tail, extended)


def classify_atom(atom: Term) -> str:
    """Which theory an atom belongs to: 'bool', 'string', 'int' or 'real'."""
    from .sorts import INT, REAL, STRING

    if isinstance(atom, Var) and atom.sort is BOOL:
        return "bool"
    if isinstance(atom, Const) and atom.sort is BOOL:
        return "bool"
    if isinstance(atom, (Lt, Le, Eq)):
        s = atom.left.sort
        if s is STRING:
            return "string"
        if s is INT:
            return "int"
        if s is REAL:
            return "real"
        if s is BOOL:
            # mk_eq desugars Bool equality, but tolerate direct Eq nodes.
            return "booleq"
    raise ValueError(f"unclassifiable atom: {atom!r}")
