"""Sorts (types) of the label theories.

The paper (Section 3.1) parametrizes every definition by a *label theory*
over a background structure.  Fast programs draw node attributes from the
basic sorts below; the solver in :mod:`repro.smt.solver` decides
quantifier-free formulas over them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """A basic sort of the label theory (e.g. ``Int``, ``String``)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __reduce__(self):
        # Unpickle to the module-level singleton: the theory dispatchers
        # compare sorts with ``is``, so identity must survive pickling.
        return (_load_sort, (self.name,))


def _load_sort(name: str) -> "Sort":
    return BASIC_SORTS.get(name) or Sort(name)


BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")
STRING = Sort("String")

#: All basic sorts, keyed by their Fast surface name.
BASIC_SORTS = {s.name: s for s in (BOOL, INT, REAL, STRING)}

#: Sorts whose atoms are handled by the arithmetic theory solvers.
NUMERIC_SORTS = (INT, REAL)


def is_numeric(sort: Sort) -> bool:
    """Return True for sorts handled by the arithmetic solvers."""
    return sort in NUMERIC_SORTS
