"""Terms and formulas of the label theory.

Quantifier-free first-order terms over the basic sorts of
:mod:`repro.smt.sorts`.  Formulas are simply terms of sort ``Bool``.  The
AST is immutable (frozen dataclasses) so terms can be used as dictionary
keys and cached; construction goes through the smart constructors in
:mod:`repro.smt.builders`, which perform light normalization.

The fragment matches what the paper needs from a label theory
(Section 3.1): Boolean connectives, equality at every sort, linear
arithmetic with constant modulus over ``Int``, linear (plus univariate
polynomial) arithmetic over ``Real``, and (dis)equalities over
``String``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Union

from .sorts import BOOL, INT, REAL, STRING, Sort

#: Python carrier values for each sort.
Value = Union[bool, int, Fraction, str]


class SmtError(Exception):
    """Base class for errors raised by the label-theory layer."""


class SortError(SmtError):
    """A term was built or used with mismatched sorts."""


class NonLinearError(SmtError):
    """An arithmetic term fell outside the decidable fragment."""


class EvaluationError(SmtError):
    """A term could not be evaluated under the given environment."""


@dataclass(frozen=True)
class Term:
    """Base class of all terms.  Instances are immutable and hashable."""

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    @property
    def children(self) -> tuple["Term", ...]:
        return ()

    def free_vars(self) -> frozenset["Var"]:
        """The set of free variables (no binders exist, so all variables)."""
        out: set[Var] = set()
        stack: list[Term] = [self]
        while stack:
            t = stack.pop()
            if isinstance(t, Var):
                out.add(t)
            else:
                stack.extend(t.children)
        return frozenset(out)

    def substitute(self, mapping: Mapping[str, "Term"]) -> "Term":
        """Simultaneously substitute terms for variables (by name)."""
        return _substitute(self, mapping)

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Evaluate under a full assignment of values to variables."""
        return _evaluate(self, env)

    def iter_subterms(self) -> Iterator["Term"]:
        """Yield every subterm (including self), pre-order."""
        stack: list[Term] = [self]
        while stack:
            t = stack.pop()
            yield t
            stack.extend(t.children)

    def __and__(self, other: "Term") -> "Term":
        from .builders import mk_and

        return mk_and(self, other)

    def __or__(self, other: "Term") -> "Term":
        from .builders import mk_or

        return mk_or(self, other)

    def __invert__(self) -> "Term":
        from .builders import mk_not

        return mk_not(self)


@dataclass(frozen=True)
class Var(Term):
    """A variable; in automaton guards these name attribute fields."""

    name: str
    var_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.var_sort

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A constant value of a basic sort."""

    value: Value
    const_sort: Sort

    def __post_init__(self) -> None:
        expected = {
            BOOL: bool,
            INT: int,
            REAL: Fraction,
            STRING: str,
        }[self.const_sort]
        if not isinstance(self.value, expected) or (
            expected is int and isinstance(self.value, bool)
        ):
            raise SortError(
                f"constant {self.value!r} does not inhabit sort {self.const_sort}"
            )

    @property
    def sort(self) -> Sort:
        return self.const_sort

    def __repr__(self) -> str:
        if self.const_sort is STRING:
            return repr(self.value)
        return str(self.value)


TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)


def _require_numeric_pair(name: str, left: Term, right: Term) -> Sort:
    if left.sort != right.sort:
        raise SortError(f"{name}: operand sorts differ ({left.sort} vs {right.sort})")
    if left.sort not in (INT, REAL):
        raise SortError(f"{name}: operands must be numeric, got {left.sort}")
    return left.sort


@dataclass(frozen=True)
class Add(Term):
    """n-ary addition over a numeric sort."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise SortError("Add requires at least two arguments")
        s = self.args[0].sort
        for a in self.args:
            if a.sort != s or s not in (INT, REAL):
                raise SortError("Add: all arguments must share a numeric sort")

    @property
    def sort(self) -> Sort:
        return self.args[0].sort

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Mul(Term):
    """n-ary multiplication over a numeric sort.

    The solver requires formulas to be linear (at most one non-constant
    factor) except for univariate polynomial real constraints, which are
    decided by Sturm sequences.
    """

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise SortError("Mul requires at least two arguments")
        s = self.args[0].sort
        for a in self.args:
            if a.sort != s or s not in (INT, REAL):
                raise SortError("Mul: all arguments must share a numeric sort")

    @property
    def sort(self) -> Sort:
        return self.args[0].sort

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Neg(Term):
    """Arithmetic negation."""

    arg: Term

    def __post_init__(self) -> None:
        if self.arg.sort not in (INT, REAL):
            raise SortError("Neg: argument must be numeric")

    @property
    def sort(self) -> Sort:
        return self.arg.sort

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"(- {self.arg!r})"


@dataclass(frozen=True)
class Mod(Term):
    """``arg % modulus`` with a fixed positive constant modulus.

    Follows Python semantics: the result is always in ``[0, modulus)``.
    Constant modulus keeps the theory inside Presburger arithmetic, where
    Cooper's algorithm is complete.
    """

    arg: Term
    modulus: int

    def __post_init__(self) -> None:
        if self.arg.sort is not INT:
            raise SortError("Mod: argument must be Int")
        if not isinstance(self.modulus, int) or self.modulus <= 0:
            raise SortError("Mod: modulus must be a positive integer constant")

    @property
    def sort(self) -> Sort:
        return INT

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"({self.arg!r} % {self.modulus})"


@dataclass(frozen=True)
class Lt(Term):
    """Strict less-than over a numeric sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _require_numeric_pair("Lt", self.left, self.right)

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} < {self.right!r})"


@dataclass(frozen=True)
class Le(Term):
    """Non-strict less-than over a numeric sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _require_numeric_pair("Le", self.left, self.right)

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} <= {self.right!r})"


@dataclass(frozen=True)
class Eq(Term):
    """Equality at any basic sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.left.sort != self.right.sort:
            raise SortError(
                f"Eq: operand sorts differ ({self.left.sort} vs {self.right.sort})"
            )

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class And(Term):
    """n-ary conjunction."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for a in self.args:
            if a.sort is not BOOL:
                raise SortError("And: arguments must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        if not self.args:
            return "true"
        return "(" + " and ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Or(Term):
    """n-ary disjunction."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for a in self.args:
            if a.sort is not BOOL:
                raise SortError("Or: arguments must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        if not self.args:
            return "false"
        return "(" + " or ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Not(Term):
    """Negation of a formula."""

    arg: Term

    def __post_init__(self) -> None:
        if self.arg.sort is not BOOL:
            raise SortError("Not: argument must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


# ---------------------------------------------------------------------------
# Hash caching
# ---------------------------------------------------------------------------
#
# Terms key caches and dedup sets throughout the automaton algorithms;
# the dataclass-generated __hash__ walks the whole term each call, which
# profiling shows dominating composition and emptiness.  Wrap every term
# class's generated __hash__ with a lazy per-object cache (children's
# hashes are cached too, so a cold hash is linear once, then O(1)).


def _install_cached_hash(cls: type) -> None:
    generated = cls.__hash__

    def __hash__(self):  # noqa: ANN001
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            value = generated(self)
            object.__setattr__(self, "_hash_cache", value)
            return value

    cls.__hash__ = __hash__  # type: ignore[assignment]


for _cls in (Var, Const, Add, Mul, Neg, Mod, Lt, Le, Eq, And, Or, Not):
    _install_cached_hash(_cls)


# ---------------------------------------------------------------------------
# Substitution and evaluation
# ---------------------------------------------------------------------------


def _substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    from . import builders as b

    if isinstance(term, Var):
        repl = mapping.get(term.name)
        if repl is None:
            return term
        if repl.sort != term.sort:
            raise SortError(
                f"substitution for {term.name} has sort {repl.sort}, "
                f"expected {term.sort}"
            )
        return repl
    if isinstance(term, Const):
        return term
    if isinstance(term, Add):
        return b.mk_add(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Mul):
        return b.mk_mul(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Neg):
        return b.mk_neg(_substitute(term.arg, mapping))
    if isinstance(term, Mod):
        return b.mk_mod(_substitute(term.arg, mapping), term.modulus)
    if isinstance(term, Lt):
        return b.mk_lt(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, Le):
        return b.mk_le(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, Eq):
        return b.mk_eq(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, And):
        return b.mk_and(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Or):
        return b.mk_or(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Not):
        return b.mk_not(_substitute(term.arg, mapping))
    raise SmtError(f"substitute: unknown term {term!r}")


def _evaluate(term: Term, env: Mapping[str, Value]) -> Value:
    if isinstance(term, Var):
        if term.name not in env:
            raise EvaluationError(f"unbound variable {term.name}")
        return env[term.name]
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Add):
        total = _evaluate(term.args[0], env)
        for a in term.args[1:]:
            total = total + _evaluate(a, env)  # type: ignore[operator]
        return total
    if isinstance(term, Mul):
        total = _evaluate(term.args[0], env)
        for a in term.args[1:]:
            total = total * _evaluate(a, env)  # type: ignore[operator]
        return total
    if isinstance(term, Neg):
        return -_evaluate(term.arg, env)  # type: ignore[operator]
    if isinstance(term, Mod):
        return _evaluate(term.arg, env) % term.modulus  # type: ignore[operator]
    if isinstance(term, Lt):
        return _evaluate(term.left, env) < _evaluate(term.right, env)  # type: ignore[operator]
    if isinstance(term, Le):
        return _evaluate(term.left, env) <= _evaluate(term.right, env)  # type: ignore[operator]
    if isinstance(term, Eq):
        return _evaluate(term.left, env) == _evaluate(term.right, env)
    if isinstance(term, And):
        return all(_evaluate(a, env) for a in term.args)
    if isinstance(term, Or):
        return any(_evaluate(a, env) for a in term.args)
    if isinstance(term, Not):
        return not _evaluate(term.arg, env)
    raise SmtError(f"evaluate: unknown term {term!r}")
