"""Terms and formulas of the label theory.

Quantifier-free first-order terms over the basic sorts of
:mod:`repro.smt.sorts`.  Formulas are simply terms of sort ``Bool``.  The
AST is immutable (frozen dataclasses); construction goes through the
smart constructors in :mod:`repro.smt.builders`, which perform light
normalization and **hash-cons** every node: structurally equal terms
built through the builders are reference-equal (a shared DAG), so
``__hash__`` is O(1) after construction, ``__eq__`` has an identity fast
path, and per-node results (``sort``, ``free_vars``, substitutions) are
computed once and shared.

Directly constructed nodes (``And((a, b))``) remain valid terms — they
are simply not deduplicated; equality and hashing stay structural, so
interned and non-interned terms interoperate in every cache and set.

The fragment matches what the paper needs from a label theory
(Section 3.1): Boolean connectives, equality at every sort, linear
arithmetic with constant modulus over ``Int``, linear (plus univariate
polynomial) arithmetic over ``Real``, and (dis)equalities over
``String``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields as dataclass_fields
from fractions import Fraction
from typing import Iterator, Mapping, Union

from ..errors import ReproError
from ..obs import config as _obs_config
from ..obs import metrics as _obs_metrics
from .sorts import BOOL, INT, REAL, STRING, Sort

#: Python carrier values for each sort.
Value = Union[bool, int, Fraction, str]


class SmtError(ReproError):
    """Base class for errors raised by the label-theory layer."""


class SortError(SmtError):
    """A term was built or used with mismatched sorts."""


class NonLinearError(SmtError):
    """An arithmetic term fell outside the decidable fragment."""


class EvaluationError(SmtError):
    """A term could not be evaluated under the given environment."""


@dataclass(frozen=True)
class Term:
    """Base class of all terms.  Instances are immutable and hashable."""

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    @property
    def children(self) -> tuple["Term", ...]:
        return ()

    def free_vars(self) -> frozenset["Var"]:
        """The set of free variables (no binders exist, so all variables).

        Computed once per node and cached; on the hash-consed DAG the
        children's cached sets are shared, so a cold computation is
        linear in the number of *distinct* subterms.
        """
        try:
            return object.__getattribute__(self, "_fv_cache")
        except AttributeError:
            pass
        if isinstance(self, Var):
            fv: frozenset[Var] = frozenset((self,))
        else:
            kids = self.children
            if not kids:
                fv = _NO_VARS
            elif len(kids) == 1:
                fv = kids[0].free_vars()
            else:
                fv = frozenset().union(*(c.free_vars() for c in kids))
        object.__setattr__(self, "_fv_cache", fv)
        return fv

    def free_var_names(self) -> frozenset[str]:
        """Cached set of free-variable *names* (substitution pruning)."""
        try:
            return object.__getattribute__(self, "_fvn_cache")
        except AttributeError:
            pass
        names = frozenset(v.name for v in self.free_vars())
        object.__setattr__(self, "_fvn_cache", names)
        return names

    def substitute(self, mapping: Mapping[str, "Term"]) -> "Term":
        """Simultaneously substitute terms for variables (by name).

        No-ops (empty mapping, or no free variable mentioned) return
        ``self`` without walking the term; non-trivial substitutions are
        memoized in a process-wide cache keyed by the (interned) term
        and the relevant slice of the mapping.
        """
        if not mapping:
            return self
        names = self.free_var_names()
        if names.isdisjoint(mapping):
            return self
        relevant = tuple(
            sorted((k, v) for k, v in mapping.items() if k in names)
        )
        key = (self, relevant)
        hit = _SUBST_CACHE.get(key)
        if hit is not None:
            if _obs_config.ENABLED:
                _OBS_SUBST_HITS.inc()
            return hit
        result = _substitute(self, mapping)
        if len(_SUBST_CACHE) >= _SUBST_CACHE_MAX:
            _SUBST_CACHE.clear()
        _SUBST_CACHE[key] = result
        return result

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Evaluate under a full assignment of values to variables."""
        return _evaluate(self, env)

    def iter_subterms(self) -> Iterator["Term"]:
        """Yield every subterm (including self), pre-order."""
        stack: list[Term] = [self]
        while stack:
            t = stack.pop()
            yield t
            stack.extend(t.children)

    def __and__(self, other: "Term") -> "Term":
        from .builders import mk_and

        return mk_and(self, other)

    def __or__(self, other: "Term") -> "Term":
        from .builders import mk_or

        return mk_or(self, other)

    def __invert__(self) -> "Term":
        from .builders import mk_not

        return mk_not(self)


@dataclass(frozen=True)
class Var(Term):
    """A variable; in automaton guards these name attribute fields."""

    name: str
    var_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.var_sort

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A constant value of a basic sort."""

    value: Value
    const_sort: Sort

    def __post_init__(self) -> None:
        expected = {
            BOOL: bool,
            INT: int,
            REAL: Fraction,
            STRING: str,
        }[self.const_sort]
        if not isinstance(self.value, expected) or (
            expected is int and isinstance(self.value, bool)
        ):
            raise SortError(
                f"constant {self.value!r} does not inhabit sort {self.const_sort}"
            )

    @property
    def sort(self) -> Sort:
        return self.const_sort

    def __repr__(self) -> str:
        if self.const_sort is STRING:
            return repr(self.value)
        return str(self.value)


TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)


def _require_numeric_pair(name: str, left: Term, right: Term) -> Sort:
    if left.sort != right.sort:
        raise SortError(f"{name}: operand sorts differ ({left.sort} vs {right.sort})")
    if left.sort not in (INT, REAL):
        raise SortError(f"{name}: operands must be numeric, got {left.sort}")
    return left.sort


@dataclass(frozen=True)
class Add(Term):
    """n-ary addition over a numeric sort."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise SortError("Add requires at least two arguments")
        s = self.args[0].sort
        for a in self.args:
            if a.sort != s or s not in (INT, REAL):
                raise SortError("Add: all arguments must share a numeric sort")

    @property
    def sort(self) -> Sort:
        return self.args[0].sort

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Mul(Term):
    """n-ary multiplication over a numeric sort.

    The solver requires formulas to be linear (at most one non-constant
    factor) except for univariate polynomial real constraints, which are
    decided by Sturm sequences.
    """

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise SortError("Mul requires at least two arguments")
        s = self.args[0].sort
        for a in self.args:
            if a.sort != s or s not in (INT, REAL):
                raise SortError("Mul: all arguments must share a numeric sort")

    @property
    def sort(self) -> Sort:
        return self.args[0].sort

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Neg(Term):
    """Arithmetic negation."""

    arg: Term

    def __post_init__(self) -> None:
        if self.arg.sort not in (INT, REAL):
            raise SortError("Neg: argument must be numeric")

    @property
    def sort(self) -> Sort:
        return self.arg.sort

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"(- {self.arg!r})"


@dataclass(frozen=True)
class Mod(Term):
    """``arg % modulus`` with a fixed positive constant modulus.

    Follows Python semantics: the result is always in ``[0, modulus)``.
    Constant modulus keeps the theory inside Presburger arithmetic, where
    Cooper's algorithm is complete.
    """

    arg: Term
    modulus: int

    def __post_init__(self) -> None:
        if self.arg.sort is not INT:
            raise SortError("Mod: argument must be Int")
        if not isinstance(self.modulus, int) or self.modulus <= 0:
            raise SortError("Mod: modulus must be a positive integer constant")

    @property
    def sort(self) -> Sort:
        return INT

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"({self.arg!r} % {self.modulus})"


@dataclass(frozen=True)
class Lt(Term):
    """Strict less-than over a numeric sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _require_numeric_pair("Lt", self.left, self.right)

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} < {self.right!r})"


@dataclass(frozen=True)
class Le(Term):
    """Non-strict less-than over a numeric sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _require_numeric_pair("Le", self.left, self.right)

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} <= {self.right!r})"


@dataclass(frozen=True)
class Eq(Term):
    """Equality at any basic sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.left.sort != self.right.sort:
            raise SortError(
                f"Eq: operand sorts differ ({self.left.sort} vs {self.right.sort})"
            )

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class And(Term):
    """n-ary conjunction."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for a in self.args:
            if a.sort is not BOOL:
                raise SortError("And: arguments must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        if not self.args:
            return "true"
        return "(" + " and ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Or(Term):
    """n-ary disjunction."""

    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for a in self.args:
            if a.sort is not BOOL:
                raise SortError("Or: arguments must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        if not self.args:
            return "false"
        return "(" + " or ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Not(Term):
    """Negation of a formula."""

    arg: Term

    def __post_init__(self) -> None:
        if self.arg.sort is not BOOL:
            raise SortError("Not: argument must be Bool")

    @property
    def sort(self) -> Sort:
        return BOOL

    @property
    def children(self) -> tuple[Term, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


# ---------------------------------------------------------------------------
# Hash consing
# ---------------------------------------------------------------------------
#
# Terms key caches and dedup sets throughout the automaton algorithms.
# Three layers keep those operations O(1):
#
# * every term class's generated __hash__ is wrapped with a lazy
#   per-object cache (children's hashes are cached too, so a cold hash
#   is linear once, then O(1));
# * __eq__ gets an identity fast path plus a cached-hash negative fast
#   path, falling back to the structural dataclass comparison only for
#   equal-hash non-identical pairs (i.e. un-interned duplicates);
# * the smart constructors intern every node in the process-wide table
#   below, so terms built through :mod:`repro.smt.builders` are
#   reference-equal iff structurally equal and form a shared DAG.
#
# The table maps a structural key (class + constructor arguments) to the
# canonical instance.  Keys hold strong references: the table is a
# deliberate process-lifetime cache, sized by the ``terms.intern_table_size``
# gauge and flushable via :func:`clear_intern_table`.

_NO_VARS: frozenset = frozenset()

_INTERN_TABLE: dict[tuple, "Term"] = {}
_INTERN_LOCK = threading.Lock()

_SUBST_CACHE: dict[tuple, "Term"] = {}
_SUBST_CACHE_MAX = 1 << 16

_OBS_INTERNED = _obs_metrics.counter("terms.interned")
_OBS_INTERN_HITS = _obs_metrics.counter("terms.intern_hits")
_OBS_SUBST_HITS = _obs_metrics.counter("terms.subst_cache_hits")
_OBS_TABLE_SIZE = _obs_metrics.gauge("terms.intern_table_size")


def _intern(key: tuple, cls: type, args: tuple) -> "Term":
    t = _INTERN_TABLE.get(key)
    if t is not None:
        if _obs_config.ENABLED:
            _OBS_INTERN_HITS.inc()
        return t
    with _INTERN_LOCK:
        t = _INTERN_TABLE.get(key)
        if t is None:
            t = cls(*args)
            hash(t)  # precompute the cached hash while we hold the node
            _INTERN_TABLE[key] = t
            _OBS_TABLE_SIZE.set(len(_INTERN_TABLE))
            if _obs_config.ENABLED:
                _OBS_INTERNED.inc()
        elif _obs_config.ENABLED:
            _OBS_INTERN_HITS.inc()
    return t


def interned(cls: type, *args) -> "Term":
    """The canonical instance of ``cls(*args)`` (constructing on miss).

    On a hit the constructor (and its sort validation) is skipped
    entirely.  Thread-safe: concurrent misses for the same key race to a
    lock and exactly one instance wins.
    """
    if cls is Const:
        return interned_const(*args)
    return _intern((cls, *args), cls, args)


def interned_const(value: Value, sort: Sort) -> "Const":
    """Interned :class:`Const`.

    The key includes the carrier's Python type: ``True == 1`` and
    ``Fraction(1) == 1`` must not alias, and an invalid combination
    (e.g. ``Const(True, INT)``) must still reach the constructor's sort
    validation instead of silently resolving to a cached neighbour.
    """
    return _intern(  # type: ignore[return-value]
        (Const, value.__class__, value, sort), Const, (value, sort)
    )


def intern_table_size() -> int:
    """Number of canonical terms currently interned (leak gauge)."""
    return len(_INTERN_TABLE)


def subst_cache_size() -> int:
    """Number of memoized substitution results."""
    return len(_SUBST_CACHE)


def clear_substitution_cache() -> None:
    """Drop all memoized substitution results."""
    _SUBST_CACHE.clear()


def clear_intern_table() -> None:
    """Flush the intern table (keeps the canonical ``TRUE``/``FALSE``).

    Terms created before the flush stay valid — equality and hashing
    fall back to the structural path — they just stop being the
    canonical representatives of their structure.
    """
    with _INTERN_LOCK:
        _INTERN_TABLE.clear()
        _seed_booleans()
        _OBS_TABLE_SIZE.set(len(_INTERN_TABLE))
    _SUBST_CACHE.clear()


def _seed_booleans() -> None:
    _INTERN_TABLE[(Const, True.__class__, True, BOOL)] = TRUE
    _INTERN_TABLE[(Const, False.__class__, False, BOOL)] = FALSE


def check_intern_invariants(sample: int | None = 512) -> int:
    """Verify the intern table maps every key to its canonical term.

    For (a sample of) the entries, rebuilding the term from the
    structural key must produce a node that is structurally equal to the
    stored canonical instance with an identical hash — i.e. no abort or
    injected fault left a half-published or mismatched entry behind.
    Returns the number of entries checked; raises :class:`SmtError` on
    a violation.  Part of the abort-safety contract of
    :mod:`repro.guard` (see ``guard.check_solver_consistency``).
    """
    items = list(_INTERN_TABLE.items())
    if sample is not None and len(items) > sample:
        stride = max(1, len(items) // sample)
        items = items[::stride]
    for key, term in items:
        cls = key[0]
        if not isinstance(term, cls):
            raise SmtError(
                f"intern table entry {key!r} holds a "
                f"{type(term).__name__}, not a {cls.__name__}"
            )
        if cls is Const:
            _, pycls, value, sort = key
            rebuilt: Term = Const(value, sort)
            if term.value.__class__ is not pycls:
                raise SmtError(
                    f"interned Const carrier drifted: {term.value!r} is not "
                    f"a {pycls.__name__}"
                )
        else:
            rebuilt = cls(*key[1:])
        if rebuilt != term or hash(rebuilt) != hash(term):
            raise SmtError(f"interned term for key {key!r} is inconsistent")
    return len(items)


def _install_cached_hash(cls: type) -> None:
    generated = cls.__hash__

    def __hash__(self):  # noqa: ANN001
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            value = generated(self)
            object.__setattr__(self, "_hash_cache", value)
            return value

    cls.__hash__ = __hash__  # type: ignore[assignment]


def _install_identity_eq(cls: type) -> None:
    generated = cls.__eq__

    def __eq__(self, other):  # noqa: ANN001
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return generated(self, other)

    cls.__eq__ = __eq__  # type: ignore[assignment]


def _unpickle_term(cls: type, args: tuple) -> "Term":
    if cls is Const:
        return interned_const(args[0], args[1])
    return interned(cls, *args)


def _install_reduce(cls: type) -> None:
    names = [f.name for f in dataclass_fields(cls)]

    def __reduce__(self):  # noqa: ANN001
        return (_unpickle_term, (self.__class__, tuple(getattr(self, n) for n in names)))

    cls.__reduce__ = __reduce__  # type: ignore[assignment]


def _install_cached_sort(cls: type) -> None:
    """Cache ``sort`` for classes that derive it from their children."""
    getter = cls.sort.fget  # type: ignore[attr-defined]

    def sort(self):  # noqa: ANN001
        try:
            return object.__getattribute__(self, "_sort_cache")
        except AttributeError:
            value = getter(self)
            object.__setattr__(self, "_sort_cache", value)
            return value

    cls.sort = property(sort)  # type: ignore[assignment]


for _cls in (Var, Const, Add, Mul, Neg, Mod, Lt, Le, Eq, And, Or, Not):
    _install_cached_hash(_cls)
    _install_identity_eq(_cls)
    _install_reduce(_cls)

for _cls in (Add, Mul, Neg):
    _install_cached_sort(_cls)

_seed_booleans()
hash(TRUE)
hash(FALSE)


# ---------------------------------------------------------------------------
# Substitution and evaluation
# ---------------------------------------------------------------------------


def _substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    from . import builders as b

    if isinstance(term, Var):
        repl = mapping.get(term.name)
        if repl is None:
            return term
        if repl.sort != term.sort:
            raise SortError(
                f"substitution for {term.name} has sort {repl.sort}, "
                f"expected {term.sort}"
            )
        return repl
    if isinstance(term, Const):
        return term
    if term.free_var_names().isdisjoint(mapping):
        return term  # prune untouched subtrees (cached free-variable names)
    if isinstance(term, Add):
        return b.mk_add(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Mul):
        return b.mk_mul(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Neg):
        return b.mk_neg(_substitute(term.arg, mapping))
    if isinstance(term, Mod):
        return b.mk_mod(_substitute(term.arg, mapping), term.modulus)
    if isinstance(term, Lt):
        return b.mk_lt(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, Le):
        return b.mk_le(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, Eq):
        return b.mk_eq(_substitute(term.left, mapping), _substitute(term.right, mapping))
    if isinstance(term, And):
        return b.mk_and(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Or):
        return b.mk_or(*(_substitute(a, mapping) for a in term.args))
    if isinstance(term, Not):
        return b.mk_not(_substitute(term.arg, mapping))
    raise SmtError(f"substitute: unknown term {term!r}")


def _evaluate(term: Term, env: Mapping[str, Value]) -> Value:
    if isinstance(term, Var):
        if term.name not in env:
            raise EvaluationError(f"unbound variable {term.name}")
        return env[term.name]
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Add):
        total = _evaluate(term.args[0], env)
        for a in term.args[1:]:
            total = total + _evaluate(a, env)  # type: ignore[operator]
        return total
    if isinstance(term, Mul):
        total = _evaluate(term.args[0], env)
        for a in term.args[1:]:
            total = total * _evaluate(a, env)  # type: ignore[operator]
        return total
    if isinstance(term, Neg):
        return -_evaluate(term.arg, env)  # type: ignore[operator]
    if isinstance(term, Mod):
        return _evaluate(term.arg, env) % term.modulus  # type: ignore[operator]
    if isinstance(term, Lt):
        return _evaluate(term.left, env) < _evaluate(term.right, env)  # type: ignore[operator]
    if isinstance(term, Le):
        return _evaluate(term.left, env) <= _evaluate(term.right, env)  # type: ignore[operator]
    if isinstance(term, Eq):
        return _evaluate(term.left, env) == _evaluate(term.right, env)
    if isinstance(term, And):
        return all(_evaluate(a, env) for a in term.args)
    if isinstance(term, Or):
        return any(_evaluate(a, env) for a in term.args)
    if isinstance(term, Not):
        return not _evaluate(term.arg, env)
    raise SmtError(f"evaluate: unknown term {term!r}")
