"""The tagger conflict-checking pipeline (paper Section 5.2).

Two taggers *conflict* when they can both tag the same node of some
input.  The paper's four-step check, verbatim:

1. **composition** — ``p = p1 ; p2``;
2. **input restriction** — ``p' = restrict p no_tags`` (start from
   worlds with no tags, so any double tag was produced by the pair);
3. **output restriction** — ``p'' = restrict-out p' double_tag``;
4. **check** — the pair conflicts iff ``p''`` is not the empty
   transducer (its domain is non-empty), and every tree in the domain is
   a world they conflict on.

``check_conflict`` returns the verdict together with per-step wall-clock
times — the data series of Figure 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ...automata import Language
from ...transducers import Transducer
from ...trees.tree import Tree
from .taggers import double_tag_language, no_tags_language


@dataclass
class ConflictResult:
    """Verdict and per-step timings (seconds) for one tagger pair."""

    conflict: bool
    compose_time: float
    restrict_in_time: float
    restrict_out_time: float
    check_time: float
    witness: Optional[Tree] = None
    composed_size: tuple[int, int] = (0, 0)
    restricted_size: tuple[int, int] = (0, 0)

    @property
    def total_time(self) -> float:
        return (
            self.compose_time
            + self.restrict_in_time
            + self.restrict_out_time
            + self.check_time
        )


def check_conflict(
    first: Transducer,
    second: Transducer,
    no_tags: Language | None = None,
    double_tag: Language | None = None,
    want_witness: bool = False,
) -> ConflictResult:
    """Run the four-step Section 5.2 pipeline on one pair of taggers."""
    solver = first.solver
    no_tags = no_tags or no_tags_language(solver)
    double_tag = double_tag or double_tag_language(solver)

    t0 = time.perf_counter()
    composed = first.compose(second)
    t1 = time.perf_counter()
    restricted_in = composed.restrict(no_tags)
    t2 = time.perf_counter()
    restricted_out = restricted_in.restrict_out(double_tag)
    t3 = time.perf_counter()
    witness = restricted_out.domain().witness() if want_witness else None
    conflict = (
        witness is not None if want_witness else not restricted_out.is_empty()
    )
    t4 = time.perf_counter()

    return ConflictResult(
        conflict=conflict,
        compose_time=t1 - t0,
        restrict_in_time=t2 - t1,
        restrict_out_time=t3 - t2,
        check_time=t4 - t3,
        witness=witness,
        composed_size=composed.size(),
        restricted_size=restricted_out.size(),
    )
