"""Augmented-reality taggers (paper Section 5.2).

The physical world is a list of elements, each with a list of tags: the
tree type ``World[id : Int, score : Real]`` with

* ``elem(tags, next)`` — one world element (a place, person, ...); ``id``
  is a discrete property, ``score`` a continuous one;
* ``tag(next)`` — one tag attached to an element;
* ``nil`` — end of a list.

A *tagger* is a transducer that walks the element list and attaches at
most one tag to each element whose properties match its guards —
the shape of Layar / Nokia City Lens style apps the paper describes.
The seeded generator reproduces the evaluation's tagger statistics:
1-95 states, ~3 nodes tagged on a random world, at most one tag per
node, non-empty; a small fraction of guards are non-linear (cubic) real
constraints, the source of the slow outliers in Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...automata import Language, STA, rule as sta_rule
from ...smt import builders as smt
from ...smt.solver import Solver
from ...smt.sorts import INT, REAL
from ...smt.terms import Term
from ...transducers import OutApply, OutNode, STTR, Transducer, trule
from ...trees.tree import Tree
from ...trees.types import TreeType, make_tree_type

WORLD: TreeType = make_tree_type(
    "World", [("id", INT), ("score", REAL)], {"nil": 0, "tag": 1, "elem": 2}
)

_ID = smt.mk_var("id", INT)
_SCORE = smt.mk_var("score", REAL)
_ATTR_VARS = (_ID, _SCORE)

NIL_ATTRS = (0, smt.mk_real(0).value)


def world_tree(elements: list[tuple[int, float, int]]) -> Tree:
    """Build a world from ``(id, score, tag_count)`` triples."""
    out = Tree("nil", (0, smt.mk_real(0).value))
    for ident, score, tags in reversed(elements):
        tag_list = Tree("nil", (0, smt.mk_real(0).value))
        for t in range(tags):
            tag_list = Tree("tag", (t, smt.mk_real(0).value), (tag_list,))
        out = Tree("elem", (ident, smt.mk_real(score).value), (tag_list, out))
    return out


def decode_world(tree: Tree) -> list[tuple[int, int]]:
    """Decode a world to ``(id, tag_count)`` pairs."""
    out = []
    while tree.ctor == "elem":
        tags, tree_next = tree.children
        count = 0
        while tags.ctor == "tag":
            count += 1
            (tags,) = tags.children
        out.append((tree.attrs[0], count))
        tree = tree_next
    return out


def _random_guard(rng: random.Random, allow_nonlinear: bool) -> Term:
    """A random *selective* predicate over (id, score).

    Guards are narrow so that a random pair of taggers only rarely tags
    the same element — the paper observes 222 real conflicts out of
    4,950 pairs (~4.5%).
    """
    kind = rng.random()
    if allow_nonlinear and kind < 0.03:
        # the cubic real constraints of the paper's slow outliers
        cube = smt.mk_mul(_SCORE, _SCORE, _SCORE)
        lo = rng.randrange(-27, 20)
        return smt.mk_and(
            smt.mk_lt(smt.mk_real(lo), cube),
            smt.mk_lt(cube, smt.mk_real(lo + rng.randrange(2, 8))),
        )
    if kind < 0.5:
        k = rng.choice([5, 7, 11, 13])
        return smt.mk_eq(smt.mk_mod(_ID, k), smt.mk_int(rng.randrange(k)))
    if kind < 0.85:
        lo = rng.randrange(-60, 55)
        hi = lo + rng.randrange(2, 9)
        return smt.mk_and(
            smt.mk_le(smt.mk_int(lo), _ID), smt.mk_le(_ID, smt.mk_int(hi))
        )
    k = rng.choice([4, 6, 9])
    lo = rng.randrange(-30, 25)
    return smt.mk_and(
        smt.mk_eq(smt.mk_mod(_ID, k), smt.mk_int(rng.randrange(k))),
        smt.mk_le(smt.mk_int(lo), _ID),
        smt.mk_le(_ID, smt.mk_int(lo + rng.randrange(10, 30))),
    )


def _copy_elem(this_state, next_state) -> OutNode:
    """elem[id score](copy tags, continue on rest)."""
    return OutNode("elem", _ATTR_VARS, (OutApply("copy", 0), OutApply(next_state, 1)))


def _tag_elem(this_state, next_state, tag_id: int) -> OutNode:
    """elem[id score](tag[k](copy tags), continue)."""
    tagged = OutNode(
        "tag",
        (smt.mk_int(tag_id), smt.mk_real(0)),
        (OutApply("copy", 0),),
    )
    return OutNode("elem", _ATTR_VARS, (tagged, OutApply(next_state, 1)))


@dataclass
class TaggerSpec:
    """Metadata about a generated tagger (used by the benchmarks)."""

    name: str
    states: int
    tag_id: int


def make_tagger(
    seed: int,
    solver: Solver | None = None,
    max_states: int = 95,
    allow_nonlinear: bool = True,
) -> tuple[Transducer, TaggerSpec]:
    """A seeded random tagger with 1..``max_states`` chained states.

    State ``s_i`` handles the ``i``-th element: if the element matches the
    state's guard (and the state is a tagging state) a tag is prepended;
    the walk then advances to ``s_{i+1}``, with the last state looping.
    Every tagger is deterministic, linear, non-empty, and tags each node
    at most once.
    """
    rng = random.Random(seed)
    n_states = rng.randrange(1, max_states + 1)
    tag_id = rng.randrange(1000)
    # ~3 tagged nodes on average: pick a few tagging positions; the final
    # looping state never tags, so each element gets at most one tag and
    # the total number of tags is bounded by the chain length.
    n_tagging = min(n_states, rng.choice([1, 2, 3, 3, 4]))
    positions = set(rng.sample(range(n_states), n_tagging))
    if n_states > 1:
        positions.discard(n_states - 1)
    rules = []
    for i in range(n_states):
        state = f"s{i}"
        nxt = f"s{min(i + 1, n_states - 1)}"
        tagging = i in positions
        if tagging:
            guard = _random_guard(rng, allow_nonlinear)
            rules.append(
                trule(state, "elem", _tag_elem(state, nxt, tag_id), guard=guard, rank=2)
            )
            rules.append(
                trule(
                    state,
                    "elem",
                    _copy_elem(state, nxt),
                    guard=smt.mk_not(guard),
                    rank=2,
                )
            )
        else:
            rules.append(trule(state, "elem", _copy_elem(state, nxt), rank=2))
        rules.append(
            trule(state, "nil", OutNode("nil", _ATTR_VARS, ()), rank=0)
        )
    # the copy state reproduces tag lists verbatim
    for ctor in WORLD.constructors:
        rules.append(
            trule(
                "copy",
                ctor.name,
                OutNode(
                    ctor.name,
                    _ATTR_VARS,
                    tuple(OutApply("copy", i) for i in range(ctor.rank)),
                ),
                rank=ctor.rank,
            )
        )
    sttr = STTR(f"tagger{seed}", WORLD, WORLD, "s0", tuple(rules))
    spec = TaggerSpec(f"tagger{seed}", n_states, tag_id)
    return Transducer(sttr, solver or Solver()), spec


# ---------------------------------------------------------------------------
# The two restriction languages of the conflict pipeline
# ---------------------------------------------------------------------------


def no_tags_language(solver: Solver | None = None) -> Language:
    """Worlds where no element carries a tag (3 states, as in the paper)."""
    rules = (
        sta_rule("clean", "elem", None, [["notags"], ["clean"]]),
        sta_rule("clean", "nil"),
        sta_rule("notags", "nil"),
    )
    return Language(STA(WORLD, rules), "clean", solver or Solver())


def double_tag_language(solver: Solver | None = None) -> Language:
    """Worlds where some element carries at least two tags (5 states)."""
    rules = (
        sta_rule("conflict", "elem", None, [["two"], []]),
        sta_rule("conflict", "elem", None, [[], ["conflict"]]),
        sta_rule("two", "tag", None, [["one"]]),
        sta_rule("one", "tag", None, [[]]),
    )
    return Language(STA(WORLD, rules), "conflict", solver or Solver())
