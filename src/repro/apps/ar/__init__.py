"""Augmented-reality tagger conflict analysis (paper Section 5.2)."""

from .conflicts import ConflictResult, check_conflict
from .taggers import (
    WORLD,
    TaggerSpec,
    decode_world,
    double_tag_language,
    make_tagger,
    no_tags_language,
    world_tree,
)

__all__ = [
    "ConflictResult",
    "TaggerSpec",
    "WORLD",
    "check_conflict",
    "decode_world",
    "double_tag_language",
    "make_tagger",
    "no_tags_language",
    "world_tree",
]
