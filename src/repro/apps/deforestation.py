"""Deforestation (paper Section 5.3, Figure 7).

Wadler's deforestation eliminates intermediate trees when composing
functional programs; the paper shows transducer composition achieves it
over *infinite* alphabets.  The workload is the paper's: ``map_caesar``
(shift every list element by 5 mod 26) composed with itself ``n`` times,
run over a list of 4,096 random integers.

* ``naive_pipeline`` materializes every intermediate list (n traversals);
* ``deforested`` composes the n transducers into one (one traversal).

Figure 7's claim: naive time grows linearly in n, deforested stays flat.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..smt import builders as smt
from ..smt.solver import Solver
from ..smt.sorts import INT
from ..transducers import OutApply, OutNode, STTR, Transducer, trule
from ..trees.tree import Tree
from ..trees.types import TreeType
from ..trees.unranked import decode_list, encode_list, list_tree_type

ILIST: TreeType = list_tree_type("IList", INT)
_I = smt.mk_var("i", INT)


def map_caesar_sttr() -> STTR:
    """``map_caesar`` from Figure 8: i -> (i + 5) % 26."""
    shifted = smt.mk_mod(smt.mk_add(_I, smt.mk_int(5)), 26)
    return STTR(
        "map_caesar",
        ILIST,
        ILIST,
        "m",
        (
            trule("m", "nil", OutNode("nil", (smt.mk_int(0),), ()), rank=0),
            trule("m", "cons", OutNode("cons", (shifted,), (OutApply("m", 0),)), rank=1),
        ),
    )


def filter_ev_sttr() -> STTR:
    """``filter_ev`` from Figure 8: drop odd elements."""
    even = smt.mk_eq(smt.mk_mod(_I, 2), smt.mk_int(0))
    return STTR(
        "filter_ev",
        ILIST,
        ILIST,
        "f",
        (
            trule("f", "nil", OutNode("nil", (smt.mk_int(0),), ()), rank=0),
            trule("f", "cons", OutNode("cons", (_I,), (OutApply("f", 0),)), guard=even, rank=1),
            trule("f", "cons", OutApply("f", 0), guard=smt.mk_not(even), rank=1),
        ),
    )


def map_caesar(solver: Solver | None = None) -> Transducer:
    return Transducer(map_caesar_sttr(), solver or Solver())


def filter_ev(solver: Solver | None = None) -> Transducer:
    return Transducer(filter_ev_sttr(), solver or Solver())


def reference_caesar(values: list[int], n: int) -> list[int]:
    """The mathematical specification of ``map_caesar`` iterated n times."""
    out = values
    for _ in range(n):
        out = [(v + 5) % 26 for v in out]
    return out


def random_list(length: int = 4096, seed: int = 0) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(0, 1000) for _ in range(length)]


def composed_n(n: int, solver: Solver | None = None) -> Transducer:
    """``map_caesar`` composed with itself ``n`` times (one transducer)."""
    solver = solver or Solver()
    base = map_caesar(solver)
    out = base
    for _ in range(n - 1):
        out = out.compose(base)
    return out


@dataclass
class DeforestationSample:
    """One point of Figure 7."""

    compositions: int
    deforested_seconds: float
    naive_seconds: float
    compose_seconds: float


def run_deforested(trans: Transducer, data: Tree) -> Tree:
    out = trans.apply_one(data)
    assert out is not None
    return out


def run_naive(base: Transducer, data: Tree, n: int) -> Tree:
    out = data
    for _ in range(n):
        out = base.apply_one(out)
        assert out is not None
    return out


def measure(n: int, values: list[int], solver: Solver | None = None) -> DeforestationSample:
    """Time both strategies for n compositions over the given list."""
    solver = solver or Solver()
    base = map_caesar(solver)
    data = encode_list(values, ILIST)

    t0 = time.perf_counter()
    composed = composed_n(n, solver)
    t1 = time.perf_counter()
    out_fast = run_deforested(composed, data)
    t2 = time.perf_counter()
    out_naive = run_naive(base, data, n)
    t3 = time.perf_counter()

    expected = reference_caesar(values, n)
    assert decode_list(out_fast) == expected, "deforested output mismatch"
    assert decode_list(out_naive) == expected, "naive output mismatch"
    return DeforestationSample(n, t2 - t1, t3 - t2, t1 - t0)
