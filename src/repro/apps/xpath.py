"""An XPath fragment compiled to symbolic tree automata.

The paper's related-work section plans "to identify a fragment of XPath
expressible in Fast".  This module realizes that plan for the
navigational core:

* steps:  ``/tag`` (child axis), ``//tag`` (descendant-or-self axis),
  ``*`` (any tag);
* predicates: ``[step...]`` — the node has a match for the relative
  path (existential filter), possibly negated as ``[not(step...)]``.

A query compiles to a :class:`~repro.automata.language.Language` over
the first-child/next-sibling binary encoding
(:mod:`repro.trees.unranked`): the language of documents in which the
query selects **at least one** node.  Classical XPath analyses then fall
out of the automaton algebra:

* satisfiability   — emptiness of the language;
* containment      — language inclusion (``q1`` matches whenever ``q2``
  does);
* disjointness     — emptiness of the intersection.

Alternation earns its keep here: a step with predicates is one rule
whose lookahead conjoins the continuation and every filter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from ..automata.language import Language
from ..automata.sta import STA, STARule, State
from ..smt import builders as smt
from ..smt.solver import DEFAULT_SOLVER, Solver
from ..smt.terms import Term
from ..trees.tree import Tree
from ..trees.types import TreeType
from ..trees.unranked import Unranked, binary_tree_type, encode_unranked

#: The document type: node(first-child, next-sibling) with a label.
DOC: TreeType = binary_tree_type("Doc")

_LABEL = smt.mk_var("label", DOC.field("label").sort)


class XPathError(Exception):
    """Malformed query (outside the supported fragment)."""


@dataclass(frozen=True)
class Step:
    """One location step."""

    axis: str  # "child" | "descendant"
    test: str  # tag name or "*"
    predicates: tuple["Predicate", ...] = ()


@dataclass(frozen=True)
class Predicate:
    """An existential filter ``[path]`` or its negation ``[not(path)]``."""

    steps: tuple[Step, ...]
    negated: bool = False


@dataclass(frozen=True)
class XPathQuery:
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        out = []
        for s in self.steps:
            out.append("//" if s.axis == "descendant" else "/")
            out.append(s.test)
            for p in s.predicates:
                inner = str(XPathQuery(p.steps)).lstrip("/")
                out.append(f"[not({inner})]" if p.negated else f"[{inner}]")
        return "".join(out)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_xpath(text: str) -> XPathQuery:
    """Parse the supported fragment; raises :class:`XPathError`."""
    steps, rest = _parse_steps(text.strip())
    if rest:
        raise XPathError(f"trailing input: {rest!r}")
    if not steps:
        raise XPathError("empty query")
    return XPathQuery(tuple(steps))


def _parse_steps(text: str) -> tuple[list[Step], str]:
    steps: list[Step] = []
    i = 0
    while i < len(text) and text[i] == "/":
        if text.startswith("//", i):
            axis = "descendant"
            i += 2
        else:
            axis = "child"
            i += 1
        j = i
        while j < len(text) and (text[j].isalnum() or text[j] in "_-*"):
            j += 1
        test = text[i:j]
        if not test:
            raise XPathError(f"expected a tag name at offset {i}")
        i = j
        predicates: list[Predicate] = []
        while i < len(text) and text[i] == "[":
            depth = 0
            k = i
            while k < len(text):
                if text[k] == "[":
                    depth += 1
                elif text[k] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            if depth != 0:
                raise XPathError("unbalanced '['")
            inner = text[i + 1 : k].strip()
            negated = False
            if inner.startswith("not(") and inner.endswith(")"):
                negated = True
                inner = inner[4:-1].strip()
            if not inner.startswith("/"):
                inner = "/" + inner
            inner_steps, rest = _parse_steps(inner)
            if rest:
                raise XPathError(f"bad predicate: {inner!r}")
            predicates.append(Predicate(tuple(inner_steps), negated))
            i = k + 1
        steps.append(Step(axis, test, tuple(predicates)))
    return steps, text[i:]


# ---------------------------------------------------------------------------
# Compilation to an STA
# ---------------------------------------------------------------------------


class _Compiler:
    """Compiles queries to states of one growing STA."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self.rules: list[STARule] = []
        self._memo: dict = {}
        self._counter = itertools.count()

    def _guard(self, test: str) -> Term:
        if test == "*":
            return smt.TRUE
        return smt.mk_eq(_LABEL, smt.mk_str(test))

    def language_of(self, query: XPathQuery) -> State:
        """State accepting forests in which the query selects a node."""
        return self._match_steps(tuple(query.steps))

    def _match_steps(self, steps: tuple[Step, ...]) -> State:
        """Forest language: some element in the sibling chain starts a match."""
        key = ("steps", steps)
        if key in self._memo:
            return self._memo[key]
        state = ("q", next(self._counter), str(XPathQuery(steps)))
        self._memo[key] = state
        step, rest = steps[0], steps[1:]

        # Case: the head element matches the step here.
        hit_lookahead_first: list[State] = []
        if rest:
            hit_lookahead_first.append(self._match_steps(rest))
        neg_constraints: list[State] = []
        for p in step.predicates:
            p_state = self._match_steps(p.steps)
            if p.negated:
                neg_constraints.append(self._complement_state(p_state))
            else:
                hit_lookahead_first.append(p_state)
        self.rules.append(
            STARule(
                state,
                "node",
                self._guard(step.test),
                (
                    frozenset(hit_lookahead_first + neg_constraints),
                    frozenset(),
                ),
            )
        )
        # Case: the match starts at a later sibling.
        self.rules.append(
            STARule(state, "node", smt.TRUE, (frozenset(), frozenset([state])))
        )
        if step.axis == "descendant":
            # Case: the match starts deeper inside the head element.
            self.rules.append(
                STARule(state, "node", smt.TRUE, (frozenset([state]), frozenset()))
            )
        return state

    def _complement_state(self, state: State) -> State:
        """The complement of a query state (for ``not(...)`` filters)."""
        key = ("not", state)
        if key in self._memo:
            return self._memo[key]
        from ..automata.boolean_ops import complement

        sta = STA(DOC, tuple(self.rules))
        comp_sta, comp_state = complement(sta, state, self.solver)
        renamed = comp_sta.map_states(lambda s: ("c", id(state), s))
        self.rules.extend(renamed.rules)
        result = ("c", id(state), comp_state)
        self._memo[key] = result
        return result

    def sta(self) -> STA:
        return STA(DOC, tuple(self.rules))


def compile_xpath(
    query: XPathQuery | str, solver: Solver | None = None
) -> Language:
    """Documents (forests) where the query selects at least one node."""
    solver = solver or DEFAULT_SOLVER
    if isinstance(query, str):
        query = parse_xpath(query)
    compiler = _Compiler(solver)
    state = compiler.language_of(query)
    return Language(compiler.sta(), state, solver)


# ---------------------------------------------------------------------------
# The classical XPath analyses
# ---------------------------------------------------------------------------


def selects(query: XPathQuery | str, document: Iterable[Unranked] | Unranked) -> bool:
    """Does the query select any node in the document?"""
    if isinstance(document, Unranked):
        document = [document]
    lang = compile_xpath(query)
    return lang.accepts(encode_unranked(list(document)))


def satisfiable(query: XPathQuery | str, solver: Solver | None = None) -> bool:
    """Is there any document the query matches? (emptiness)"""
    return not compile_xpath(query, solver).is_empty()


def contained_in(
    narrow: XPathQuery | str, wide: XPathQuery | str, solver: Solver | None = None
) -> Optional[Tree]:
    """None if every document matched by ``narrow`` is matched by ``wide``;
    otherwise a witness document (encoded)."""
    solver = solver or DEFAULT_SOLVER
    return compile_xpath(narrow, solver).included_in(compile_xpath(wide, solver))


def disjoint(
    first: XPathQuery | str, second: XPathQuery | str, solver: Solver | None = None
) -> bool:
    """Can no document match both queries?"""
    solver = solver or DEFAULT_SOLVER
    return (
        compile_xpath(first, solver)
        .intersect(compile_xpath(second, solver))
        .is_empty()
    )
