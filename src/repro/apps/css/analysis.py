"""CSS safety analyses (paper Section 5.5).

The paper's example: verify that a CSS program can never produce a node
whose ``color`` and ``background-color`` are both black — unreadable
text.  Tree-logic approaches must enumerate the value alphabet and blow
up; with symbolic transducers the property is a pre-image emptiness
check, and the stronger "the two properties are never *equal*" (which
the paper calls out as infeasible with explicit alphabets) is just an
equality guard between two label variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...automata import Language, STA, rule as sta_rule
from ...smt import builders as smt
from ...smt.solver import Solver
from ...trees.tree import Tree
from .compile import STYLED, _BG, _COLOR, compile_css
from .model import CssProgram


def _containing_language(node_guard, solver: Solver) -> Language:
    """Styled documents containing a node satisfying the guard."""
    rules = (
        sta_rule("bad", "node", node_guard, [[], []]),
        sta_rule("bad", "node", None, [["bad"], []]),
        sta_rule("bad", "node", None, [[], ["bad"]]),
    )
    return Language(STA(STYLED, rules), "bad", solver)


def black_on_black_language(solver: Solver | None = None) -> Language:
    """Documents with a black-text-on-black-background node."""
    solver = solver or Solver()
    guard = smt.mk_and(
        smt.mk_eq(_COLOR, smt.mk_str("black")), smt.mk_eq(_BG, smt.mk_str("black"))
    )
    return _containing_language(guard, solver)


def same_color_language(solver: Solver | None = None) -> Language:
    """Documents where some node's text and background colors coincide.

    The check "too large" for explicit-alphabet tree logic (Section 5.5):
    here it is a single symbolic equality between two attribute fields.
    """
    solver = solver or Solver()
    guard = smt.mk_and(
        smt.mk_eq(_COLOR, _BG),
        smt.mk_ne(_COLOR, smt.mk_str("")),  # both actually set
    )
    return _containing_language(guard, solver)


@dataclass
class CssAnalysisResult:
    """Outcome of a CSS safety check."""

    safe: bool
    bad_input: Optional[Tree]


def check_unreadable_text(
    program: CssProgram,
    solver: Solver | None = None,
    inputs: Language | None = None,
    bad: Language | None = None,
) -> CssAnalysisResult:
    """Can ``C(H)`` contain black-on-black text for some document ``H``?

    ``inputs`` restricts the considered documents (default: documents
    with no inline styles, i.e. all styling comes from the CSS program).
    """
    solver = solver or Solver()
    trans = compile_css(program, solver)
    bad = bad or black_on_black_language(solver)
    inputs = inputs or unstyled_language(solver)
    bad_inputs = trans.pre_image(bad).intersect(inputs)
    witness = bad_inputs.witness()
    return CssAnalysisResult(witness is None, witness)


def unstyled_language(solver: Solver | None = None) -> Language:
    """Documents whose inline ``color``/``bg`` attributes are empty."""
    solver = solver or Solver()
    clean = smt.mk_and(
        smt.mk_eq(_COLOR, smt.mk_str("")), smt.mk_eq(_BG, smt.mk_str(""))
    )
    rules = (
        sta_rule("u", "node", clean, [["u"], ["u"]]),
        sta_rule("u", "nil"),
    )
    return Language(STA(STYLED, rules), "u", solver)
