"""CSS compilation with background inheritance.

:The plain compiler (:mod:`repro.apps.css.compile`) assigns properties
only where rules fire, so "black text inside a black-background
*ancestor*" escapes the black-on-black check.  Visually, though,
``background-color`` paints the whole subtree.  This variant tracks the
**effective** background through the transducer state — the set of
values a CSS program can assign is finite (the constants in the program,
plus "unset"), so inheritance fits in the finite state space while the
*text* color stays symbolic.

The produced transducer writes, at every node, the node's computed
color and its *effective* (possibly inherited) background, making the
black-on-black pre-image check complete for program-styled documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...smt import builders as smt
from ...smt.solver import Solver
from ...smt.terms import Term
from ...transducers import OutApply, OutNode, STTR, Transducer, trule
from ...trees.tree import Tree
from .analysis import black_on_black_language, unstyled_language
from .compile import STYLED, _BG, _COLOR, _TAG, _apply_cascade, _step
from .model import CssProgram

#: Marker for "no background set anywhere up the chain".
UNSET = ""


def compile_css_inherited(
    program: CssProgram, solver: Solver | None = None
) -> Transducer:
    """Like :func:`compile_css`, but the written ``bg`` attribute is the
    *effective* background: the nearest explicitly-set value up the
    ancestor chain (program-assigned values only; inline backgrounds on
    unstyled documents are empty)."""
    solver = solver or Solver()
    tags = sorted(program.mentioned_tags())
    initial = (
        frozenset((i, 0) for i in range(len(program.rules))),
        UNSET,
    )

    rules = []
    done: set = set()
    work = [initial]
    names: dict = {}

    def name_of(state) -> str:
        if state not in names:
            names[state] = f"ictx{len(names)}"
        return names[state]

    while work:
        state = work.pop()
        if state in done:
            continue
        done.add(state)
        matches, inherited_bg = state
        src = name_of(state)
        rules.append(trule(src, "nil", OutNode("nil", (_TAG, _COLOR, _BG), ()), rank=0))

        regions: list[tuple[Term, Optional[str]]] = [
            (smt.mk_eq(_TAG, smt.mk_str(t)), t) for t in tags
        ]
        regions.append(
            (smt.mk_and(*(smt.mk_ne(_TAG, smt.mk_str(t)) for t in tags)), None)
        )
        for guard, tag in regions:
            fired, child_matches = _step(program, matches, tag)
            tag_e, color_e, bg_e = _apply_cascade(program, fired)
            # Effective background: the rule-assigned value if any rule
            # set one here, else the inherited value (if set), else the
            # node's own (inline) attribute.
            if bg_e is not _BG:
                # a rule assigned a constant background here
                assert bg_e.sort.name == "String"
                new_bg = bg_e
                child_bg = _const_value(bg_e)
            elif inherited_bg != UNSET:
                new_bg = smt.mk_str(inherited_bg)
                child_bg = inherited_bg
            else:
                new_bg = _BG  # keep the inline attribute
                child_bg = UNSET
            child_state = (child_matches, child_bg)
            out = OutNode(
                "node",
                (tag_e, color_e, new_bg),
                (OutApply(name_of(child_state), 0), OutApply(src, 1)),
            )
            rules.append(trule(src, "node", out, guard=guard, rank=2))
            if child_state not in done:
                work.append(child_state)

    sttr = STTR("css-inherited", STYLED, STYLED, name_of(initial), tuple(rules))
    return Transducer(sttr, solver)


def _const_value(term: Term) -> str:
    from ...smt.terms import Const

    assert isinstance(term, Const)
    return str(term.value)


@dataclass
class InheritedAnalysisResult:
    safe: bool
    bad_input: Optional[Tree]


def check_unreadable_text_inherited(
    program: CssProgram, solver: Solver | None = None
) -> InheritedAnalysisResult:
    """The black-on-black check with background inheritance modeled."""
    solver = solver or Solver()
    trans = compile_css_inherited(program, solver)
    bad = black_on_black_language(solver)
    inputs = unstyled_language(solver)
    witness = trans.pre_image(bad).intersect(inputs).witness()
    return InheritedAnalysisResult(witness is None, witness)
