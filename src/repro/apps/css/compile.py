"""Compiling CSS programs to symbolic tree transducers (Section 5.5).

Styled documents are binary-encoded trees over

    Styled[tag : String, color : String, bg : String]{nil(0), node(2)}

with ``node(first-child, next-sibling)``.  Applying a CSS program ``C``
to a document ``H`` (the paper's ``C(H)``) is a *deterministic* STTR:

* a transducer state is the set of partial descendant-selector matches
  active at the current depth (pairs ``(rule, position)``);
* moving to the first child extends matches by the current node's tag,
  moving to the next sibling keeps the parent's context — exactly the
  two children of the binary encoding;
* tags partition into the finitely many mentioned by selectors plus the
  symbolic "any other tag" region, so each state emits one rule per
  region with an equality/disequality guard — this is where the symbolic
  alphabet pays off: tree-logic encodings of the value space blow up
  (the paper's motivation), while here ``color`` and ``bg`` stay
  unconstrained label variables.

The cascade is source order: the last firing rule assigning a property
wins; unassigned properties keep the input's (inline) value.
"""

from __future__ import annotations

from typing import Iterable

from ...smt import builders as smt
from ...smt.solver import Solver
from ...smt.sorts import STRING
from ...smt.terms import Term
from ...transducers import OutApply, OutNode, STTR, Transducer, trule
from ...trees.tree import Tree
from ...trees.types import TreeType, make_tree_type
from .model import CssProgram

STYLED: TreeType = make_tree_type(
    "Styled", [("tag", STRING), ("color", STRING), ("bg", STRING)], {"nil": 0, "node": 2}
)

_TAG = smt.mk_var("tag", STRING)
_COLOR = smt.mk_var("color", STRING)
_BG = smt.mk_var("bg", STRING)

#: property name -> attribute variable
_PROPS = {"color": _COLOR, "background-color": _BG}

#: A partial match: (rule index, next selector position).
Match = tuple[int, int]


def element(tag: str, children: Iterable[Tree] = (), color: str = "", bg: str = "") -> Tree:
    """An element as a sibling-chain head with nil continuation."""
    first = Tree("nil", ("", "", ""))
    for c in reversed(list(children)):
        assert c.ctor == "node"
        first = Tree("node", c.attrs, (c.children[0], first))
    return Tree("node", (tag, color, bg), (first, Tree("nil", ("", "", ""))))


def compile_css(program: CssProgram, solver: Solver | None = None) -> Transducer:
    """The STTR computing ``C(H)`` for the given CSS program."""
    solver = solver or Solver()
    tags = sorted(program.mentioned_tags())
    initial: frozenset[Match] = frozenset((i, 0) for i in range(len(program.rules)))

    rules = []
    done: set[frozenset[Match]] = set()
    work: list[frozenset[Match]] = [initial]
    state_names: dict[frozenset[Match], str] = {}

    def name_of(state: frozenset[Match]) -> str:
        if state not in state_names:
            state_names[state] = f"ctx{len(state_names)}"
        return state_names[state]

    while work:
        state = work.pop()
        if state in done:
            continue
        done.add(state)
        src = name_of(state)
        rules.append(
            trule(src, "nil", OutNode("nil", (_TAG, _COLOR, _BG), ()), rank=0)
        )
        # One transducer rule per tag region.
        regions: list[tuple[Term, str | None]] = [
            (smt.mk_eq(_TAG, smt.mk_str(t)), t) for t in tags
        ]
        other_guard = smt.mk_and(
            *(smt.mk_ne(_TAG, smt.mk_str(t)) for t in tags)
        )
        regions.append((other_guard, None))
        for guard, tag in regions:
            fired, child_state = _step(program, state, tag)
            attr_exprs = _apply_cascade(program, fired)
            out = OutNode(
                "node",
                attr_exprs,
                (OutApply(name_of(child_state), 0), OutApply(src, 1)),
            )
            rules.append(trule(src, "node", out, guard=guard, rank=2))
            if child_state not in done:
                work.append(child_state)

    # The initial state also starts fresh matches at every depth because
    # descendant selectors may begin anywhere: _step keeps (i, 0) alive.
    sttr = STTR("css", STYLED, STYLED, name_of(initial), tuple(rules))
    return Transducer(sttr, solver)


def _matches(simple: str, tag: str | None) -> bool:
    if simple == "*":
        return True
    return tag is not None and simple == tag


def _step(
    program: CssProgram, state: frozenset[Match], tag: str | None
) -> tuple[list[int], frozenset[Match]]:
    """Advance the partial matches by a node with the given tag.

    Returns (rules firing on this node, the context for its children).
    ``tag=None`` means "any tag not mentioned by the program".
    """
    fired: list[int] = []
    child: set[Match] = set()
    for i, pos in state:
        chain = program.rules[i].selector.chain
        child.add((i, pos))  # descendant combinator: matches persist
        if _matches(chain[pos], tag):
            if pos + 1 == len(chain):
                fired.append(i)
                # a completed match persists for nested descendants only
                # through its shorter prefixes, which remain in `child`
            else:
                child.add((i, pos + 1))
    fired.sort()
    return fired, frozenset(child)


def _apply_cascade(program: CssProgram, fired: list[int]) -> tuple[Term, Term, Term]:
    """Attribute expressions after applying the firing rules in order."""
    values: dict[str, Term] = {"color": _COLOR, "background-color": _BG}
    for i in fired:  # source order; later assignments override
        for prop, value in program.rules[i].assignments:
            if prop in values:
                values[prop] = smt.mk_str(value)
    return (_TAG, values["color"], values["background-color"])
