"""CSS analysis case study (paper Section 5.5)."""

from .analysis import (
    CssAnalysisResult,
    black_on_black_language,
    check_unreadable_text,
    same_color_language,
    unstyled_language,
)
from .compile import STYLED, compile_css, element
from .inheritance import (
    InheritedAnalysisResult,
    check_unreadable_text_inherited,
    compile_css_inherited,
)
from .model import CssParseError, CssProgram, CssRule, Selector, parse_css

__all__ = [
    "CssAnalysisResult",
    "CssParseError",
    "InheritedAnalysisResult",
    "CssProgram",
    "CssRule",
    "STYLED",
    "Selector",
    "black_on_black_language",
    "check_unreadable_text",
    "check_unreadable_text_inherited",
    "compile_css",
    "compile_css_inherited",
    "element",
    "parse_css",
    "same_color_language",
    "unstyled_language",
]
