"""A small CSS model (paper Section 5.5).

A CSS program is a sequence of rules ``selector { property: value; }``.
We support the fragment the paper sketches: tag selectors, the universal
selector ``*``, and the descendant combinator (``div p``), with the
cascade resolved by source order (later rules win).  The properties of
interest to the analysis are ``color`` and ``background-color``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class CssParseError(Exception):
    """Malformed CSS source."""


@dataclass(frozen=True)
class Selector:
    """A descendant chain of simple selectors, e.g. ``div p`` = ("div","p").

    ``"*"`` matches any tag.
    """

    chain: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.chain:
            raise CssParseError("empty selector")

    def __str__(self) -> str:
        return " ".join(self.chain)


@dataclass(frozen=True)
class CssRule:
    """One rule: a selector plus property assignments (source order kept)."""

    selector: Selector
    assignments: tuple[tuple[str, str], ...]

    def __str__(self) -> str:
        body = " ".join(f"{k}: {v};" for k, v in self.assignments)
        return f"{self.selector} {{ {body} }}"


@dataclass(frozen=True)
class CssProgram:
    """An ordered list of rules (order matters for the cascade)."""

    rules: tuple[CssRule, ...]

    def mentioned_tags(self) -> frozenset[str]:
        return frozenset(
            t for r in self.rules for t in r.selector.chain if t != "*"
        )

    def properties(self) -> frozenset[str]:
        return frozenset(k for r in self.rules for k, _ in r.assignments)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


_RULE_RE = re.compile(r"([^{}]+)\{([^{}]*)\}", re.S)


def parse_css(text: str) -> CssProgram:
    """Parse a CSS program (the supported fragment; raises on nonsense)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    rules: list[CssRule] = []
    consumed = 0
    for m in _RULE_RE.finditer(text):
        if text[consumed : m.start()].strip():
            raise CssParseError(
                f"unexpected text before rule: {text[consumed:m.start()]!r}"
            )
        consumed = m.end()
        selector_src = m.group(1).strip()
        if "," in selector_src:
            raise CssParseError("selector groups (',') are not supported")
        if any(ch in selector_src for ch in ".#>[:"):
            raise CssParseError(
                f"unsupported selector feature in {selector_src!r} "
                f"(tag and descendant selectors only)"
            )
        chain = tuple(selector_src.split())
        assignments: list[tuple[str, str]] = []
        for decl in m.group(2).split(";"):
            decl = decl.strip()
            if not decl:
                continue
            if ":" not in decl:
                raise CssParseError(f"bad declaration {decl!r}")
            prop, value = decl.split(":", 1)
            assignments.append((prop.strip().lower(), value.strip()))
        rules.append(CssRule(Selector(chain), tuple(assignments)))
    if text[consumed:].strip():
        raise CssParseError(f"trailing text: {text[consumed:]!r}")
    return CssProgram(tuple(rules))
