"""Static analysis of functional programs (paper Section 5.4, Figure 8).

The paper's observation: composing ``map_caesar`` and ``filter_ev``
twice is equivalent to deleting every list element — after one
map+filter pass all survivors are even and shifted by 5, so the second
filter removes everything.  The analysis proves it: restrict the
composed transduction to *non-empty* outputs and show the result is the
empty transducer.  "The whole analysis can be done in less than 10 ms."
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..automata import Language, STA, rule as sta_rule
from ..smt.solver import DEFAULT_SOLVER, Solver
from ..trees.tree import Tree
from .deforestation import ILIST, filter_ev, map_caesar


def non_empty_list_language(solver: Solver | None = None) -> Language:
    """Figure 8's ``not_emp_list``: lists with at least one element."""
    return Language(
        STA(ILIST, (sta_rule("ne", "cons", None, [[]]),)), "ne", solver or DEFAULT_SOLVER
    )


@dataclass
class AnalysisResult:
    """Outcome of the Figure 8 analysis."""

    comp2_always_empties: bool
    comp1_can_produce_nonempty: bool
    seconds: float
    witness_comp1: Optional[Tree]


def analyze_map_filter(solver: Solver | None = None) -> AnalysisResult:
    """Run the full Figure 8 analysis; returns the verdicts and wall time."""
    solver = solver or DEFAULT_SOLVER
    t0 = time.perf_counter()
    m = map_caesar(solver)
    f = filter_ev(solver)
    comp = m.compose(f)
    comp2 = comp.compose(comp)
    ne = non_empty_list_language(solver)

    restr2 = comp2.restrict_out(ne)
    comp2_empty = restr2.is_empty()

    restr1 = comp.restrict_out(ne)
    witness1 = restr1.domain().witness()
    elapsed = time.perf_counter() - t0
    return AnalysisResult(
        comp2_always_empties=comp2_empty,
        comp1_can_produce_nonempty=witness1 is not None,
        seconds=elapsed,
        witness_comp1=witness1,
    )
