"""A tolerant HTML parser producing the DOM of :mod:`repro.apps.html.dom`.

Stands in for the HTMLTidy front-end the paper's comparison sanitizer
(HTML Purifier) uses: tag soup in, tree out.  Handles attributes with
single/double/no quotes, void and self-closing elements, comments,
doctypes, basic entities, raw-text elements (``script``/``style``), and
silently recovers from mismatched closing tags.
"""

from __future__ import annotations

import re

from .dom import VOID_ELEMENTS, Element, Node, Text

_TAG_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:-]*")
_ATTR_RE = re.compile(
    r"""\s*([^\s=/>"']+)(?:\s*=\s*("([^"]*)"|'([^']*)'|[^\s>]*))?"""
)
_ENTITIES = {
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
    "&quot;": '"',
    "&#39;": "'",
    "&apos;": "'",
    "&nbsp;": " ",
}

#: Elements whose content is raw text until the matching close tag.
RAW_TEXT_ELEMENTS = frozenset({"script", "style", "textarea", "title"})


def _unescape(text: str) -> str:
    for k, v in _ENTITIES.items():
        text = text.replace(k, v)
    return text


def parse_html(text: str) -> list[Node]:
    """Parse HTML text into a forest of DOM nodes (never raises)."""
    root = Element("#root")
    stack: list[Element] = [root]
    i = 0
    n = len(text)
    while i < n:
        lt = text.find("<", i)
        if lt == -1:
            _append_text(stack[-1], text[i:])
            break
        if lt > i:
            _append_text(stack[-1], text[i:lt])
        if text.startswith("<!--", lt):
            end = text.find("-->", lt + 4)
            i = n if end == -1 else end + 3
            continue
        if text.startswith("<!", lt) or text.startswith("<?", lt):
            end = text.find(">", lt)
            i = n if end == -1 else end + 1
            continue
        if text.startswith("</", lt):
            end = text.find(">", lt)
            if end == -1:
                break
            name = text[lt + 2 : end].strip().lower()
            _close(stack, name)
            i = end + 1
            continue
        m = _TAG_RE.match(text, lt + 1)
        if m is None:
            _append_text(stack[-1], "<")
            i = lt + 1
            continue
        tag = m.group(0).lower()
        j = m.end()
        attrs: list[tuple[str, str]] = []
        self_closing = False
        while j < n:
            if text[j] == ">":
                j += 1
                break
            if text.startswith("/>", j):
                self_closing = True
                j += 2
                break
            am = _ATTR_RE.match(text, j)
            if am is None or am.end() == j:
                j += 1
                continue
            name = am.group(1).lower()
            raw = am.group(2)
            if raw is None:
                value = ""
            elif am.group(3) is not None:
                value = am.group(3)
            elif am.group(4) is not None:
                value = am.group(4)
            else:
                value = raw
            attrs.append((name, _unescape(value)))
            j = am.end()
        element = Element(tag, attrs)
        stack[-1].children.append(element)
        if tag in RAW_TEXT_ELEMENTS and not self_closing:
            close = f"</{tag}"
            end = text.lower().find(close, j)
            if end == -1:
                raw_content = text[j:]
                j = n
            else:
                raw_content = text[j:end]
                gt = text.find(">", end)
                j = n if gt == -1 else gt + 1
            if raw_content:
                element.children.append(Text(raw_content))
            i = j
            continue
        if not self_closing and tag not in VOID_ELEMENTS:
            stack.append(element)
        i = j
    return root.children


def _append_text(parent: Element, data: str) -> None:
    if not data:
        return
    data = _unescape(data)
    # Merge adjacent text nodes so recovery (e.g. a bare '<') does not
    # fragment the DOM.
    if parent.children and isinstance(parent.children[-1], Text):
        parent.children[-1].data += data
    else:
        parent.children.append(Text(data))


def _close(stack: list[Element], name: str) -> None:
    """Close the nearest matching open element (tolerant recovery)."""
    for depth in range(len(stack) - 1, 0, -1):
        if stack[depth].tag == name:
            del stack[depth:]
            return
    # No matching open tag: ignore the stray closer.
