"""HTML sanitizers (paper Sections 2 and 5.1).

Two implementations with the same specification:

* :class:`FastHtmlSanitizer` — the paper's approach: each sanitization
  pass is an independent Fast transformation; the passes are *composed*
  into one transducer (one traversal of the tree, Section 5.1's key
  maintainability/performance point), and the composed transducer is
  *analyzable*: :meth:`FastHtmlSanitizer.analyze` runs the Section 2
  pre-image check that no input can produce an output containing a
  ``script`` node.
* :class:`MonolithicSanitizer` — the baseline shape of HTML Purifier
  and friends: one hand-fused DOM rewrite pass, fast but opaque.

Both remove the configured tags (dropping the subtree, keeping later
siblings) and escape ``'`` and ``"`` with a backslash, exactly the
``remScript``/``esc`` pipeline of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...fast import compile_program, parse_program
from ...smt.solver import DEFAULT_SOLVER, Solver
from ...trees.tree import Tree
from .dom import Element, Node, Text
from .encoding import decode_html, encode_html
from .parser import parse_html

#: Characters escaped by the ``esc`` pass (Figure 2).
ESCAPED_CHARS = ("'", '"')


def fast_sanitizer_source(remove_tags: tuple[str, ...] = ("script",)) -> str:
    """The Figure 2 Fast program, generalized to a set of removed tags."""
    removed = " || ".join(f'(tag = "{t}")' for t in remove_tags)
    kept = " && ".join(f'(tag != "{t}")' for t in remove_tags)
    return f"""
type HtmlE[tag : String]{{nil(0), val(1), attr(2), node(3)}}

lang nodeTree : HtmlE {{
    node(x1, x2, x3) given (attrTree x1) (nodeTree x2) (nodeTree x3)
  | nil() where (tag = "")
}}
lang attrTree : HtmlE {{
    attr(x1, x2) given (valTree x1) (attrTree x2)
  | nil() where (tag = "")
}}
lang valTree : HtmlE {{
    val(x1) where (tag != "") given (valTree x1)
  | nil() where (tag = "")
}}

trans remScript : HtmlE -> HtmlE {{
    node(x1, x2, x3) where ({kept})
      to (node [tag] x1 (remScript x2) (remScript x3))
  | node(x1, x2, x3) where ({removed}) to (remScript x3)
  | nil() to (nil [tag])
}}
trans esc : HtmlE -> HtmlE {{
    node(x1, x2, x3) to (node [tag] (esc x1) (esc x2) (esc x3))
  | attr(x1, x2) to (attr [tag] (esc x1) (esc x2))
  | val(x1) where (tag = "'" || tag = "\\"")
      to (val ["\\\\"] (val [tag] (esc x1)))
  | val(x1) where (tag != "'" && tag != "\\"")
      to (val [tag] (esc x1))
  | nil() to (nil [tag])
}}

def rem_esc : HtmlE -> HtmlE := (compose remScript esc)
def sani : HtmlE -> HtmlE := (restrict rem_esc nodeTree)

lang badOutput : HtmlE {{
    node(x1, x2, x3) where ({removed})
  | node(x1, x2, x3) given (badOutput x2)
  | node(x1, x2, x3) given (badOutput x3)
}}
"""


@dataclass
class SanitizerAnalysis:
    """Result of the Section 2 security analysis."""

    safe: bool
    counterexample: Optional[Tree]


class FastHtmlSanitizer:
    """The composed-transducer sanitizer of Sections 2 and 5.1."""

    def __init__(
        self,
        remove_tags: tuple[str, ...] = ("script",),
        solver: Solver | None = None,
    ) -> None:
        self.remove_tags = remove_tags
        source = fast_sanitizer_source(remove_tags)
        self.env = compile_program(parse_program(source), solver or DEFAULT_SOLVER)
        #: the composed one-pass transducer used for sanitization
        self.rem_esc = self.env.transducers["rem_esc"]
        #: the input-restricted transducer used for analysis
        self.sani = self.env.transducers["sani"]
        #: the two passes, for the uncomposed (two-traversal) comparison
        self.rem_script = self.env.transducers["remScript"]
        self.esc = self.env.transducers["esc"]

    def sanitize_tree(self, tree: Tree) -> Tree:
        out = self.rem_esc.apply_one(tree)
        assert out is not None, "rem_esc is total on HtmlE encodings"
        return out

    def sanitize(self, html: str) -> str:
        """Parse, encode (Figure 3), run the composed transducer, decode."""
        return decode_html(self.sanitize_tree(encode_html(html)))

    def sanitize_two_pass(self, html: str) -> str:
        """The uncomposed pipeline: two full traversals (for comparison)."""
        tree = encode_html(html)
        mid = self.rem_script.apply_one(tree)
        out = self.esc.apply_one(mid)
        return decode_html(out)

    def analyze(self) -> SanitizerAnalysis:
        """Section 2: can any well-formed input produce a removed tag?"""
        bad_output = self.env.langs["badOutput"]
        bad_inputs = self.sani.pre_image(bad_output)
        witness = bad_inputs.witness()
        return SanitizerAnalysis(witness is None, witness)


class MonolithicSanitizer:
    """The baseline: one hand-fused DOM rewriting pass."""

    def __init__(self, remove_tags: tuple[str, ...] = ("script",)) -> None:
        self.remove_tags = frozenset(remove_tags)

    def sanitize(self, html: str) -> str:
        from .dom import serialize

        forest = parse_html(html)
        return serialize(self._clean_forest(forest))

    def _clean_forest(self, nodes: list[Node]) -> list[Node]:
        out: list[Node] = []
        for n in nodes:
            if isinstance(n, Text):
                out.append(Text(self._escape(n.data)))
                continue
            if n.tag in self.remove_tags:
                continue  # drop the subtree, keep later siblings
            out.append(
                Element(
                    n.tag,
                    [(k, self._escape(v)) for k, v in n.attrs],
                    self._clean_forest(n.children),
                )
            )
        return out

    @staticmethod
    def _escape(text: str) -> str:
        for ch in ESCAPED_CHARS:
            text = text.replace(ch, "\\" + ch)
        return text
