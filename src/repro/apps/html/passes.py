"""A library of composable sanitization passes (paper Section 5.1).

"In all the libraries mentioned above HTML sanitization is implemented
as a monolithic function in order to achieve reasonable performance.  In
the case of Fast each sanitization routine can be written as a single
function and all such routines can be then composed preserving the
property of traversing the input HTML only once."

Each pass here is an independent STTR over the Figure 3 ``HtmlE``
encoding; :func:`build_pipeline` composes any selection into a
single-traversal sanitizer, and each pass's safety property is
expressible as a language for the pre-image analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ...automata import Language, STA, rule as sta_rule
from ...smt import builders as smt
from ...smt.solver import DEFAULT_SOLVER, Solver
from ...transducers import OutApply, OutNode, STTR, Transducer, trule
from .encoding import HTML_E

_TAG = smt.mk_var("tag", HTML_E.field("tag").sort)
_V = (_TAG,)

#: Event-handler attributes dropped by :func:`remove_event_handlers`.
EVENT_HANDLER_ATTRS = (
    "onclick",
    "onload",
    "onerror",
    "onmouseover",
    "onfocus",
    "onsubmit",
)


def _ident_rules(state: str = "i") -> list:
    return [
        trule(
            state,
            c.name,
            OutNode(c.name, _V, tuple(OutApply(state, k) for k in range(c.rank))),
            rank=c.rank,
        )
        for c in HTML_E.constructors
    ]


def remove_elements(tags: Sequence[str], name: str = "remElems") -> STTR:
    """Drop every element whose tag is in ``tags`` (subtree and all),
    keeping later siblings — the generalized ``remScript``."""
    removed = smt.disjoin([smt.mk_eq(_TAG, smt.mk_str(t)) for t in tags])
    kept = smt.mk_not(removed)
    rules = _ident_rules() + [
        trule(
            "q",
            "node",
            OutNode("node", _V, (OutApply("i", 0), OutApply("q", 1), OutApply("q", 2))),
            guard=kept,
            rank=3,
        ),
        trule("q", "node", OutApply("q", 2), guard=removed, rank=3),
        trule("q", "nil", OutNode("nil", _V, ()), rank=0),
    ]
    return STTR(name, HTML_E, HTML_E, "q", tuple(rules))


def remove_attributes(names: Sequence[str], name: str = "remAttrs") -> STTR:
    """Drop attributes with the given names (e.g. event handlers)."""
    removed = smt.disjoin([smt.mk_eq(_TAG, smt.mk_str(n)) for n in names])
    kept = smt.mk_not(removed)
    rules = _ident_rules() + [
        trule(
            "q",
            "node",
            OutNode("node", _V, (OutApply("a", 0), OutApply("q", 1), OutApply("q", 2))),
            rank=3,
        ),
        trule("q", "nil", OutNode("nil", _V, ()), rank=0),
        # attribute-list walker: keep or skip each attr node
        trule(
            "a",
            "attr",
            OutNode("attr", _V, (OutApply("i", 0), OutApply("a", 1))),
            guard=kept,
            rank=2,
        ),
        trule("a", "attr", OutApply("a", 1), guard=removed, rank=2),
        trule("a", "nil", OutNode("nil", _V, ()), rank=0),
    ]
    return STTR(name, HTML_E, HTML_E, "q", tuple(rules))


def escape_characters(chars: Sequence[str] = ("'", '"'), name: str = "esc") -> STTR:
    """Prefix each listed character with a backslash (Figure 2's esc)."""
    escaped = smt.disjoin([smt.mk_eq(_TAG, smt.mk_str(c)) for c in chars])
    plain = smt.mk_not(escaped)
    rules = [
        trule(
            "e",
            "node",
            OutNode("node", _V, (OutApply("e", 0), OutApply("e", 1), OutApply("e", 2))),
            rank=3,
        ),
        trule("e", "attr", OutNode("attr", _V, (OutApply("e", 0), OutApply("e", 1))), rank=2),
        trule(
            "e",
            "val",
            OutNode("val", (smt.mk_str("\\"),), (OutNode("val", _V, (OutApply("e", 0),)),)),
            guard=escaped,
            rank=1,
        ),
        trule("e", "val", OutNode("val", _V, (OutApply("e", 0),)), guard=plain, rank=1),
        trule("e", "nil", OutNode("nil", _V, ()), rank=0),
    ]
    return STTR(name, HTML_E, HTML_E, "e", tuple(rules))


def element_free_language(tags: Sequence[str], solver: Solver) -> Language:
    """Trees containing NO element with any of the given tags (for
    type-checking a pipeline's output)."""
    bad = smt.disjoin([smt.mk_eq(_TAG, smt.mk_str(t)) for t in tags])
    good = smt.mk_not(bad)
    rules = (
        sta_rule("ok", "node", good, [["ok"], ["ok"], ["ok"]]),
        sta_rule("ok", "attr", None, [["ok"], ["ok"]]),
        sta_rule("ok", "val", None, [["ok"]]),
        sta_rule("ok", "nil"),
    )
    return Language(STA(HTML_E, rules), "ok", solver)


def attribute_free_language(names: Sequence[str], solver: Solver) -> Language:
    """Trees containing NO attribute with any of the given names."""
    bad = smt.disjoin([smt.mk_eq(_TAG, smt.mk_str(n)) for n in names])
    good = smt.mk_not(bad)
    rules = (
        sta_rule("ok", "node", None, [["ok"], ["ok"], ["ok"]]),
        sta_rule("ok", "attr", good, [["ok"], ["ok"]]),
        sta_rule("ok", "val", None, [["ok"]]),
        sta_rule("ok", "nil"),
    )
    return Language(STA(HTML_E, rules), "ok", solver)


def well_formed_language(solver: Solver) -> Language:
    """The paper's ``nodeTree`` family: correct Figure 3 encodings.

    Verification must restrict to these — outside them, e.g. with an
    element smuggled into the attribute-list position, no sanitizer has
    meaningful obligations (this is precisely why Figure 2 restricts
    ``sani`` to ``nodeTree``).
    """
    empty = smt.mk_eq(_TAG, smt.mk_str(""))
    rules = (
        sta_rule("nodeTree", "node", None, [["attrTree"], ["nodeTree"], ["nodeTree"]]),
        sta_rule("nodeTree", "nil", empty),
        sta_rule("attrTree", "attr", None, [["valTree"], ["attrTree"]]),
        sta_rule("attrTree", "nil", empty),
        sta_rule("valTree", "val", smt.mk_not(empty), [["valTree"]]),
        sta_rule("valTree", "nil", empty),
    )
    return Language(STA(HTML_E, rules), "nodeTree", solver)


@dataclass
class Pipeline:
    """A composed sanitization pipeline plus its verification hooks."""

    transducer: Transducer
    passes: tuple[str, ...]

    def verify(self, safety: Language, inputs: Language | None = None):
        """None if every well-formed input maps into ``safety``; else a
        counterexample input.  ``inputs`` defaults to the well-formed
        encodings (the paper's ``nodeTree`` restriction)."""
        if inputs is None:
            inputs = well_formed_language(self.transducer.solver)
        return self.transducer.type_check(inputs, safety)


def build_pipeline(passes: Iterable[STTR], solver: Solver | None = None) -> Pipeline:
    """Compose independent passes into one single-traversal transducer."""
    solver = solver or DEFAULT_SOLVER
    passes = list(passes)
    if not passes:
        raise ValueError("a pipeline needs at least one pass")
    acc = Transducer(passes[0], solver)
    for p in passes[1:]:
        acc = acc.compose(Transducer(p, solver))
    return Pipeline(acc, tuple(p.name for p in passes))
