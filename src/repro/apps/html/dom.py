"""A small DOM: elements with attributes, text, and children.

The HTML sanitization case study (paper Sections 2 and 5.1) works over
DOM trees: the browser parses HTML into a DOM, sanitizers rewrite the
DOM, and the result is serialized back.  This module is the substrate
standing in for the browser's parser output (HTMLTidy in HTML Purifier's
case — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

#: Elements that never have children and need no closing tag.
VOID_ELEMENTS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)


@dataclass
class Text:
    """A text node."""

    data: str

    def serialize(self) -> str:
        return (
            self.data.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )


@dataclass
class Element:
    """An element node: tag, ordered attributes, children."""

    tag: str
    attrs: list[tuple[str, str]] = field(default_factory=list)
    children: list["Node"] = field(default_factory=list)

    def get(self, name: str) -> str | None:
        for k, v in self.attrs:
            if k == name:
                return v
        return None

    def iter_elements(self) -> Iterator["Element"]:
        yield self
        for c in self.children:
            if isinstance(c, Element):
                yield from c.iter_elements()

    def serialize(self) -> str:
        attrs = "".join(
            f' {k}="{_escape_attr(v)}"' if v else f" {k}" for k, v in self.attrs
        )
        if self.tag in VOID_ELEMENTS:
            return f"<{self.tag}{attrs} />"
        inner = "".join(c.serialize() for c in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


Node = Union[Element, Text]


def _escape_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace('"', "&quot;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def serialize(nodes: list[Node]) -> str:
    """Serialize a forest back to HTML text."""
    return "".join(n.serialize() for n in nodes)


def count_nodes(nodes: list[Node]) -> int:
    total = 0
    stack = list(nodes)
    while stack:
        n = stack.pop()
        total += 1
        if isinstance(n, Element):
            stack.extend(n.children)
    return total
