"""The ``HtmlE`` encoding of DOM trees (paper Section 2, Figure 3).

Each DOM element becomes ``node[tag](x1, x2, x3)`` where ``x1`` encodes
the attribute list, ``x2`` the first child, ``x3`` the next sibling;
each attribute becomes ``attr[name](value, next-attribute)``; each
string a chain of single-character ``val`` nodes; ``nil[""]``
terminates lists, strings, and trees.

Text content follows the paper's Figure 3: a text child is encoded as an
``attr["text"]`` entry in its parent's attribute list (the figure shows
``<script>a</script>`` with ``text -> a`` under ``attr``).  Decoding
places text children before element children; interleavings of text and
elements are therefore normalized — the price of the paper's encoding,
noted in DESIGN.md.
"""

from __future__ import annotations

from ...smt.sorts import STRING
from ...trees.tree import Tree
from ...trees.types import TreeType, make_tree_type
from .dom import Element, Node, Text

#: The paper's tree type: type HtmlE[tag : String]{nil(0), val(1), attr(2), node(3)}
HTML_E: TreeType = make_tree_type(
    "HtmlE", [("tag", STRING)], {"nil": 0, "val": 1, "attr": 2, "node": 3}
)

NIL = Tree("nil", ("",))

#: The attribute name carrying text content (Figure 3).
TEXT_ATTR = "text"


def encode_string(text: str) -> Tree:
    """A string as a chain of single-character ``val`` nodes."""
    out = NIL
    for ch in reversed(text):
        out = Tree("val", (ch,), (out,))
    return out


def decode_string(tree: Tree) -> str:
    chars: list[str] = []
    while tree.ctor == "val":
        chars.append(str(tree.attrs[0]))
        (tree,) = tree.children
    return "".join(chars)


def encode_forest(nodes: list[Node]) -> Tree:
    """Encode a DOM forest into one ``HtmlE`` tree (sibling-chained)."""
    result = NIL
    for n in reversed(nodes):
        if isinstance(n, Text):
            continue  # text is attached to the parent's attribute list
        result = Tree(
            "node",
            (n.tag,),
            (_encode_attrs(n), encode_forest(n.children), result),
        )
    return result


def _encode_attrs(element: Element) -> Tree:
    entries: list[tuple[str, str]] = list(element.attrs)
    for child in element.children:
        if isinstance(child, Text):
            entries.append((TEXT_ATTR, child.data))
    result = NIL
    for name, value in reversed(entries):
        result = Tree("attr", (name,), (encode_string(value), result))
    return result


def decode_forest(tree: Tree) -> list[Node]:
    """Inverse of :func:`encode_forest`."""
    out: list[Node] = []
    while tree.ctor == "node":
        attrs_tree, first_child, next_sibling = tree.children
        attrs: list[tuple[str, str]] = []
        texts: list[str] = []
        while attrs_tree.ctor == "attr":
            name = str(attrs_tree.attrs[0])
            value_tree, attrs_tree = attrs_tree.children
            value = decode_string(value_tree)
            if name == TEXT_ATTR:
                texts.append(value)
            else:
                attrs.append((name, value))
        children: list[Node] = [Text(t) for t in texts]
        children.extend(decode_forest(first_child))
        out.append(Element(str(tree.attrs[0]), attrs, children))
        tree = next_sibling
    return out


def encode_html(html: str) -> Tree:
    """Parse HTML text and encode it (browser parse + Figure 3 encoding)."""
    from .parser import parse_html

    return encode_forest(parse_html(html))


def decode_html(tree: Tree) -> str:
    """Decode an ``HtmlE`` tree and serialize it back to HTML text."""
    from .dom import serialize

    return serialize(decode_forest(tree))
