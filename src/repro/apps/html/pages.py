"""Synthetic web-page generator for the Section 5.1 evaluation.

The paper measures sanitization over 10 real pages from 20 KB (Bing) to
409 KB (Facebook).  Offline, we generate pages across the same size
range with realistic markup density: nested containers, text runs,
attribute-heavy links/images, inline quotes needing escaping, and
embedded ``<script>`` blocks for the sanitizer to remove (DESIGN.md
documents the substitution).
"""

from __future__ import annotations

import random

_WORDS = (
    "the quick brown fox jumps over a lazy dog while symbolic tree "
    "transducers compose sanitize analyze verify encode decode stream"
).split()

_TAGS = ["div", "p", "span", "ul", "li", "b", "i", "em", "section", "article"]

#: The paper's page-size range, smallest (Bing) to largest (Facebook).
PAPER_PAGE_SIZES = [
    20_000,
    40_000,
    60_000,
    90_000,
    120_000,
    160_000,
    210_000,
    270_000,
    340_000,
    409_000,
]


def _text(rng: random.Random, words: int) -> str:
    parts = [rng.choice(_WORDS) for _ in range(words)]
    if rng.random() < 0.2:
        parts.append("it's")  # a quote the esc pass must escape
    return " ".join(parts)


def _element(rng: random.Random, depth: int, budget: list[int], out: list[str]) -> None:
    if budget[0] <= 0:
        return
    roll = rng.random()
    if roll < 0.12:
        chunk = f'<script type="text/javascript">alert("x{rng.randrange(10)}");</script>'
        out.append(chunk)
        budget[0] -= len(chunk)
        return
    if roll < 0.35 or depth >= 6:
        text = _text(rng, rng.randrange(4, 14))
        if rng.random() < 0.4:
            chunk = f'<a href="/p/{rng.randrange(1000)}" title="{_text(rng, 2)}">{text}</a>'
        else:
            chunk = f"<p>{text}</p>"
        out.append(chunk)
        budget[0] -= len(chunk)
        return
    tag = rng.choice(_TAGS)
    open_tag = f'<{tag} class="c{rng.randrange(40)}" id="n{rng.randrange(10_000)}">'
    out.append(open_tag)
    budget[0] -= len(open_tag) + len(tag) + 3
    for _ in range(rng.randrange(2, 6)):
        if budget[0] <= 0:
            break
        _element(rng, depth + 1, budget, out)
    out.append(f"</{tag}>")


def generate_page(size_bytes: int, seed: int = 0) -> str:
    """A synthetic HTML page of roughly ``size_bytes`` bytes."""
    rng = random.Random(seed)
    out: list[str] = ["<html><head><title>synthetic</title></head><body>"]
    budget = [size_bytes - 100]
    while budget[0] > 0:
        _element(rng, 0, budget, out)
    out.append("</body></html>")
    return "".join(out)


def paper_page_suite(seed: int = 0) -> list[tuple[str, str]]:
    """Ten pages matching the paper's size range: [(name, html), ...]."""
    return [
        (f"page_{size // 1000}kb", generate_page(size, seed + i))
        for i, size in enumerate(PAPER_PAGE_SIZES)
    ]
