"""HTML sanitization case study (paper Sections 2 and 5.1)."""

from .dom import Element, Node, Text, serialize
from .encoding import (
    HTML_E,
    decode_forest,
    decode_html,
    decode_string,
    encode_forest,
    encode_html,
    encode_string,
)
from .pages import PAPER_PAGE_SIZES, generate_page, paper_page_suite
from .parser import parse_html
from .passes import (
    EVENT_HANDLER_ATTRS,
    Pipeline,
    attribute_free_language,
    build_pipeline,
    element_free_language,
    escape_characters,
    remove_attributes,
    remove_elements,
    well_formed_language,
)
from .sanitizer import (
    FastHtmlSanitizer,
    MonolithicSanitizer,
    SanitizerAnalysis,
    fast_sanitizer_source,
)

__all__ = [
    "Element",
    "FastHtmlSanitizer",
    "HTML_E",
    "MonolithicSanitizer",
    "Node",
    "PAPER_PAGE_SIZES",
    "SanitizerAnalysis",
    "Text",
    "EVENT_HANDLER_ATTRS",
    "Pipeline",
    "attribute_free_language",
    "build_pipeline",
    "decode_forest",
    "decode_html",
    "decode_string",
    "encode_forest",
    "encode_html",
    "encode_string",
    "fast_sanitizer_source",
    "generate_page",
    "paper_page_suite",
    "parse_html",
    "element_free_language",
    "escape_characters",
    "remove_attributes",
    "remove_elements",
    "serialize",
    "well_formed_language",
]
