"""Evaluation of Fast programs: assertions, counterexamples, reports.

``run_program`` compiles a program and checks every ``assert-true`` /
``assert-false``; failed emptiness assertions come with a witness tree,
mirroring the counterexample the paper's implementation prints for the
buggy sanitizer of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..guard.budget import tick as _tick
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..trees.tree import Tree, format_tree
from . import ast
from .compiler import CompiledProgram, Compiler
from .parser import parse_program


@dataclass
class AssertionResult:
    """Outcome of one assert declaration."""

    pos: ast.Pos
    description: str
    expected: bool
    actual: bool
    counterexample: Optional[Tree] = None

    @property
    def passed(self) -> bool:
        return self.expected == self.actual

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        line = f"[{status}] line {self.pos.line}: {self.description}"
        if not self.passed and self.counterexample is not None:
            line += f"\n       counterexample: {format_tree(self.counterexample)}"
        return line


@dataclass
class ProgramReport:
    """Everything a program run produced."""

    env: CompiledProgram
    assertions: list[AssertionResult] = field(default_factory=list)
    printed: list[Tree] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.passed for a in self.assertions)

    def render(self) -> str:
        lines = [a.render() for a in self.assertions]
        passed = sum(a.passed for a in self.assertions)
        lines.append(f"{passed}/{len(self.assertions)} assertions passed")
        return "\n".join(lines)


def run_program(source: str, solver: Solver | None = None) -> ProgramReport:
    """Parse, compile, and evaluate a Fast program."""
    with obs_tracer.span("run_program"):
        with obs_tracer.span("parse"):
            program = parse_program(source)
        with obs_tracer.span("compile"):
            compiler = Compiler(program, solver)
            env = compiler.compile()
        report = ProgramReport(env)
        for decl in program.decls:
            if isinstance(decl, ast.AssertDecl):
                # Per-assert solver cost: the query-count delta around the check.
                before = env.solver.stats.sat_queries
                with obs_tracer.span("assert", line=decl.pos.line) as sp:
                    result = _check(compiler, decl)
                    sp.set(
                        passed=result.passed,
                        sat_queries=env.solver.stats.sat_queries - before,
                    )
                report.assertions.append(result)
            elif isinstance(decl, ast.PrintDecl):
                # Printing needs a type; infer from the expression when possible.
                with obs_tracer.span("print", line=decl.pos.line):
                    tree = _eval_print(compiler, decl)
                report.printed.append(tree)
    return report


def _eval_print(compiler: Compiler, decl: ast.PrintDecl) -> Tree:
    if isinstance(decl.tree, ast.TreeRef):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    if isinstance(decl.tree, ast.TreeApply):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    if isinstance(decl.tree, ast.TreeWitness):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    raise ValueError("print expects a named tree, apply, or get-witness")


def _check(compiler: Compiler, decl: ast.AssertDecl) -> AssertionResult:
    _tick(kind="fast.assert")
    a = decl.assertion
    counterexample: Optional[Tree] = None
    if isinstance(a, ast.AIsEmptyLang):
        # `is-empty x` is syntactically ambiguous between languages and
        # transductions; resolve by name when the operand is a reference.
        if (
            isinstance(a.lang, ast.LRef)
            and a.lang.name not in compiler.env.langs
            and a.lang.name in compiler.env.transducers
        ):
            a = ast.AIsEmptyTrans(a.pos, ast.TRef(a.lang.pos, a.lang.name))
            return _check(compiler, ast.AssertDecl(decl.pos, decl.expect, a))
        lang = compiler.eval_lang(a.lang)
        witness = lang.witness()
        actual = witness is None
        if actual != decl.expect:
            counterexample = witness
        description = "(is-empty <lang>)"
    elif isinstance(a, ast.AIsEmptyTrans):
        trans = compiler.eval_trans(a.trans)
        dom = trans.domain()
        witness = dom.witness()
        actual = witness is None
        if actual != decl.expect:
            counterexample = witness
        description = "(is-empty <trans>)"
    elif isinstance(a, ast.ALangEq):
        left = compiler.eval_lang(a.left)
        right = compiler.eval_lang(a.right)
        sep = left.separating_tree(right)
        actual = sep is None
        if actual != decl.expect:
            counterexample = sep
        description = "<lang> == <lang>"
    elif isinstance(a, ast.AMember):
        lang = compiler.eval_lang(a.lang)
        tree = compiler.eval_tree(a.tree, lang.tree_type)
        actual = lang.accepts(tree)
        description = "<tree> in <lang>"
    elif isinstance(a, ast.ATypeCheck):
        input_lang = compiler.eval_lang(a.input_lang)
        trans = compiler.eval_trans(a.trans)
        output_lang = compiler.eval_lang(a.output_lang)
        cex = trans.type_check(input_lang, output_lang)
        actual = cex is None
        if actual != decl.expect:
            counterexample = cex
        description = "(type-check <lang> <trans> <lang>)"
    else:
        raise ValueError(f"unknown assertion {a!r}")
    return AssertionResult(
        decl.pos,
        f"{'assert-true' if decl.expect else 'assert-false'} {description}",
        decl.expect,
        actual,
        counterexample,
    )
