"""Evaluation of Fast programs: assertions, counterexamples, reports.

``run_program`` compiles a program and checks every ``assert-true`` /
``assert-false``; failed emptiness assertions come with a witness tree,
mirroring the counterexample the paper's implementation prints for the
buggy sanitizer of Section 2.

``explain_program`` runs the same assertions through governed,
provenance-collecting verdicts (:func:`repro.guard.governed`), so each
answer carries the derivation that produced it — rules fired, decisive
solver queries, witness trees.  The ``fast explain`` CLI subcommand
renders the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..guard import Verdict, governed
from ..guard.budget import tick as _tick
from ..obs import tracer as obs_tracer
from ..smt.solver import Solver
from ..trees.tree import Tree, format_tree
from . import ast
from .compiler import CompiledProgram, Compiler


@dataclass
class AssertionResult:
    """Outcome of one assert declaration."""

    pos: ast.Pos
    description: str
    expected: bool
    actual: bool
    counterexample: Optional[Tree] = None

    @property
    def passed(self) -> bool:
        return self.expected == self.actual

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        line = f"[{status}] line {self.pos.line}: {self.description}"
        if not self.passed and self.counterexample is not None:
            line += f"\n       counterexample: {format_tree(self.counterexample)}"
        return line


@dataclass
class ProgramReport:
    """Everything a program run produced."""

    env: CompiledProgram
    assertions: list[AssertionResult] = field(default_factory=list)
    printed: list[Tree] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.passed for a in self.assertions)

    def render(self) -> str:
        lines = [a.render() for a in self.assertions]
        passed = sum(a.passed for a in self.assertions)
        lines.append(f"{passed}/{len(self.assertions)} assertions passed")
        return "\n".join(lines)


def _artifact_for(source: str, solver: Solver | None):
    """The compiled artifact for ``source``.

    With the default solver this goes through the artifact cache
    (:mod:`repro.exec.cache`); an explicit solver (chaos injection,
    instrumentation) bypasses caching entirely so its environment is
    never shared.
    """
    from ..exec.cache import cached_artifact

    return cached_artifact(source, solver)


def run_program(source: str, solver: Solver | None = None) -> ProgramReport:
    """Parse/fetch, compile, and evaluate a Fast program."""
    with obs_tracer.span("run_program"):
        artifact = _artifact_for(source, solver)
        return run_artifact(artifact)


def run_artifact(artifact) -> ProgramReport:
    """Evaluate the assert/print declarations of a compiled artifact."""
    env = artifact.env
    compiler = artifact.compiler()
    report = ProgramReport(env)
    for decl in artifact.decls:
        if isinstance(decl, ast.AssertDecl):
            # Per-assert solver cost: the query-count delta around the check.
            before = env.solver.stats.sat_queries
            with obs_tracer.span("assert", line=decl.pos.line) as sp:
                result = _check(compiler, decl)
                sp.set(
                    passed=result.passed,
                    sat_queries=env.solver.stats.sat_queries - before,
                )
            report.assertions.append(result)
        elif isinstance(decl, ast.PrintDecl):
            # Printing needs a type; infer from the expression when possible.
            with obs_tracer.span("print", line=decl.pos.line):
                tree = _eval_print(compiler, decl)
            report.printed.append(tree)
    return report


def _eval_print(compiler: Compiler, decl: ast.PrintDecl) -> Tree:
    if isinstance(decl.tree, ast.TreeRef):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    if isinstance(decl.tree, ast.TreeApply):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    if isinstance(decl.tree, ast.TreeWitness):
        return compiler.eval_tree(decl.tree, None)  # type: ignore[arg-type]
    raise ValueError("print expects a named tree, apply, or get-witness")


def _check(compiler: Compiler, decl: ast.AssertDecl) -> AssertionResult:
    _tick(kind="fast.assert")
    a = decl.assertion
    counterexample: Optional[Tree] = None
    if isinstance(a, ast.AIsEmptyLang):
        # `is-empty x` is syntactically ambiguous between languages and
        # transductions; resolve by name when the operand is a reference.
        if (
            isinstance(a.lang, ast.LRef)
            and a.lang.name not in compiler.env.langs
            and a.lang.name in compiler.env.transducers
        ):
            a = ast.AIsEmptyTrans(a.pos, ast.TRef(a.lang.pos, a.lang.name))
            return _check(compiler, ast.AssertDecl(decl.pos, decl.expect, a))
        lang = compiler.eval_lang(a.lang)
        witness = lang.witness()
        actual = witness is None
        if actual != decl.expect:
            counterexample = witness
        description = "(is-empty <lang>)"
    elif isinstance(a, ast.AIsEmptyTrans):
        trans = compiler.eval_trans(a.trans)
        dom = trans.domain()
        witness = dom.witness()
        actual = witness is None
        if actual != decl.expect:
            counterexample = witness
        description = "(is-empty <trans>)"
    elif isinstance(a, ast.ALangEq):
        left = compiler.eval_lang(a.left)
        right = compiler.eval_lang(a.right)
        sep = left.separating_tree(right)
        actual = sep is None
        if actual != decl.expect:
            counterexample = sep
        description = "<lang> == <lang>"
    elif isinstance(a, ast.AMember):
        lang = compiler.eval_lang(a.lang)
        tree = compiler.eval_tree(a.tree, lang.tree_type)
        actual = lang.accepts(tree)
        description = "<tree> in <lang>"
    elif isinstance(a, ast.ATypeCheck):
        input_lang = compiler.eval_lang(a.input_lang)
        trans = compiler.eval_trans(a.trans)
        output_lang = compiler.eval_lang(a.output_lang)
        cex = trans.type_check(input_lang, output_lang)
        actual = cex is None
        if actual != decl.expect:
            counterexample = cex
        description = "(type-check <lang> <trans> <lang>)"
    else:
        raise ValueError(f"unknown assertion {a!r}")
    return AssertionResult(
        decl.pos,
        f"{'assert-true' if decl.expect else 'assert-false'} {description}",
        decl.expect,
        actual,
        counterexample,
    )


# -- explain: governed, provenance-carrying assertion checks -----------------


@dataclass
class ExplainedAssertion:
    """One assertion plus the verdict (and derivation) that decided it."""

    pos: ast.Pos
    description: str
    expected: bool
    verdict: Verdict

    @property
    def passed(self) -> Optional[bool]:
        """True/False when decided; None when the verdict is UNKNOWN."""
        if self.verdict.is_unknown:
            return None
        return self.verdict.is_proved == self.expected

    def render(self) -> str:
        status = {True: "PASS", False: "FAIL", None: "UNKNOWN"}[self.passed]
        lines = [f"[{status}] line {self.pos.line}: {self.description}"]
        for line in self.verdict.explain().splitlines():
            lines.append(f"    {line}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "line": self.pos.line,
            "assertion": self.description,
            "expected": self.expected,
            "passed": self.passed,
            **self.verdict.explain_dict(),
        }


@dataclass
class ExplainReport:
    """Every assertion of a program, explained."""

    env: CompiledProgram
    assertions: list[ExplainedAssertion] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.passed is True for a in self.assertions)

    @property
    def any_unknown(self) -> bool:
        return any(a.passed is None for a in self.assertions)

    def render(self) -> str:
        lines = [a.render() for a in self.assertions]
        passed = sum(a.passed is True for a in self.assertions)
        unknown = sum(a.passed is None for a in self.assertions)
        summary = f"{passed}/{len(self.assertions)} assertions passed"
        if unknown:
            summary += f" ({unknown} unknown)"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"assertions": [a.to_dict() for a in self.assertions]}


def _assertion_plan(
    compiler: Compiler, decl: ast.AssertDecl
) -> tuple[str, Callable[[], Optional[Tree]], str, str]:
    """``(description, witness-style check, proved msg, refuted msg)``.

    Mirrors :func:`_check`'s dispatch, but defers all evaluation into the
    returned callable so it runs *inside* ``governed()`` — under the
    ambient budget and the provenance collector.
    """
    a = decl.assertion
    if isinstance(a, ast.AIsEmptyLang):
        # Same language/transducer ambiguity resolution as _check.
        if (
            isinstance(a.lang, ast.LRef)
            and a.lang.name not in compiler.env.langs
            and a.lang.name in compiler.env.transducers
        ):
            a = ast.AIsEmptyTrans(a.pos, ast.TRef(a.lang.pos, a.lang.name))
        else:
            lang_expr = a.lang
            return (
                "(is-empty <lang>)",
                lambda: compiler.eval_lang(lang_expr).witness(),
                "language is empty",
                "member tree found",
            )
    if isinstance(a, ast.AIsEmptyTrans):
        trans_expr = a.trans
        return (
            "(is-empty <trans>)",
            lambda: compiler.eval_trans(trans_expr).domain().witness(),
            "transduction domain is empty",
            "domain witness found",
        )
    if isinstance(a, ast.ALangEq):
        left_expr, right_expr = a.left, a.right
        return (
            "<lang> == <lang>",
            lambda: compiler.eval_lang(left_expr).separating_tree(
                compiler.eval_lang(right_expr)
            ),
            "languages are equal",
            "separating tree found",
        )
    if isinstance(a, ast.AMember):
        member = a

        def check_member() -> Optional[Tree]:
            lang = compiler.eval_lang(member.lang)
            tree = compiler.eval_tree(member.tree, lang.tree_type)
            return None if lang.accepts(tree) else tree

        return (
            "<tree> in <lang>",
            check_member,
            "tree is a member",
            "tree rejected by the language",
        )
    if isinstance(a, ast.ATypeCheck):
        tc = a

        def check_tc() -> Optional[Tree]:
            input_lang = compiler.eval_lang(tc.input_lang)
            trans = compiler.eval_trans(tc.trans)
            output_lang = compiler.eval_lang(tc.output_lang)
            return trans.type_check(input_lang, output_lang)

        return (
            "(type-check <lang> <trans> <lang>)",
            check_tc,
            "transduction type-checks",
            "counterexample input found",
        )
    raise ValueError(f"unknown assertion {a!r}")


def explain_program(source: str, solver: Solver | None = None) -> ExplainReport:
    """Parse/fetch, compile, and *explain* every assertion of a program.

    Each assertion runs as a governed, provenance-collecting verdict:
    the result records the derivation (rules fired, decisive solver
    queries, witness trees) alongside PASS/FAIL/UNKNOWN.
    """
    with obs_tracer.span("explain_program"):
        artifact = _artifact_for(source, solver)
        return explain_artifact(artifact)


def explain_artifact(artifact) -> ExplainReport:
    """Explain the assertions of a compiled artifact (cache-hit path)."""
    compiler = artifact.compiler()
    report = ExplainReport(artifact.env)
    for decl in artifact.decls:
        if not isinstance(decl, ast.AssertDecl):
            continue
        description, check, proved_msg, refuted_msg = _assertion_plan(
            compiler, decl
        )
        with obs_tracer.span("explain.assert", line=decl.pos.line) as sp:
            verdict = governed(check, proved=proved_msg, refuted=refuted_msg)
            sp.set(outcome=verdict.outcome.value)
        report.assertions.append(
            ExplainedAssertion(
                decl.pos,
                f"{'assert-true' if decl.expect else 'assert-false'} "
                f"{description}",
                decl.expect,
                verdict,
            )
        )
    return report
