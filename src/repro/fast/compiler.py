"""Compiler from Fast ASTs to symbolic automata and transducers.

Compilation model (Section 3 of the paper):

* All plain ``lang`` declarations over one tree type form a single STA —
  they may be mutually recursive, and their names are its states.
* All plain ``trans`` declarations over one ``(in, out)`` type pair form
  a single STTR rule space — mutual recursion through ``(q y)`` calls —
  with a synthesized ``_copy`` identity state interpreting bare ``y``
  outputs.  A transducer's lookahead automaton is the program STA of its
  input type (extended with any ``def``-ined languages used in ``given``
  clauses).
* ``def`` declarations evaluate operation expressions eagerly (compose,
  restrict, pre-image, ...) into :class:`Language` / :class:`Transducer`
  values, exactly the operations of Section 3.5.

Sort checking of ``where``/output expressions happens during lowering;
errors carry source positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..automata import STA, Language, STARule
from ..guard.budget import GuardError, tick as _tick
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..smt import builders as smt
from ..smt.sorts import BASIC_SORTS, BOOL, Sort
from ..smt.terms import Term
from ..transducers import (
    OutApply,
    OutNode,
    STTR,
    Transducer,
    trule,
)
from ..smt.solver import Solver
from ..trees import Tree, TreeType, make_tree_type
from . import ast
from .errors import FastNameError, FastTypeError

#: The synthesized identity state interpreting bare ``y`` in outputs.
COPY_STATE = "_copy"

#: Full front-end compiles (cache misses or uncached paths); warm
#: artifact-cache hits leave this at zero.
_OBS_COMPILES = obs_metrics.counter("fast.compile")


@dataclass
class CompiledProgram:
    """The environment a Fast program evaluates to."""

    types: dict[str, TreeType] = dc_field(default_factory=dict)
    langs: dict[str, Language] = dc_field(default_factory=dict)
    transducers: dict[str, Transducer] = dc_field(default_factory=dict)
    trees: dict[str, Tree] = dc_field(default_factory=dict)
    lang_types: dict[str, str] = dc_field(default_factory=dict)
    solver: Solver = dc_field(default_factory=Solver)


class Compiler:
    def __init__(self, program: ast.Program, solver: Solver | None = None) -> None:
        self.program = program
        self.env = CompiledProgram(solver=solver or Solver())

    @classmethod
    def from_env(cls, env: CompiledProgram) -> "Compiler":
        """A compiler evaluating against an already-built environment.

        This is how cached artifacts (:mod:`repro.exec.artifact`) run
        assert/print declarations without re-lowering anything: all the
        ``eval_*`` methods only consult ``self.env``.
        """
        compiler = cls(ast.Program(()), env.solver)
        compiler.env = env
        return compiler

    # -- entry point ---------------------------------------------------------

    def compile(self) -> CompiledProgram:
        decls = self.program.decls
        _OBS_COMPILES.inc()
        _tick(len(decls), kind="fast.decl")
        with obs_tracer.span("compile.types"):
            for d in decls:
                if isinstance(d, ast.TypeDecl):
                    self._compile_type(d)
        # Group mutually recursive lang/trans declarations up front.
        with obs_tracer.span("compile.langs"):
            self._compile_langs([d for d in decls if isinstance(d, ast.LangDecl)])
        with obs_tracer.span("compile.trans"):
            self._compile_trans_groups(
                [d for d in decls if isinstance(d, ast.TransDecl)]
            )
        with obs_tracer.span("compile.defs"):
            for d in decls:
                if isinstance(d, ast.DefLang):
                    self._register_lang(
                        d.name, self.eval_lang(d.expr), d.type_name, d.pos
                    )
                elif isinstance(d, ast.DefTrans):
                    self._register_trans(d.name, self.eval_trans(d.expr), d.pos)
                elif isinstance(d, ast.TreeDecl):
                    self._compile_tree(d)
        return self.env

    # -- types --------------------------------------------------------------

    def _compile_type(self, d: ast.TypeDecl) -> None:
        if d.name in self.env.types:
            raise FastNameError(f"type {d.name} is defined twice", d.pos)
        fields = []
        for fname, sort_name in d.fields:
            if sort_name not in BASIC_SORTS:
                raise FastTypeError(f"unknown sort {sort_name}", d.pos)
            fields.append((fname, BASIC_SORTS[sort_name]))
        try:
            self.env.types[d.name] = make_tree_type(
                d.name, fields, dict(d.constructors)
            )
        except GuardError:
            # Budget exhaustion / injected faults are degradations, not
            # type errors: wrapping them would turn a clean UNKNOWN into
            # a bogus front-end failure.
            raise
        except Exception as exc:
            raise FastTypeError(f"bad type {d.name}: {exc}", d.pos) from exc

    def _type(self, name: str, pos) -> TreeType:
        if name not in self.env.types:
            raise FastNameError(f"unknown type {name}", pos)
        return self.env.types[name]

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, e: ast.Expr, fields: dict[str, Sort]) -> Term:
        """Lower an Aexp to a label-theory term, checking sorts."""
        if isinstance(e, ast.EConst):
            return smt.mk_const(e.value)
        if isinstance(e, ast.EVar):
            if e.name not in fields:
                raise FastNameError(
                    f"unknown attribute field {e.name}", e.pos
                )
            return smt.mk_var(e.name, fields[e.name])
        if isinstance(e, ast.EOp):
            args = [self.lower_expr(a, fields) for a in e.args]
            return self._apply_op(e.op, args, e.pos)
        raise FastTypeError(f"bad expression {e!r}", e.pos)

    def _apply_op(self, op: str, args: list[Term], pos) -> Term:
        def need(n: int) -> None:
            if len(args) != n:
                raise FastTypeError(f"operator {op} expects {n} arguments", pos)

        try:
            if op == "and":
                return smt.mk_and(*args)
            if op == "or":
                return smt.mk_or(*args)
            if op == "not":
                need(1)
                return smt.mk_not(args[0])
            if op == "neg":
                need(1)
                return smt.mk_neg(args[0])
            if op == "+":
                return smt.mk_add(*args)
            if op == "-":
                need(2)
                return smt.mk_sub(args[0], args[1])
            if op == "*":
                return smt.mk_mul(*args)
            if op == "%":
                need(2)
                modulus = args[1]
                from ..smt.terms import Const

                if not isinstance(modulus, Const) or not isinstance(
                    modulus.value, int
                ):
                    raise FastTypeError(
                        "the modulus of % must be an integer constant", pos
                    )
                return smt.mk_mod(args[0], modulus.value)
            if op == "=":
                need(2)
                return smt.mk_eq(args[0], args[1])
            if op == "!=":
                need(2)
                return smt.mk_ne(args[0], args[1])
            if op == "<":
                need(2)
                return smt.mk_lt(args[0], args[1])
            if op == "<=":
                need(2)
                return smt.mk_le(args[0], args[1])
            if op == ">":
                need(2)
                return smt.mk_gt(args[0], args[1])
            if op == ">=":
                need(2)
                return smt.mk_ge(args[0], args[1])
        except (FastTypeError, GuardError):
            raise
        except Exception as exc:
            raise FastTypeError(f"ill-typed use of {op}: {exc}", pos) from exc
        raise FastTypeError(f"unknown operator {op}", pos)

    # -- lang groups -----------------------------------------------------------

    def _compile_langs(self, decls: list[ast.LangDecl]) -> None:
        by_type: dict[str, list[ast.LangDecl]] = {}
        for d in decls:
            self._type(d.type_name, d.pos)
            by_type.setdefault(d.type_name, []).append(d)
        for type_name, group in by_type.items():
            tree_type = self.env.types[type_name]
            names = {d.name for d in group}
            fields = {f.name: f.sort for f in tree_type.fields}
            rules: list[STARule] = []
            for d in group:
                for r in d.rules:
                    rules.append(self._lower_lang_rule(d, r, tree_type, fields, names))
            sta = STA(tree_type, tuple(rules))
            for d in group:
                if d.name in self.env.langs:
                    raise FastNameError(f"language {d.name} defined twice", d.pos)
                self._register_lang(
                    d.name, Language(sta, d.name, self.env.solver), type_name, d.pos
                )

    def _lower_lang_rule(
        self,
        decl: ast.LangDecl,
        r: ast.LangRule,
        tree_type: TreeType,
        fields: dict[str, Sort],
        group_names: set[str],
    ) -> STARule:
        ctor = self._ctor(tree_type, r.ctor, r.pos)
        if len(r.child_vars) != ctor.rank:
            raise FastTypeError(
                f"{decl.name}: {r.ctor} has rank {ctor.rank}, "
                f"pattern binds {len(r.child_vars)} children",
                r.pos,
            )
        guard = smt.TRUE if r.where is None else self.lower_expr(r.where, fields)
        if guard.sort is not BOOL:
            raise FastTypeError(f"{decl.name}: where-clause is not Boolean", r.pos)
        lookahead = [set() for _ in range(ctor.rank)]
        var_index = {v: i for i, v in enumerate(r.child_vars)}
        for g in r.given:
            if g.var not in var_index:
                raise FastNameError(
                    f"{decl.name}: given references unknown child {g.var}", g.pos
                )
            if g.lang not in group_names:
                raise FastNameError(
                    f"{decl.name}: given references unknown language {g.lang} "
                    f"(lang declarations may only reference lang declarations "
                    f"over the same type)",
                    g.pos,
                )
            lookahead[var_index[g.var]].add(g.lang)
        return STARule(
            decl.name, r.ctor, guard, tuple(frozenset(l) for l in lookahead)
        )

    def _ctor(self, tree_type: TreeType, name: str, pos):
        try:
            return tree_type.constructor(name)
        except GuardError:
            raise
        except Exception as exc:
            raise FastTypeError(str(exc), pos) from exc

    # -- trans groups -----------------------------------------------------------

    def _compile_trans_groups(self, decls: list[ast.TransDecl]) -> None:
        by_types: dict[tuple[str, str], list[ast.TransDecl]] = {}
        for d in decls:
            self._type(d.in_type, d.pos)
            self._type(d.out_type, d.pos)
            by_types.setdefault((d.in_type, d.out_type), []).append(d)
        for (in_name, out_name), group in by_types.items():
            self._compile_trans_group(in_name, out_name, group)

    def _compile_trans_group(
        self, in_name: str, out_name: str, group: list[ast.TransDecl]
    ) -> None:
        in_type = self.env.types[in_name]
        out_type = self.env.types[out_name]
        in_fields = {f.name: f.sort for f in in_type.fields}
        names = {d.name for d in group}
        # The lookahead automaton: the program STA for the input type.
        la_sta = self._lookahead_sta_for(in_name)
        la_states = la_sta.states

        rules = []
        uses_copy = False
        for d in group:
            for tr in d.rules:
                rule, used = self._lower_trans_rule(
                    d, tr, in_type, out_type, in_fields, names, la_states
                )
                rules.append(rule)
                uses_copy = uses_copy or used
        if uses_copy and in_type != out_type:
            raise FastTypeError(
                f"bare child copies require input and output types to "
                f"coincide, got {in_name} -> {out_name}"
            )
        if in_type == out_type:
            # Synthesize the identity state interpreting bare ``y`` outputs.
            for c in in_type.constructors:
                out = OutNode(
                    c.name,
                    tuple(smt.mk_var(f.name, f.sort) for f in in_type.fields),
                    tuple(OutApply(COPY_STATE, i) for i in range(c.rank)),
                )
                rules.append(trule(COPY_STATE, c.name, out, rank=c.rank))
        for d in group:
            if d.name in self.env.transducers:
                raise FastNameError(f"transformation {d.name} defined twice", d.pos)
            sttr = STTR(
                d.name, in_type, out_type, d.name, tuple(rules), lookahead_sta=la_sta
            )
            self._register_trans(d.name, Transducer(sttr, self.env.solver), d.pos)

    def _lookahead_sta_for(self, type_name: str) -> STA:
        """All plain-lang rules over the type (their names are the states)."""
        tree_type = self.env.types[type_name]
        rules: list[STARule] = []
        seen: set = set()
        for name, lang in self.env.langs.items():
            if self.env.lang_types.get(name) == type_name and id(lang.sta) not in seen:
                seen.add(id(lang.sta))
                if lang.sta.tree_type == tree_type:
                    rules.extend(lang.sta.rules)
        return STA(tree_type, tuple(rules))

    def _lower_trans_rule(
        self,
        decl: ast.TransDecl,
        tr: ast.TransRule,
        in_type: TreeType,
        out_type: TreeType,
        in_fields: dict[str, Sort],
        trans_names: set[str],
        la_states,
    ):
        r = tr.base
        ctor = self._ctor(in_type, r.ctor, r.pos)
        if len(r.child_vars) != ctor.rank:
            raise FastTypeError(
                f"{decl.name}: {r.ctor} has rank {ctor.rank}, pattern binds "
                f"{len(r.child_vars)}",
                r.pos,
            )
        guard = smt.TRUE if r.where is None else self.lower_expr(r.where, in_fields)
        if guard.sort is not BOOL:
            raise FastTypeError(f"{decl.name}: where-clause is not Boolean", r.pos)
        var_index = {v: i for i, v in enumerate(r.child_vars)}
        lookahead = [set() for _ in range(ctor.rank)]
        for g in r.given:
            if g.var not in var_index:
                raise FastNameError(
                    f"{decl.name}: given references unknown child {g.var}", g.pos
                )
            if g.lang not in la_states:
                raise FastNameError(
                    f"{decl.name}: given references unknown language {g.lang}",
                    g.pos,
                )
            lookahead[var_index[g.var]].add(g.lang)

        used_copy = False

        def lower_out(o: ast.OutExpr):
            nonlocal used_copy
            if isinstance(o, ast.OVar):
                if o.name not in var_index:
                    raise FastNameError(
                        f"{decl.name}: output references unknown child {o.name}",
                        o.pos,
                    )
                used_copy = True
                return OutApply(COPY_STATE, var_index[o.name])
            if isinstance(o, ast.OCall):
                if o.trans not in trans_names:
                    raise FastNameError(
                        f"{decl.name}: output calls unknown transformation "
                        f"{o.trans} (only trans declarations over the same "
                        f"type pair may be called)",
                        o.pos,
                    )
                if o.var not in var_index:
                    raise FastNameError(
                        f"{decl.name}: output references unknown child {o.var}",
                        o.pos,
                    )
                return OutApply(o.trans, var_index[o.var])
            if isinstance(o, ast.OCons):
                out_ctor = self._ctor(out_type, o.ctor, o.pos)
                if len(o.children) != out_ctor.rank:
                    raise FastTypeError(
                        f"{decl.name}: output {o.ctor} has rank {out_ctor.rank}, "
                        f"got {len(o.children)} children",
                        o.pos,
                    )
                if len(o.attr_exprs) != len(out_type.fields):
                    raise FastTypeError(
                        f"{decl.name}: output {o.ctor} needs "
                        f"{len(out_type.fields)} attribute expression(s)",
                        o.pos,
                    )
                exprs = []
                for f, e in zip(out_type.fields, o.attr_exprs):
                    t = self.lower_expr(e, in_fields)
                    if t.sort != f.sort:
                        raise FastTypeError(
                            f"{decl.name}: attribute {f.name} of {o.ctor} "
                            f"expects {f.sort}, got {t.sort}",
                            e.pos,
                        )
                    exprs.append(t)
                return OutNode(
                    o.ctor, tuple(exprs), tuple(lower_out(c) for c in o.children)
                )
            raise FastTypeError(f"bad output {o!r}", o.pos)

        output = lower_out(tr.output)
        from ..transducers.sttr import STTRRule

        return (
            STTRRule(
                decl.name,
                r.ctor,
                guard,
                tuple(frozenset(l) for l in lookahead),
                output,
            ),
            used_copy,
        )

    # -- registration ----------------------------------------------------------

    def _register_lang(self, name: str, lang: Language, type_name: str, pos) -> None:
        if name in self.env.langs or name in self.env.transducers:
            raise FastNameError(f"{name} is defined twice", pos)
        self.env.langs[name] = lang
        self.env.lang_types[name] = type_name

    def _register_trans(self, name: str, trans: Transducer, pos) -> None:
        if name in self.env.langs or name in self.env.transducers:
            raise FastNameError(f"{name} is defined twice", pos)
        self.env.transducers[name] = trans

    # -- operation evaluation ------------------------------------------------------

    def eval_lang(self, e: ast.LangExpr) -> Language:
        if isinstance(e, ast.LRef):
            if e.name not in self.env.langs:
                raise FastNameError(f"unknown language {e.name}", e.pos)
            return self.env.langs[e.name]
        if isinstance(e, ast.LBinop):
            left = self.eval_lang(e.left)
            right = self.eval_lang(e.right)
            if e.op == "intersect":
                return left.intersect(right)
            if e.op == "union":
                return left.union(right)
            if e.op == "difference":
                return left.difference(right)
        if isinstance(e, ast.LUnop):
            arg = self.eval_lang(e.arg)
            if e.op == "complement":
                return arg.complement()
            if e.op == "minimize":
                return arg.minimize()
        if isinstance(e, ast.LDomain):
            return self.eval_trans(e.trans).domain()
        if isinstance(e, ast.LPreImage):
            trans = self.eval_trans(e.trans)
            lang = self.eval_lang(e.lang)
            return trans.pre_image(lang)
        raise FastTypeError(f"bad language expression {e!r}", e.pos)

    def eval_trans(self, e: ast.TransExpr) -> Transducer:
        if isinstance(e, ast.TRef):
            if e.name not in self.env.transducers:
                raise FastNameError(f"unknown transformation {e.name}", e.pos)
            return self.env.transducers[e.name]
        if isinstance(e, ast.TCompose):
            first = self.eval_trans(e.first)
            second = self.eval_trans(e.second)
            return first.compose(second)
        if isinstance(e, ast.TRestrict):
            trans = self.eval_trans(e.trans)
            lang = self.eval_lang(e.lang)
            if e.kind == "restrict":
                return trans.restrict(lang)
            return trans.restrict_out(lang)
        raise FastTypeError(f"bad transduction expression {e!r}", e.pos)

    def eval_tree(self, e: ast.TreeExpr, tree_type: TreeType) -> Tree:
        if isinstance(e, ast.TreeRef):
            if e.name not in self.env.trees:
                raise FastNameError(f"unknown tree {e.name}", e.pos)
            return self.env.trees[e.name]
        if isinstance(e, ast.TreeCons):
            ctor = self._ctor(tree_type, e.ctor, e.pos)
            if len(e.attr_exprs) != len(tree_type.fields):
                raise FastTypeError(
                    f"{e.ctor} needs {len(tree_type.fields)} attribute(s), "
                    f"got {len(e.attr_exprs)}",
                    e.pos,
                )
            attrs = []
            for f, ae in zip(tree_type.fields, e.attr_exprs):
                t = self.lower_expr(ae, {})
                from ..smt.terms import Const

                if not isinstance(t, Const):
                    raise FastTypeError(
                        "tree attribute expressions must be constant", ae.pos
                    )
                attrs.append(t.value)
            if len(attrs) != len(tree_type.fields):
                raise FastTypeError(
                    f"{e.ctor} needs {len(tree_type.fields)} attribute(s)", e.pos
                )
            children = tuple(self.eval_tree(c, tree_type) for c in e.children)
            if len(children) != ctor.rank:
                raise FastTypeError(
                    f"{e.ctor} has rank {ctor.rank}, got {len(children)}", e.pos
                )
            return Tree(e.ctor, tuple(attrs), children)
        if isinstance(e, ast.TreeApply):
            trans = self.eval_trans(e.trans)
            arg = self.eval_tree(e.tree, trans.input_type)
            out = trans.apply_one(arg)
            if out is None:
                raise FastTypeError("apply: the input is outside the domain", e.pos)
            return out
        if isinstance(e, ast.TreeWitness):
            lang = self.eval_lang(e.lang)
            w = lang.witness()
            if w is None:
                raise FastTypeError("get-witness: the language is empty", e.pos)
            return w
        raise FastTypeError(f"bad tree expression {e!r}", e.pos)

    def _compile_tree(self, d: ast.TreeDecl) -> None:
        tree_type = self._type(d.type_name, d.pos)
        tree = self.eval_tree(d.expr, tree_type)
        tree_type.validate(tree)
        if d.name in self.env.trees:
            raise FastNameError(f"tree {d.name} defined twice", d.pos)
        self.env.trees[d.name] = tree


def compile_program(program: ast.Program, solver: Solver | None = None) -> CompiledProgram:
    """Compile a parsed Fast program into its environment."""
    return Compiler(program, solver).compile()
