"""Recursive-descent parser for Fast (paper Figure 4).

Attribute expressions accept both the paper's parenthesized infix style
(``(tag != "script")``, ``(tag = "'" || tag = "\"")``) and a prefix
style (``(= tag "script")``); a Pratt parser with the usual precedence
handles the infix part.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from . import ast
from ..obs import metrics as obs_metrics
from .lexer import FastParseDepthError, FastSyntaxError, Token, tokenize

#: Whole-program parses.  The cache-smoke CI job asserts this stays at
#: zero on a warm artifact cache.
_OBS_PARSES = obs_metrics.counter("fast.parse")

#: Default cap on expression nesting.  Recursive descent spends up to
#: ~9 Python frames per parenthesis level (the Pratt precedence chain),
#: so the cap must keep ``depth * 9`` comfortably under the interpreter
#: recursion limit (~1000) — 64 leaves headroom even under pytest while
#: being far deeper than any human-written Fast program.
DEFAULT_MAX_DEPTH = 64

#: Infix binary operators by precedence level (low to high).
_PRECEDENCE = [
    {"or", "||"},
    {"and", "&&"},
    {"=", "==", "!=", "<", ">", "<=", ">="},
    {"+", "-"},
    {"*", "%"},
]

_PREFIXABLE_OPS = {
    "+",
    "-",
    "*",
    "%",
    "<",
    ">",
    "<=",
    ">=",
    "=",
    "==",
    "!=",
    "and",
    "or",
    "not",
    "&&",
    "||",
    "!",
}

_LANG_OPS = {
    "intersect",
    "union",
    "complement",
    "difference",
    "minimize",
    "domain",
    "pre-image",
}
_TRANS_OPS = {"compose", "restrict", "restrict-out"}
_TREE_OPS = {"apply", "get-witness"}


class Parser:
    def __init__(self, text: str, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.max_depth = max_depth
        self._depth = 0

    # -- token plumbing ----------------------------------------------------

    def _enter(self) -> None:
        """Charge one nesting level; typed error instead of RecursionError."""
        if self._depth >= self.max_depth:
            tok = self.peek()
            raise FastParseDepthError(
                f"expression nesting exceeds max_depth={self.max_depth}",
                tok.line,
                tok.column,
            )
        self._depth += 1

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def error(self, message: str, tok: Optional[Token] = None) -> FastSyntaxError:
        tok = tok or self.peek()
        return FastSyntaxError(message, tok.line, tok.column)

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise self.error(f"expected {want!r}, found {tok.value!r}")
        return self.next()

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def pos_of(self, tok: Token) -> ast.Pos:
        return ast.Pos(tok.line, tok.column)

    # -- program -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: list[ast.Decl] = []
        while not self.at("EOF"):
            decls.append(self.parse_decl())
        return ast.Program(tuple(decls))

    def parse_decl(self) -> ast.Decl:
        tok = self.peek()
        if tok.kind == "KW" and tok.value == "type":
            return self.parse_type_decl()
        if tok.kind == "KW" and tok.value == "lang":
            return self.parse_lang_decl()
        if tok.kind == "KW" and tok.value == "trans":
            return self.parse_trans_decl()
        if tok.kind == "KW" and tok.value == "def":
            return self.parse_def()
        if tok.kind == "KW" and tok.value == "tree":
            return self.parse_tree_decl()
        if tok.kind == "KW" and tok.value in ("assert-true", "assert-false"):
            return self.parse_assert()
        if tok.kind == "KW" and tok.value == "print":
            self.next()
            expr = self.parse_tree_expr()
            return ast.PrintDecl(self.pos_of(tok), expr)
        raise self.error(f"expected a declaration, found {tok.value!r}")

    # -- type --------------------------------------------------------------

    def parse_type_decl(self) -> ast.TypeDecl:
        start = self.expect("KW", "type")
        name = self.expect("ID").value
        fields: list[tuple[str, str]] = []
        if self.at("OP", "["):
            self.next()
            while not self.at("OP", "]"):
                fname = self.expect("ID").value
                self.expect("OP", ":")
                sort = self.expect("ID").value
                fields.append((fname, sort))
                if self.at("OP", ","):
                    self.next()
            self.expect("OP", "]")
        self.expect("OP", "{")
        ctors: list[tuple[str, int]] = []
        while not self.at("OP", "}"):
            cname = self.expect("ID").value
            self.expect("OP", "(")
            rank = int(self.expect("INT").value)
            self.expect("OP", ")")
            ctors.append((cname, rank))
            if self.at("OP", ","):
                self.next()
        self.expect("OP", "}")
        return ast.TypeDecl(self.pos_of(start), name, tuple(fields), tuple(ctors))

    # -- lang --------------------------------------------------------------

    def parse_lang_decl(self) -> ast.LangDecl:
        start = self.expect("KW", "lang")
        name = self.expect("ID").value
        self.expect("OP", ":")
        type_name = self.expect("ID").value
        self.expect("OP", "{")
        rules = [self.parse_lang_rule()]
        while self.at("OP", "|"):
            self.next()
            rules.append(self.parse_lang_rule())
        self.expect("OP", "}")
        return ast.LangDecl(self.pos_of(start), name, type_name, tuple(rules))

    def parse_lang_rule(self) -> ast.LangRule:
        start = self.peek()
        ctor = self.expect("ID").value
        child_vars: list[str] = []
        self.expect("OP", "(")
        while not self.at("OP", ")"):
            child_vars.append(self.expect("ID").value)
            if self.at("OP", ","):
                self.next()
        self.expect("OP", ")")
        where = None
        if self.at("KW", "where"):
            self.next()
            where = self.parse_expr()
        given: list[ast.Given] = []
        if self.at("KW", "given"):
            self.next()
            while self.at("OP", "("):
                gtok = self.next()
                lang = self.expect("ID").value
                var = self.expect("ID").value
                self.expect("OP", ")")
                given.append(ast.Given(lang, var, self.pos_of(gtok)))
        return ast.LangRule(
            ctor, tuple(child_vars), where, tuple(given), self.pos_of(start)
        )

    # -- trans -------------------------------------------------------------

    def parse_trans_decl(self) -> ast.TransDecl:
        start = self.expect("KW", "trans")
        name = self.expect("ID").value
        self.expect("OP", ":")
        in_type = self.expect("ID").value
        self.expect("OP", "->")
        out_type = self.expect("ID").value
        self.expect("OP", "{")
        rules = [self.parse_trans_rule()]
        while self.at("OP", "|"):
            self.next()
            rules.append(self.parse_trans_rule())
        self.expect("OP", "}")
        return ast.TransDecl(
            self.pos_of(start), name, in_type, out_type, tuple(rules)
        )

    def parse_trans_rule(self) -> ast.TransRule:
        base = self.parse_lang_rule()
        self.expect("KW", "to")
        output = self.parse_out_expr()
        return ast.TransRule(base, output)

    def parse_out_expr(self) -> ast.OutExpr:
        self._enter()
        try:
            return self._parse_out_expr()
        finally:
            self._depth -= 1

    def _parse_out_expr(self) -> ast.OutExpr:
        tok = self.peek()
        if tok.kind == "ID":
            self.next()
            return ast.OVar(self.pos_of(tok), tok.value)
        if tok.kind == "OP" and tok.value == "(":
            self.next()
            head = self.expect("ID").value
            if self.at("OP", "["):
                # (c [e1 .. em] t1 .. tn)
                self.next()
                attrs: list[ast.Expr] = []
                while not self.at("OP", "]"):
                    attrs.append(self.parse_expr())
                    if self.at("OP", ","):
                        self.next()
                self.expect("OP", "]")
                children: list[ast.OutExpr] = []
                while not self.at("OP", ")"):
                    children.append(self.parse_out_expr())
                    if self.at("OP", ","):
                        self.next()
                self.expect("OP", ")")
                return ast.OCons(
                    self.pos_of(tok), head, tuple(attrs), tuple(children)
                )
            # (q y)
            var = self.expect("ID").value
            self.expect("OP", ")")
            return ast.OCall(self.pos_of(tok), head, var)
        raise self.error("expected an output term")

    # -- def ----------------------------------------------------------------

    def parse_def(self) -> ast.Decl:
        start = self.expect("KW", "def")
        name = self.expect("ID").value
        self.expect("OP", ":")
        first_type = self.expect("ID").value
        if self.at("OP", "->"):
            self.next()
            out_type = self.expect("ID").value
            self.expect("OP", ":=")
            expr = self.parse_trans_expr()
            return ast.DefTrans(self.pos_of(start), name, first_type, out_type, expr)
        self.expect("OP", ":=")
        expr = self.parse_lang_expr()
        return ast.DefLang(self.pos_of(start), name, first_type, expr)

    # -- operation expressions ----------------------------------------------

    def parse_lang_expr(self) -> ast.LangExpr:
        self._enter()
        try:
            return self._parse_lang_expr()
        finally:
            self._depth -= 1

    def _parse_lang_expr(self) -> ast.LangExpr:
        tok = self.peek()
        if tok.kind == "ID":
            self.next()
            return ast.LRef(self.pos_of(tok), tok.value)
        self.expect("OP", "(")
        op = self.expect("ID").value
        pos = self.pos_of(tok)
        if op in ("intersect", "union", "difference"):
            left = self.parse_lang_expr()
            right = self.parse_lang_expr()
            self.expect("OP", ")")
            return ast.LBinop(pos, op, left, right)
        if op in ("complement", "minimize"):
            arg = self.parse_lang_expr()
            self.expect("OP", ")")
            return ast.LUnop(pos, op, arg)
        if op == "domain":
            trans = self.parse_trans_expr()
            self.expect("OP", ")")
            return ast.LDomain(pos, trans)
        if op == "pre-image":
            trans = self.parse_trans_expr()
            lang = self.parse_lang_expr()
            self.expect("OP", ")")
            return ast.LPreImage(pos, trans, lang)
        raise self.error(f"unknown language operation {op!r}", tok)

    def parse_trans_expr(self) -> ast.TransExpr:
        self._enter()
        try:
            return self._parse_trans_expr()
        finally:
            self._depth -= 1

    def _parse_trans_expr(self) -> ast.TransExpr:
        tok = self.peek()
        if tok.kind == "ID":
            self.next()
            return ast.TRef(self.pos_of(tok), tok.value)
        self.expect("OP", "(")
        op = self.expect("ID").value
        pos = self.pos_of(tok)
        if op == "compose":
            first = self.parse_trans_expr()
            second = self.parse_trans_expr()
            self.expect("OP", ")")
            return ast.TCompose(pos, first, second)
        if op in ("restrict", "restrict-out"):
            trans = self.parse_trans_expr()
            lang = self.parse_lang_expr()
            self.expect("OP", ")")
            return ast.TRestrict(pos, op, trans, lang)
        raise self.error(f"unknown transduction operation {op!r}", tok)

    # -- tree expressions -----------------------------------------------------

    def parse_tree_decl(self) -> ast.TreeDecl:
        start = self.expect("KW", "tree")
        name = self.expect("ID").value
        self.expect("OP", ":")
        type_name = self.expect("ID").value
        self.expect("OP", ":=")
        expr = self.parse_tree_expr()
        return ast.TreeDecl(self.pos_of(start), name, type_name, expr)

    def parse_tree_expr(self) -> ast.TreeExpr:
        self._enter()
        try:
            return self._parse_tree_expr()
        finally:
            self._depth -= 1

    def _parse_tree_expr(self) -> ast.TreeExpr:
        tok = self.peek()
        if tok.kind == "ID":
            self.next()
            return ast.TreeRef(self.pos_of(tok), tok.value)
        self.expect("OP", "(")
        pos = self.pos_of(tok)
        head = self.expect("ID").value
        if head == "apply":
            trans = self.parse_trans_expr()
            tree = self.parse_tree_expr()
            self.expect("OP", ")")
            return ast.TreeApply(pos, trans, tree)
        if head == "get-witness":
            lang = self.parse_lang_expr()
            self.expect("OP", ")")
            return ast.TreeWitness(pos, lang)
        # (c [e*] tr*)
        attrs: list[ast.Expr] = []
        if self.at("OP", "["):
            self.next()
            while not self.at("OP", "]"):
                attrs.append(self.parse_expr())
                if self.at("OP", ","):
                    self.next()
            self.expect("OP", "]")
        children: list[ast.TreeExpr] = []
        while not self.at("OP", ")"):
            children.append(self.parse_tree_expr())
            if self.at("OP", ","):
                self.next()
        self.expect("OP", ")")
        return ast.TreeCons(pos, head, tuple(attrs), tuple(children))

    # -- assertions ---------------------------------------------------------

    def parse_assert(self) -> ast.AssertDecl:
        start = self.next()
        expect_true = start.value == "assert-true"
        assertion = self.parse_assertion()
        return ast.AssertDecl(self.pos_of(start), expect_true, assertion)

    def parse_assertion(self) -> ast.Assertion:
        tok = self.peek()
        pos = self.pos_of(tok)
        if self.at("OP", "("):
            save = self.pos
            self.next()
            head = self.peek()
            if head.kind == "ID" and head.value == "is-empty":
                self.next()
                # lang or trans: try lang first, fall back to trans.
                save2 = self.pos
                try:
                    lang = self.parse_lang_expr()
                    self.expect("OP", ")")
                    return ast.AIsEmptyLang(pos, lang)
                except FastSyntaxError:
                    self.pos = save2
                    trans = self.parse_trans_expr()
                    self.expect("OP", ")")
                    return ast.AIsEmptyTrans(pos, trans)
            if head.kind == "ID" and head.value == "type-check":
                self.next()
                l1 = self.parse_lang_expr()
                t = self.parse_trans_expr()
                l2 = self.parse_lang_expr()
                self.expect("OP", ")")
                return ast.ATypeCheck(pos, l1, t, l2)
            self.pos = save
        # tree-in-lang:  TR in L   |   lang equality: L == L
        save = self.pos
        try:
            tree = self.parse_tree_expr()
            if self.at("KW", "in"):
                self.next()
                lang = self.parse_lang_expr()
                return ast.AMember(pos, tree, lang)
            self.pos = save
        except FastSyntaxError:
            self.pos = save
        left = self.parse_lang_expr()
        self.expect("OP", "==")
        right = self.parse_lang_expr()
        return ast.ALangEq(pos, left, right)

    # -- attribute expressions (Pratt parser + prefix form) -------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_infix(0)

    def _parse_infix(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_atom()
        left = self._parse_infix(level + 1)
        ops = _PRECEDENCE[level]
        while (self.peek().kind in ("OP", "KW")) and self.peek().value in ops:
            op_tok = self.next()
            right = self._parse_infix(level + 1)
            left = ast.EOp(
                ast.Pos(op_tok.line, op_tok.column),
                _canon_op(op_tok.value),
                (left, right),
            )
        return left

    def _parse_atom(self) -> ast.Expr:
        self._enter()
        try:
            return self._parse_atom_inner()
        finally:
            self._depth -= 1

    def _parse_atom_inner(self) -> ast.Expr:
        tok = self.peek()
        pos = ast.Pos(tok.line, tok.column)
        if tok.kind == "INT":
            self.next()
            return ast.EConst(pos, int(tok.value))
        if tok.kind == "REAL":
            self.next()
            return ast.EConst(pos, Fraction(tok.value))
        if tok.kind == "STRING":
            self.next()
            return ast.EConst(pos, tok.value)
        if tok.kind == "KW" and tok.value in ("true", "false"):
            self.next()
            return ast.EConst(pos, tok.value == "true")
        if tok.kind == "KW" and tok.value == "not":
            self.next()
            return ast.EOp(pos, "not", (self._parse_atom(),))
        if tok.kind == "OP" and tok.value == "!":
            self.next()
            return ast.EOp(pos, "not", (self._parse_atom(),))
        if tok.kind == "OP" and tok.value == "-":
            self.next()
            return ast.EOp(pos, "neg", (self._parse_atom(),))
        if tok.kind == "ID":
            self.next()
            return ast.EVar(pos, tok.value)
        if tok.kind == "OP" and tok.value == "(":
            self.next()
            nxt = self.peek()
            if (nxt.kind in ("OP", "KW")) and nxt.value in _PREFIXABLE_OPS:
                # prefix form: (op e1 e2 ...)
                self.next()
                args: list[ast.Expr] = []
                while not self.at("OP", ")"):
                    args.append(self.parse_expr())
                    if self.at("OP", ","):
                        self.next()
                self.expect("OP", ")")
                op = "not" if nxt.value == "!" else _canon_op(nxt.value)
                return ast.EOp(pos, op, tuple(args))
            inner = self.parse_expr()
            self.expect("OP", ")")
            return inner
        raise self.error(f"expected an expression, found {tok.value!r}")


def _canon_op(op: str) -> str:
    return {"||": "or", "&&": "and", "==": "="}.get(op, op)


def parse_program(text: str, max_depth: int = DEFAULT_MAX_DEPTH) -> ast.Program:
    """Parse a Fast program from source text."""
    _OBS_PARSES.inc()
    return Parser(text, max_depth=max_depth).parse_program()


def parse_expr(text: str) -> ast.Expr:
    """Parse a single attribute expression (for tests and the REPL)."""
    p = Parser(text)
    e = p.parse_expr()
    p.expect("EOF")
    return e
