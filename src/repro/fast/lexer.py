"""Lexer for the Fast surface language (paper Figure 4).

The concrete syntax of the paper uses some typographic operators
(``≠``, ``∨``, ``∧``, ``∈``); we accept those plus ASCII spellings
(``!=``, ``or``/``||``, ``and``/``&&``, ``in``).  Comments run from
``//`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseDepthError, ReproError, SourceLocation


class FastSyntaxError(ReproError):
    """A lexical or syntactic error in a Fast program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(
            f"{message} (line {line}, column {column})",
            location=SourceLocation(line=line, column=column),
        )
        self.line = line
        self.column = column


class FastParseDepthError(ParseDepthError, FastSyntaxError):
    """Expression nesting in a Fast program exceeded the parser's cap."""


@dataclass(frozen=True)
class Token:
    kind: str  # ID, INT, REAL, STRING, OP, KW, EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


KEYWORDS = {
    "type",
    "lang",
    "trans",
    "def",
    "tree",
    "where",
    "given",
    "to",
    "assert-true",
    "assert-false",
    "print",
    "true",
    "false",
    "in",
    "and",
    "or",
    "not",
}

# Multi-character operators first (maximal munch).
OPERATORS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "->",
    ":=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "%",
    "|",
    ",",
    ":",
    "!",
]

UNICODE_OPS = {
    "≠": "!=",  # ≠
    "∧": "&&",  # ∧
    "∨": "||",  # ∨
    "∈": "in",  # ∈
    "¬": "!",  # ¬
}


def tokenize(text: str) -> list[Token]:
    """Tokenize a Fast program; raises :class:`FastSyntaxError`."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(text)

    def error(msg: str) -> FastSyntaxError:
        return FastSyntaxError(msg, line, col)

    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in UNICODE_OPS:
            mapped = UNICODE_OPS[ch]
            kind = "KW" if mapped == "in" else "OP"
            tokens.append(Token(kind, mapped, line, col))
            i += 1
            col += 1
            continue
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            out: list[str] = []
            while True:
                if i >= n:
                    raise FastSyntaxError("unterminated string", start_line, start_col)
                c = text[i]
                if c == "\n":
                    raise FastSyntaxError("newline in string", start_line, start_col)
                i += 1
                col += 1
                if c == '"':
                    break
                if c == "\\":
                    if i >= n:
                        raise FastSyntaxError("dangling escape", line, col)
                    esc = text[i]
                    i += 1
                    col += 1
                    out.append({"n": "\n", "t": "\t", "r": "\r", "0": "\0"}.get(esc, esc))
                else:
                    out.append(c)
            tokens.append(Token("STRING", "".join(out), start_line, start_col))
            continue
        if ch.isdigit():
            start_col = col
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                tokens.append(Token("REAL", text[i:j], line, start_col))
            else:
                tokens.append(Token("INT", text[i:j], line, start_col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            start_col = col
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            word = text[i:j]
            # assert-true / assert-false / pre-image / restrict-out / etc.
            # join a following "-ident" when the combined word is meaningful.
            if j < n and text[j] == "-":
                k = j + 1
                while k < n and (text[k].isalnum() or text[k] in "_-"):
                    k += 1
                hyphenated = text[i:k]
                if hyphenated in HYPHENATED_WORDS:
                    word, j = hyphenated, k
            kind = "KW" if word in KEYWORDS else "ID"
            tokens.append(Token(kind, word, line, start_col))
            col += j - i
            i = j
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line, col))
    return tokens


HYPHENATED_WORDS = {
    "assert-true",
    "assert-false",
    "pre-image",
    "restrict-out",
    "is-empty",
    "get-witness",
    "type-check",
}

KEYWORDS |= {"assert-true", "assert-false"}
