"""Abstract syntax of Fast programs (paper Figure 4).

One dataclass per production.  Expressions (``Aexp``) reuse the label
theory terms of :mod:`repro.smt` after type checking; at the AST level
they are untyped :class:`Expr` nodes carrying source positions for
error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Pos:
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"


# ---------------------------------------------------------------------------
# Attribute expressions (Aexp)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pos: Pos


@dataclass(frozen=True)
class EVar(Expr):
    name: str


@dataclass(frozen=True)
class EConst(Expr):
    value: object  # str | int | Fraction | bool


@dataclass(frozen=True)
class EOp(Expr):
    op: str  # < > <= >= = != + - * % and or not in-set...
    args: tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Language rules (Lrule) and transformation rules (Trule)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Given:
    """One ``(p y)`` lookahead constraint."""

    lang: str
    var: str
    pos: Pos


@dataclass(frozen=True)
class LangRule:
    """``c(y1..yn) (where e)? (given (p y)+)?``"""

    ctor: str
    child_vars: tuple[str, ...]
    where: Optional[Expr]
    given: tuple[Given, ...]
    pos: Pos


@dataclass(frozen=True)
class OutExpr:
    pos: Pos


@dataclass(frozen=True)
class OVar(OutExpr):
    """Bare ``y``: copy the subtree unchanged."""

    name: str


@dataclass(frozen=True)
class OCall(OutExpr):
    """``(q y)``: apply transformation state ``q`` to child ``y``."""

    trans: str
    var: str


@dataclass(frozen=True)
class OCons(OutExpr):
    """``(c [e1..em] t1 .. tn)``: build an output node."""

    ctor: str
    attr_exprs: tuple[Expr, ...]
    children: tuple[OutExpr, ...]


@dataclass(frozen=True)
class TransRule:
    base: LangRule
    output: OutExpr


# ---------------------------------------------------------------------------
# Language / transduction / tree operation expressions (L, T, TR)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LangExpr:
    pos: Pos


@dataclass(frozen=True)
class LRef(LangExpr):
    name: str


@dataclass(frozen=True)
class LBinop(LangExpr):
    op: str  # intersect | union | difference
    left: LangExpr
    right: LangExpr


@dataclass(frozen=True)
class LUnop(LangExpr):
    op: str  # complement | minimize
    arg: LangExpr


@dataclass(frozen=True)
class LDomain(LangExpr):
    trans: "TransExpr"


@dataclass(frozen=True)
class LPreImage(LangExpr):
    trans: "TransExpr"
    lang: LangExpr


@dataclass(frozen=True)
class TransExpr:
    pos: Pos


@dataclass(frozen=True)
class TRef(TransExpr):
    name: str


@dataclass(frozen=True)
class TCompose(TransExpr):
    first: TransExpr
    second: TransExpr


@dataclass(frozen=True)
class TRestrict(TransExpr):
    kind: str  # "restrict" | "restrict-out"
    trans: TransExpr
    lang: LangExpr


@dataclass(frozen=True)
class TreeExpr:
    pos: Pos


@dataclass(frozen=True)
class TreeRef(TreeExpr):
    name: str


@dataclass(frozen=True)
class TreeCons(TreeExpr):
    ctor: str
    attr_exprs: tuple[Expr, ...]
    children: tuple["TreeExpr", ...]


@dataclass(frozen=True)
class TreeApply(TreeExpr):
    trans: TransExpr
    tree: "TreeExpr"


@dataclass(frozen=True)
class TreeWitness(TreeExpr):
    lang: LangExpr


# ---------------------------------------------------------------------------
# Assertions (A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assertion:
    pos: Pos


@dataclass(frozen=True)
class ALangEq(Assertion):
    left: LangExpr
    right: LangExpr


@dataclass(frozen=True)
class AIsEmptyLang(Assertion):
    lang: LangExpr


@dataclass(frozen=True)
class AIsEmptyTrans(Assertion):
    trans: TransExpr


@dataclass(frozen=True)
class AMember(Assertion):
    tree: TreeExpr
    lang: LangExpr


@dataclass(frozen=True)
class ATypeCheck(Assertion):
    input_lang: LangExpr
    trans: TransExpr
    output_lang: LangExpr


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    pos: Pos


@dataclass(frozen=True)
class TypeDecl(Decl):
    name: str
    fields: tuple[tuple[str, str], ...]  # (field name, sort name)
    constructors: tuple[tuple[str, int], ...]  # (ctor name, rank)


@dataclass(frozen=True)
class LangDecl(Decl):
    name: str
    type_name: str
    rules: tuple[LangRule, ...]


@dataclass(frozen=True)
class TransDecl(Decl):
    name: str
    in_type: str
    out_type: str
    rules: tuple[TransRule, ...]


@dataclass(frozen=True)
class DefLang(Decl):
    name: str
    type_name: str
    expr: LangExpr


@dataclass(frozen=True)
class DefTrans(Decl):
    name: str
    in_type: str
    out_type: str
    expr: TransExpr


@dataclass(frozen=True)
class TreeDecl(Decl):
    name: str
    type_name: str
    expr: TreeExpr


@dataclass(frozen=True)
class AssertDecl(Decl):
    expect: bool  # assert-true / assert-false
    assertion: Assertion


@dataclass(frozen=True)
class PrintDecl(Decl):
    tree: TreeExpr


@dataclass(frozen=True)
class Program:
    decls: tuple[Decl, ...]
